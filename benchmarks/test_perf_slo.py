"""Perf — SLO engine overhead on the monitored serving path.

Acceptance: running :class:`InferenceMonitor` with the full SLO plane
enabled — per-series latency recording into the mergeable quantile
sketch, per-imputer/per-cluster slice scorecards, and one burn-rate
evaluation per request — must cost **less than 5%** wall time versus
the identical monitored traffic with ``enable_slo=False``.  Each arm
runs three times and the minimum is compared (the standard noise-robust
estimator for wall-clock microbenchmarks).

The instrumented arm also asserts the tracker really recorded one SLO
event per served series and that the sketch-backed p99 is populated, so
the overhead number is known to come from a live SLO plane.

Writes the ``slo_serving`` workload into ``BENCH_slo.json`` for the CI
regression gate (``check_regression.py``) and the ``repro bench
trend`` table.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit
from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.observability import InferenceMonitor
from repro.pipeline.scoring import ScoreWeights

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
N_RUNS = 3
MAX_OVERHEAD = 0.05  # 5%
LENGTH = 96 if TINY else 144
N_SERVE = 16 if TINY else 48
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_slo.json"

FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)


def _trained_engine():
    rng = np.random.default_rng(17)
    t = np.linspace(0, 4 * np.pi, LENGTH)
    series, labels = [], []
    for i in range(8 if TINY else 16):
        values = np.sin(t * (1 + 0.05 * i)) + 0.05 * rng.normal(size=LENGTH)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(8 if TINY else 16):
        series.append(
            TimeSeries(0.5 * np.cumsum(rng.normal(size=LENGTH)), name=f"walk{i}")
        )
        labels.append("mean")
    engine = ADarts(
        config=FAST_CONFIG, classifier_names=["knn", "decision_tree"]
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, np.array(labels))
    return engine


def _faulty_traffic():
    rng = np.random.default_rng(23)
    t = np.linspace(0, 4 * np.pi, LENGTH)
    out = []
    for i in range(N_SERVE):
        values = np.sin(t * (1 + 0.03 * i)) + 0.05 * rng.normal(size=LENGTH)
        lo = 10 + (i % 5)
        values[lo : lo + LENGTH // 6] = np.nan
        out.append(TimeSeries(values, name=f"live{i}"))
    return out


def _serve(monitor, traffic):
    # One monitored request per series — the worst case for per-request
    # SLO evaluation cost.
    for series in traffic:
        monitor.recommend_many([series])


def _min_wall(fn, runs=N_RUNS):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_slo_overhead_under_five_percent():
    engine = _trained_engine()
    traffic = _faulty_traffic()
    # Warm caches/imports outside either timed arm.
    _serve(InferenceMonitor(engine, enable_slo=False), traffic)

    def bare():
        _serve(InferenceMonitor(engine, enable_slo=False), traffic)

    bare_s = _min_wall(bare)

    monitors = []

    def instrumented():
        monitor = InferenceMonitor(engine)
        monitors.append(monitor)
        _serve(monitor, traffic)

    slo_s = _min_wall(instrumented)

    overhead = slo_s / bare_s - 1.0
    emit(
        "SLO engine overhead (serving workload)",
        [
            f"bare       : {bare_s:.4f}s (min of {N_RUNS})",
            f"with SLOs  : {slo_s:.4f}s (min of {N_RUNS})",
            f"overhead   : {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})",
            f"series     : {N_SERVE} per pass, 1 per request",
        ],
    )

    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}
    doc["slo_serving"] = {
        "bare_s": round(bare_s, 4),
        "slo_s": round(slo_s, 4),
        "n_series": N_SERVE,
        "length": LENGTH,
        "overhead": round(overhead, 4),
    }
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # -- the instrumented arm really tracked SLOs ------------------------
    tracker = monitors[-1].slo_tracker
    assert tracker is not None
    status = tracker.status()
    assert status["n_events"] == N_SERVE, "one SLO event per served series"
    assert status["latency_sketch"]["p99"] > 0.0
    assert any(key.startswith("imputer:") for key in status["slices"])

    assert overhead < MAX_OVERHEAD, (
        f"SLO overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%} "
        f"(bare {bare_s:.4f}s vs instrumented {slo_s:.4f}s)"
    )
