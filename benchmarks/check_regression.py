#!/usr/bin/env python
"""CI benchmark-regression gate for the ``BENCH_*.json`` documents.

Compares freshly produced benchmark documents (written by
``benchmarks/test_perf_parallel.py`` and
``benchmarks/test_perf_simkernels.py``; pass ``--fresh`` once per
document) against the committed baseline
(``benchmarks/bench_baseline.json``) and **fails** — exit code 1 — when
any workload got more than ``--threshold`` (default 1.5x) slower on any
measured arm (every numeric ``*_s`` seconds key: ``serial_s``,
``parallel_s``, ``per_pair_s``, ``batched_s``, ...), or when a baseline
workload disappeared from the fresh run.

On success, ``--update`` refreshes the baseline artifact with the fresh
numbers (new workloads are adopted, existing ones overwritten), so the
gate tracks the current hardware's trajectory instead of drifting ever
further from it::

    python benchmarks/check_regression.py \
        --baseline benchmarks/bench_baseline.json \
        --fresh BENCH_parallel.json --update

The comparison logic is importable (``load_document`` / ``compare``)
and unit-tested in ``tests/test_bench_regression_gate.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Historical benchmark-arm keys (kept for reference / schema checks);
#: :func:`timing_keys` discovers arms dynamically so new documents with
#: e.g. ``per_pair_s`` / ``batched_s`` arms are gated without edits here.
TIMING_KEYS = ("serial_s", "parallel_s")


def timing_keys(arms: dict) -> tuple[str, ...]:
    """Seconds-valued arm keys of one workload entry (``*_s``, numeric)."""
    return tuple(
        sorted(
            key
            for key, value in arms.items()
            if key.endswith("_s") and isinstance(value, (int, float))
        )
    )


def load_document(path) -> dict:
    """Load a ``{workload: {serial_s, parallel_s, ...}}`` document."""
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no benchmark document at {path}")
    document = json.loads(path.read_text())
    if not isinstance(document, dict):
        raise ValueError(f"{path} does not contain a benchmark document")
    return document


def compare(
    baseline: dict,
    fresh: dict,
    threshold: float = 1.5,
    *,
    min_seconds: float = 0.01,
) -> list[str]:
    """Regression messages comparing ``fresh`` timings to ``baseline``.

    Empty list means the gate passes.  A workload regresses when a
    timing arm (any numeric ``*_s`` key present on either side) exceeds
    ``threshold`` times its baseline value; arms where both sides are
    under ``min_seconds`` are ignored (pure noise at that scale).
    Workloads present in the baseline but absent from the fresh run are
    reported as regressions; brand-new workloads pass.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1.0")
    problems: list[str] = []
    for workload in sorted(baseline):
        if workload not in fresh:
            problems.append(f"{workload}: missing from the fresh benchmark run")
            continue
        arms = sorted(
            set(timing_keys(baseline[workload]))
            | set(timing_keys(fresh[workload]))
        )
        for key in arms:
            base = baseline[workload].get(key)
            new = fresh[workload].get(key)
            if base is None or new is None:
                continue
            base = float(base)
            new = float(new)
            if base < min_seconds and new < min_seconds:
                continue
            if base <= 0.0:
                continue
            ratio = new / base
            if ratio > threshold:
                problems.append(
                    f"{workload}.{key}: {new:.4f}s vs baseline {base:.4f}s "
                    f"({ratio:.2f}x > {threshold:.2f}x)"
                )
    return problems


def refresh_baseline(baseline_path, baseline: dict, fresh: dict) -> dict:
    """Merge fresh numbers over the baseline and rewrite the artifact."""
    merged = dict(baseline)
    merged.update(fresh)
    pathlib.Path(baseline_path).write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )
    return merged


def main(argv=None) -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(
        description="fail CI when a benchmark workload regressed"
    )
    parser.add_argument(
        "--baseline",
        default=str(repo_root / "benchmarks" / "bench_baseline.json"),
        help="committed baseline document",
    )
    parser.add_argument(
        "--fresh",
        action="append",
        help=(
            "freshly produced benchmark document; repeat the flag to gate "
            "several documents at once (default: BENCH_parallel.json)"
        ),
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="slowdown factor that fails the gate (default 1.5)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.01,
        help="ignore arms where both sides are faster than this",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="on success, refresh the baseline with the fresh numbers",
    )
    args = parser.parse_args(argv)

    fresh_paths = args.fresh or [str(repo_root / "BENCH_parallel.json")]
    baseline = load_document(args.baseline)
    fresh: dict = {}
    for path in fresh_paths:
        fresh.update(load_document(path))
    problems = compare(
        baseline, fresh, args.threshold, min_seconds=args.min_seconds
    )
    if problems:
        print("benchmark regression gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"benchmark regression gate passed "
        f"({len(fresh)} workloads <= {args.threshold}x baseline)"
    )
    if args.update:
        refresh_baseline(args.baseline, baseline, fresh)
        print(f"refreshed baseline at {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
