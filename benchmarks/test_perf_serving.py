"""Perf — serving daemon throughput/latency across shard counts.

Drives the same seeded :class:`LoadGenerator` burst through a running
:class:`ServingDaemon` at 1, 4 and 16 shards (1 and 2 under
``REPRO_BENCH_TINY``) and records requests/second and the sketch-backed
p99 per configuration.  The timed section covers only steady-state
serving — daemon startup, shard spawn and the shared-memory engine
publish happen before the clock starts, and a small warm-up burst runs
first so import/JIT costs land outside the measurement.

Every response is asserted to be a 200 served in submission order, so
the throughput numbers are known to come from successfully repaired
series rather than shed load.

Shard scaling is hardware-bound: process shards only help past one
batch-worth of CPU, so the per-configuration documents record the
machine's core count (``cpus``) alongside the timings and no speedup
is asserted — the regression gate tracks each configuration's wall
time against its own baseline instead.

Writes the ``serving_Nshard`` workloads into ``BENCH_serving.json`` for
the CI regression gate (``check_regression.py``) and the ``repro bench
trend`` table.  Wall time is the gated arm (``wall_s``); req/s and
p99 ride along as context.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit
from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.parallel.shm import shm_available
from repro.pipeline.scoring import ScoreWeights
from repro.serving import LoadGenerator, ServingDaemon, ServingTestClient

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
LENGTH = 96
#: Same shard ladder in both modes so the regression gate always sees
#: the same workload keys; TINY only shrinks the burst.
SHARD_COUNTS = (1, 4, 16)
N_REQUESTS = 48 if TINY else 192
N_WARMUP = 8
BENCH_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"
)

FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)


def _trained_engine():
    rng = np.random.default_rng(17)
    t = np.linspace(0, 4 * np.pi, LENGTH)
    series, labels = [], []
    for i in range(8 if TINY else 16):
        values = np.sin(t * (1 + 0.05 * i)) + 0.05 * rng.normal(size=LENGTH)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(8 if TINY else 16):
        series.append(
            TimeSeries(0.5 * np.cumsum(rng.normal(size=LENGTH)), name=f"walk{i}")
        )
        labels.append("mean")
    engine = ADarts(
        config=FAST_CONFIG, classifier_names=["knn", "decision_tree"]
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, np.array(labels))
    return engine


def _drive(daemon, requests):
    """Submit one burst and return (wall_s, responses)."""
    client = ServingTestClient(daemon)
    start = time.perf_counter()
    responses = client.send_many(requests, timeout=600.0)
    return time.perf_counter() - start, responses


def test_serving_throughput_by_shard_count():
    engine = _trained_engine()
    generator = LoadGenerator(seed=9, length=LENGTH, mode="repair")
    warmup = generator.requests(N_WARMUP)
    requests = generator.requests(N_REQUESTS, start=N_WARMUP)
    backend = "process" if shm_available() else "inline"

    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}

    lines = [f"backend     : {backend}, {N_REQUESTS} requests per burst"]
    for n_shards in SHARD_COUNTS:
        with ServingDaemon(
            engine,
            n_shards=n_shards,
            shard_backend=backend,
            max_batch=16,
            max_delay_s=0.002,
            max_pending=4 * N_REQUESTS,
        ) as daemon:
            _drive(daemon, warmup)
            wall_s, responses = _drive(daemon, requests)
            snapshot = daemon.health()

        assert len(responses) == N_REQUESTS
        assert [r.id for r in responses] == [r.id for r in requests]
        assert all(r.status == 200 for r in responses), (
            "throughput must be measured on served repairs, not shed load"
        )

        req_per_s = N_REQUESTS / wall_s
        p99_ms = snapshot.latency["p99"] * 1000.0
        lines.append(
            f"{n_shards:>2} shard(s) : {wall_s:.3f}s wall, "
            f"{req_per_s:7.1f} req/s, p99 {p99_ms:.2f}ms"
        )
        doc[f"serving_{n_shards}shard"] = {
            "backend": backend,
            "cpus": os.cpu_count(),
            "length": LENGTH,
            "n_requests": N_REQUESTS,
            "p99_ms": round(p99_ms, 3),
            # Named to dodge the gate's ``*_s`` timing-arm heuristic:
            # throughput is higher-is-better.
            "throughput_rps": round(req_per_s, 1),
            "wall_s": round(wall_s, 4),
        }

    emit("Serving daemon throughput by shard count", lines)
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
