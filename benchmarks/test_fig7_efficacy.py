"""E4 / Fig. 7 — average efficacy (F1 mean ± std across categories).

The paper's headline: A-DARTS has the highest mean F1 (about 20% over the
best baseline on their corpus) *and* the tightest spread (about 2.5x less
variance than the runner-up) — the stability claim.
"""

import numpy as np

from conftest import SYSTEMS, emit


def test_fig7_average_efficacy(benchmark, system_results):
    def summarize():
        stats = {}
        for system in SYSTEMS:
            f1s = np.array(
                [system_results[cat][system]["f1"] for cat in system_results]
            )
            stats[system] = (float(f1s.mean()), float(f1s.std()))
        return stats

    stats = benchmark.pedantic(summarize, rounds=1, iterations=1)
    lines = [f"{'system':<11}{'mean F1':>9}{'std':>8}"]
    for system in SYSTEMS:
        mean, std = stats[system]
        lines.append(f"{system:<11}{mean:>9.3f}{std:>8.3f}")
    adarts_mean, adarts_std = stats["A-DARTS"]
    best_baseline = max(
        (s for s in SYSTEMS if s != "A-DARTS"), key=lambda s: stats[s][0]
    )
    steadiest_baseline = min(
        (s for s in SYSTEMS if s != "A-DARTS"), key=lambda s: stats[s][1]
    )
    lines.append(
        f"A-DARTS vs best baseline ({best_baseline}): "
        f"{adarts_mean:.3f} vs {stats[best_baseline][0]:.3f}"
    )
    lines.append(
        f"stability vs steadiest baseline ({steadiest_baseline}): "
        f"std {adarts_std:.3f} vs {stats[steadiest_baseline][1]:.3f}"
    )
    emit("Fig. 7 — average efficacy (F1 mean ± std over 6 categories)", lines)
    # Shape assertions, scaled to this miniature corpus: A-DARTS is in the
    # top tier on mean F1 (within noise of the best, clearly above the
    # median baseline) and its spread is not the worst.
    baseline_means = sorted(stats[s][0] for s in SYSTEMS if s != "A-DARTS")
    median_baseline = baseline_means[len(baseline_means) // 2]
    assert adarts_mean >= stats[best_baseline][0] - 0.06
    assert adarts_mean >= median_baseline - 1e-9
    assert adarts_std <= max(stats[s][1] for s in SYSTEMS if s != "A-DARTS") + 1e-9
