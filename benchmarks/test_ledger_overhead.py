"""Perf — repair-provenance ledger overhead on a serving workload.

Acceptance: installing a :class:`RepairLedger` (JSONL file sink) around
the monitored serving path — ``recommend_many`` plus per-series
imputation, every repair producing "repair" and "impute" rows with
cluster assignment, feature hashing, and quality stats — must cost
**less than 5%** wall time versus the same traffic with the ledger
disabled.  Each arm runs three times and the minimum is compared (the
standard noise-robust estimator for wall-clock microbenchmarks).

The ledgered arm also re-reads its JSONL output and asserts one repair
row per served series, so the overhead number is known to come from a
ledger that was genuinely recording full lineage.

Writes the ``ledger_serving`` workload into ``BENCH_ledger.json`` for
the CI regression gate (``check_regression.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit
from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.observability import ClusterAtlas, RepairLedger, read_ledger, use_ledger
from repro.pipeline.scoring import ScoreWeights

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
N_RUNS = 3
MAX_OVERHEAD = 0.05  # 5%
LENGTH = 96 if TINY else 144
N_SERVE = 16 if TINY else 48
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_ledger.json"

FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)


def _trained_engine():
    rng = np.random.default_rng(17)
    t = np.linspace(0, 4 * np.pi, LENGTH)
    series, labels = [], []
    for i in range(8 if TINY else 16):
        values = np.sin(t * (1 + 0.05 * i)) + 0.05 * rng.normal(size=LENGTH)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(8 if TINY else 16):
        series.append(
            TimeSeries(0.5 * np.cumsum(rng.normal(size=LENGTH)), name=f"walk{i}")
        )
        labels.append("mean")
    engine = ADarts(
        config=FAST_CONFIG, classifier_names=["knn", "decision_tree"]
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, np.array(labels))
    # Register the two families as atlas representatives so the ledgered
    # arm pays the full per-repair cost (assignment + NCC included).
    atlas = ClusterAtlas()
    atlas.add("bench:c0", "linear", np.sin(t))
    atlas.add(
        "bench:c1",
        "mean",
        np.mean([s.values for s in series[len(series) // 2:]], axis=0),
    )
    engine.cluster_atlas_ = atlas
    return engine


def _faulty_traffic():
    rng = np.random.default_rng(23)
    t = np.linspace(0, 4 * np.pi, LENGTH)
    out = []
    for i in range(N_SERVE):
        values = np.sin(t * (1 + 0.03 * i)) + 0.05 * rng.normal(size=LENGTH)
        lo = 10 + (i % 5)
        values[lo : lo + LENGTH // 6] = np.nan
        out.append(TimeSeries(values, name=f"live{i}"))
    return out


def _serve(engine, traffic):
    recommendations = engine.recommend_many(traffic)
    for rec, series in zip(recommendations, traffic):
        rec.impute(series)
    return recommendations


def _min_wall(fn, runs=N_RUNS):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_ledger_overhead_under_five_percent(tmp_path):
    engine = _trained_engine()
    traffic = _faulty_traffic()
    _serve(engine, traffic)  # warm caches/imports outside either timed arm

    bare_s = _min_wall(lambda: _serve(engine, traffic))

    ledger_paths = []

    def ledgered():
        path = tmp_path / f"ledger{len(ledger_paths)}.jsonl"
        ledger_paths.append(path)
        with RepairLedger(path) as ledger, use_ledger(ledger):
            _serve(engine, traffic)

    ledgered_s = _min_wall(ledgered)

    overhead = ledgered_s / bare_s - 1.0
    emit(
        "ledger overhead (serving workload)",
        [
            f"bare       : {bare_s:.4f}s (min of {N_RUNS})",
            f"ledgered   : {ledgered_s:.4f}s (min of {N_RUNS})",
            f"overhead   : {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})",
            f"series     : {N_SERVE} per pass",
        ],
    )

    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}
    doc["ledger_serving"] = {
        "bare_s": round(bare_s, 4),
        "ledgered_s": round(ledgered_s, 4),
        "n_series": N_SERVE,
        "length": LENGTH,
        "overhead": round(overhead, 4),
    }
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # -- the ledgered arm really recorded full lineage -------------------
    rows = read_ledger(ledger_paths[-1])
    repairs = [r for r in rows if r["kind"] == "repair"]
    imputes = [r for r in rows if r["kind"] == "impute"]
    assert len(repairs) == N_SERVE, "one repair row per served series"
    assert len(imputes) == N_SERVE, "one impute row per repaired series"
    assert all(r["data"]["cluster"] for r in repairs)
    assert all("plausibility_z" in r["data"]["quality"] for r in imputes)

    assert overhead < MAX_OVERHEAD, (
        f"ledger overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%} "
        f"(bare {bare_s:.4f}s vs ledgered {ledgered_s:.4f}s)"
    )
