"""E9 / Fig. 11 — clustering comparison for the labeling stage.

Incremental (ours) vs K-Shape default (k=8), grid-search, and iterative.
Paper shapes: incremental reaches high intra-cluster correlation at a
moderate runtime and a cluster count close to the grid-search reference;
K-Shape default is fast but poorly correlated; grid search is expensive;
iterative over-fragments.
"""

import time

import numpy as np

from conftest import emit
from repro.clustering import (
    IncrementalClustering,
    KShape,
    kshape_grid_search,
    kshape_iterative,
)
from repro.datasets import CATEGORIES, load_category


def _mixed_series():
    series = []
    for category in CATEGORIES:
        ds = load_category(category, n_series=8, n_datasets=1)[0]
        series.extend(list(ds.series))
    return series


def _compare():
    series = _mixed_series()
    rows = {}

    t0 = time.perf_counter()
    inc = IncrementalClustering(delta=0.75, random_state=0).fit(series)
    rows["incremental"] = (
        inc.average_correlation(), time.perf_counter() - t0, inc.n_clusters_
    )

    t0 = time.perf_counter()
    default = KShape(n_clusters=8, random_state=0).fit(series)
    rows["kshape_default"] = (
        default.average_correlation(), time.perf_counter() - t0,
        default.n_clusters_,
    )

    t0 = time.perf_counter()
    grid = kshape_grid_search(series, k_values=range(2, 17, 2), random_state=0)
    rows["kshape_grid"] = (
        grid.average_correlation(), time.perf_counter() - t0, grid.n_clusters_
    )

    t0 = time.perf_counter()
    iterative = kshape_iterative(
        series, target_correlation=0.85, max_k=24, random_state=0
    )
    rows["kshape_iter"] = (
        iterative.average_correlation(), time.perf_counter() - t0,
        iterative.n_clusters_,
    )
    return rows, len(series)


def test_fig11_clustering_comparison(benchmark):
    rows, n_series = benchmark.pedantic(_compare, rounds=1, iterations=1)
    lines = [
        f"n_series={n_series}",
        f"{'method':<16}{'avg corr':>10}{'runtime(s)':>12}{'#clusters':>11}",
    ]
    for method, (corr, runtime, k) in rows.items():
        lines.append(f"{method:<16}{corr:>10.3f}{runtime:>12.2f}{k:>11}")
    emit("Fig. 11 — clustering comparison", lines)

    # Incremental clustering achieves high correlation...
    assert rows["incremental"][0] > 0.75
    # ...higher than K-Shape with the default k...
    assert rows["incremental"][0] > rows["kshape_default"][0]
    # ...cheaper than the grid search and the iterative variant...
    assert rows["incremental"][1] < rows["kshape_grid"][1]
    assert rows["incremental"][1] < rows["kshape_iter"][1]
    # ...matching (or exceeding) the iterative variant's correlation at a
    # comparable cluster count and a fraction of its cost.
    assert rows["incremental"][0] >= rows["kshape_iter"][0] - 0.05
    assert rows["incremental"][2] <= n_series
