"""Perf — out-of-core corpus engine: memmap banks and shard-and-merge.

Measures the two costs the out-of-core PR trades against each other and
merges the numbers into ``BENCH_outofcore.json`` at the repo root::

    {workload: {inram_s | single_s, memmap_s | sharded_s, ...,
                rss_ratio | wallclock_ratio | n_series, length}}

Workloads:

* ``bank_training_rss`` — the full training-side bank workload (build
  the bank, correlation matrix, blockwise feature extraction) run twice
  in *subprocess arms* — once on an in-RAM :class:`SeriesBank`, once on
  a memmap bank — each arm reporting its wall seconds, peak RSS
  (``VmHWM``) and a result checksum as JSON.  The acceptance gate (full
  mode only: the tiny CI corpus is dwarfed by interpreter overhead):
  memmap peak RSS < 50% of in-RAM within 1.5x wall clock.  Checksums
  must match exactly — the memmap path cannot "win" by computing
  something else.
* ``shard_merge`` — ``ShardedClustering`` vs single-shard
  ``IncrementalClustering`` wall clock on a well-separated corpus, with
  the parity suite's acceptance assert: identical partitions (canonical
  relabeling) before any timing is recorded.

Both timing arms are gated by ``check_regression.py`` like every other
``BENCH_*.json`` document.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

import numpy as np

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_outofcore.json"

#: Corpus geometry for the RSS workload.  Full mode is sized so the
#: corpus (raw + znorm, ~400 MiB) dwarfs interpreter overhead and the
#: RSS ratio is meaningful; tiny mode just exercises both arms.
RSS_N, RSS_LENGTH = (32, 2048) if TINY else (96, 262_144)
#: Shard-merge corpus: groups x size of the parity family.
SHARD_GROUPS, SHARD_GROUP_SIZE = (20, 6) if TINY else (42, 6)
SHARD_COUNT = 4
#: Full-mode acceptance thresholds (ISSUE 10).
RSS_CEILING = 0.5
WALLCLOCK_CEILING = 1.5


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _merge_json(results: dict) -> dict:
    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}
    doc.update(results)
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


# ---------------------------------------------------------------------------
# Subprocess arms (self-invocation): build + corr + blockwise extraction
# ---------------------------------------------------------------------------
def _arm_corpus(n: int, length: int, seed: int = 31) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=length).cumsum() for _ in range(n)]


def _run_arm(arm: str, n: int, length: int, bank_dir: str | None) -> dict:
    """One measurement arm; executed in a fresh subprocess."""
    from repro.features import FeatureExtractor
    from repro.observability.resources import sample_rss
    from repro.timeseries.batch import SeriesBank

    series = _arm_corpus(n, length)
    start = time.perf_counter()
    if arm == "memmap":
        bank = SeriesBank.create(bank_dir, series)
    else:
        bank = SeriesBank.from_series(series)
    del series  # the bank owns (or memmaps) the corpus from here
    corr = bank.corr_matrix()
    features = FeatureExtractor().extract_many(bank)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "hwm_bytes": sample_rss()["hwm_bytes"],
        "checksum": f"{float(corr.sum()):.12e}|{float(np.nansum(features)):.12e}",
    }


def _spawn_arm(arm: str, n: int, length: int, bank_dir=None) -> dict:
    import repro

    env = dict(os.environ)
    src_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    argv = [
        sys.executable, str(pathlib.Path(__file__).resolve()),
        "--arm", arm, "--n", str(n), "--length", str(length),
    ]
    if bank_dir is not None:
        argv += ["--bank-dir", str(bank_dir)]
    proc = subprocess.run(
        argv, env=env, capture_output=True, text=True, timeout=1800
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.splitlines()[-1])


def test_memmap_bank_peak_rss(tmp_path):
    inram = _spawn_arm("inram", RSS_N, RSS_LENGTH)
    memmap = _spawn_arm(
        "memmap", RSS_N, RSS_LENGTH, bank_dir=tmp_path / "bank"
    )
    # Parity first: both arms computed the exact same corr + features.
    assert memmap["checksum"] == inram["checksum"]
    rss_ratio = memmap["hwm_bytes"] / inram["hwm_bytes"]
    wallclock_ratio = memmap["seconds"] / inram["seconds"]
    results = {
        "bank_training_rss": {
            "inram_s": round(inram["seconds"], 4),
            "memmap_s": round(memmap["seconds"], 4),
            "inram_hwm_bytes": int(inram["hwm_bytes"]),
            "memmap_hwm_bytes": int(memmap["hwm_bytes"]),
            "rss_ratio": round(rss_ratio, 4),
            "wallclock_ratio": round(wallclock_ratio, 4),
            "n_series": RSS_N,
            "length": RSS_LENGTH,
            "tiny": TINY,
        }
    }
    _merge_json(results)
    print(
        f"\n== outofcore bank_training_rss ==\n"
        f"inram  {inram['seconds']:.2f}s  hwm {inram['hwm_bytes'] / 2**20:.0f} MiB\n"
        f"memmap {memmap['seconds']:.2f}s  hwm {memmap['hwm_bytes'] / 2**20:.0f} MiB\n"
        f"rss_ratio {rss_ratio:.3f}  wallclock_ratio {wallclock_ratio:.3f}"
    )
    if not TINY:
        assert rss_ratio < RSS_CEILING, (
            f"memmap peak RSS is {rss_ratio:.2f}x of in-RAM "
            f"(must be < {RSS_CEILING})"
        )
        assert wallclock_ratio <= WALLCLOCK_CEILING, (
            f"memmap wall clock is {wallclock_ratio:.2f}x of in-RAM "
            f"(must be <= {WALLCLOCK_CEILING})"
        )


# ---------------------------------------------------------------------------
# Shard-and-merge vs single-shard clustering
# ---------------------------------------------------------------------------
def _canonical(labels) -> list[int]:
    mapping: dict = {}
    return [mapping.setdefault(lab, len(mapping)) for lab in labels]


def test_shard_merge_wall_clock():
    from repro.clustering.incremental import (
        IncrementalClustering,
        ShardedClustering,
    )
    from repro.timeseries import TimeSeries

    rng = np.random.default_rng(17)
    t = np.linspace(0, 4 * np.pi, 96)
    series = []
    for g in range(SHARD_GROUPS):
        base = np.sin(t * (g + 1)) + 3.0 * g
        series.extend(
            TimeSeries(base + 0.03 * rng.normal(size=96))
            for _ in range(SHARD_GROUP_SIZE)
        )
    order = rng.permutation(len(series))
    series = [series[i] for i in order]

    single, single_s = _timed(
        lambda: IncrementalClustering(random_state=0).fit(series)
    )
    sharded, sharded_s = _timed(
        lambda: ShardedClustering(
            n_shards=SHARD_COUNT, random_state=0
        ).fit(series)
    )
    # Acceptance: identical partitions on the parity corpus.
    assert _canonical(sharded.labels_) == _canonical(single.labels_)
    results = {
        "shard_merge": {
            "single_s": round(single_s, 4),
            "sharded_s": round(sharded_s, 4),
            "n_series": len(series),
            "n_shards": SHARD_COUNT,
            "n_clusters": int(sharded.n_clusters_),
        }
    }
    _merge_json(results)
    print(
        f"\n== outofcore shard_merge ==\n"
        f"single {single_s:.2f}s  sharded({SHARD_COUNT}) {sharded_s:.2f}s  "
        f"clusters {sharded.n_clusters_}"
    )


# ---------------------------------------------------------------------------
# Self-invocation: one measurement arm per process
# ---------------------------------------------------------------------------
if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--arm", choices=("inram", "memmap"), required=True)
    parser.add_argument("--n", type=int, required=True)
    parser.add_argument("--length", type=int, required=True)
    parser.add_argument("--bank-dir", default=None)
    args = parser.parse_args()
    print(json.dumps(_run_arm(args.arm, args.n, args.length, args.bank_dir)))
