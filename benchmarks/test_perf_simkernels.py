"""Perf — per-pair scalar loops vs. the batched similarity kernels.

Times the O(n²) reference implementations in
``repro.timeseries.correlation`` against the :class:`SeriesBank` kernels
of ``repro.timeseries.batch`` on fixed synthetic corpora, plus the
legacy vs. incremental phase-2 refinement of
:class:`~repro.clustering.incremental.IncrementalClustering`, then
merges the timings into ``BENCH_simkernels.json`` at the repo root::

    {workload: {per_pair_s | legacy_s, batched_s | incremental_s,
                n_series, length, speedup}}

Workloads:

* ``sbd_matrix`` — full shape-based-distance matrix (one FFT per *pair*
  in the reference vs. one rFFT per *series* + blockwise spectral
  products in the bank).  The acceptance gate: >= 10x on the full
  256-series corpus (>= 2x in ``REPRO_BENCH_TINY=1`` smoke mode, where
  the corpus is too small to amortize well).
* ``corr_matrix`` — zero-lag correlation matrix (per-pair z-norm + dot
  vs. one z-norm pass + blockwise GEMM).
* ``incremental_refine`` — ``IncrementalClustering.fit`` with the
  legacy ``np.ix_``-rescanning refinement vs. the incrementally
  maintained correlation sums (identical labels asserted).

Every batched result is parity-checked against its reference (<= 1e-9)
before the timings are recorded, so the benchmark cannot "win" by
drifting semantically.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit
from repro.clustering.incremental import IncrementalClustering
from repro.timeseries import TimeSeries
from repro.timeseries.batch import SeriesBank
from repro.timeseries.correlation import (
    pairwise_correlation_matrix_reference,
    sbd_distance_matrix_reference,
)

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simkernels.json"

#: Corpus shape for the matrix workloads (the issue's acceptance corpus).
N_SERIES, LENGTH = (48, 96) if TINY else (256, 256)
#: Corpus shape for the clustering-refinement workload.
REFINE_N, REFINE_LENGTH = (40, 64) if TINY else (160, 96)
#: Speedup floor for the sbd_matrix workload.
SBD_FLOOR = 2.0 if TINY else 10.0
#: Best-of-N repeats for the cheap batched arms (the expensive per-pair
#: arms run once; their runtimes dwarf scheduler noise).
REPEATS = 3


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _timed_best(fn, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        result, seconds = _timed(fn)
        best = min(best, seconds)
    return result, best


def _record(results, workload, slow_key, slow_s, fast_key, fast_s, **extra):
    results[workload] = {
        slow_key: round(slow_s, 4),
        fast_key: round(fast_s, 4),
        "speedup": round(slow_s / fast_s, 3) if fast_s else float("inf"),
        **extra,
    }


def _merge_json(results: dict) -> dict:
    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}
    doc.update(results)
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def _corpus(n=N_SERIES, length=LENGTH, seed=29):
    rng = np.random.default_rng(seed)
    return [
        TimeSeries(rng.normal(size=length).cumsum(), name=f"s{i}")
        for i in range(n)
    ]


def test_simkernel_speedups_and_report():
    results: dict[str, dict] = {}
    series = _corpus()
    shape = {"n_series": N_SERIES, "length": LENGTH}

    # -- sbd_matrix -------------------------------------------------------
    ref_sbd, per_pair_s = _timed(lambda: sbd_distance_matrix_reference(series))
    bank_sbd, batched_s = _timed_best(
        lambda: SeriesBank.from_series(series).sbd_matrix()
    )
    assert np.abs(bank_sbd - ref_sbd).max() <= 1e-9
    _record(
        results, "sbd_matrix", "per_pair_s", per_pair_s,
        "batched_s", batched_s, **shape,
    )

    # -- corr_matrix ------------------------------------------------------
    ref_corr, per_pair_s = _timed(
        lambda: pairwise_correlation_matrix_reference(series)
    )
    bank_corr, batched_s = _timed_best(
        lambda: SeriesBank.from_series(series).corr_matrix()
    )
    assert np.abs(bank_corr - ref_corr).max() <= 1e-9
    _record(
        results, "corr_matrix", "per_pair_s", per_pair_s,
        "batched_s", batched_s, **shape,
    )

    # -- incremental_refine ----------------------------------------------
    walks = _corpus(n=REFINE_N, length=REFINE_LENGTH, seed=31)

    def _fit(incremental):
        return IncrementalClustering(
            delta=0.5, min_cluster_size=4, random_state=0,
            incremental=incremental,
        ).fit(walks)

    legacy_model, legacy_s = _timed(lambda: _fit(False))
    fast_model, incremental_s = _timed_best(lambda: _fit(True))
    assert fast_model.labels_.tolist() == legacy_model.labels_.tolist()
    _record(
        results, "incremental_refine", "legacy_s", legacy_s,
        "incremental_s", incremental_s,
        n_series=REFINE_N, length=REFINE_LENGTH,
    )

    # -- report -----------------------------------------------------------
    doc = _merge_json(results)
    emit(
        f"Batched similarity kernels{' (tiny)' if TINY else ''}",
        [
            f"{name:<18} "
            + "   ".join(
                f"{key} {row[key]:8.3f}s"
                for key in row
                if key.endswith("_s")
            )
            + f"   speedup {row['speedup']:6.2f}x"
            for name, row in results.items()
        ]
        + [f"wrote {BENCH_JSON.name} ({len(doc)} workloads)"],
    )

    assert results["sbd_matrix"]["speedup"] >= SBD_FLOOR, (
        f"expected >= {SBD_FLOOR}x on sbd_matrix "
        f"({N_SERIES} series x {LENGTH}), got "
        f"{results['sbd_matrix']['speedup']:.2f}x"
    )
    assert results["corr_matrix"]["speedup"] >= SBD_FLOOR
    assert results["incremental_refine"]["speedup"] >= 1.0
