"""E7 / Fig. 9 — feature-set ablation: statistical vs topological vs both.

Per category, ModelRace is fed (i) statistical features only, (ii)
topological only, (iii) the combination.  Paper shape: the combination is
never substantially worse than either family and is needed on complex
categories (Water, Lightning).
"""

import numpy as np

from conftest import BENCH_CLASSIFIERS, BENCH_CONFIG, emit
from repro.core import ADarts
from repro.datasets import holdout_split
from repro.features import FeatureExtractor
from repro.pipeline.metrics import f1_weighted

VARIANTS = {
    "stat": dict(use_statistical=True, use_topological=False),
    "topo": dict(use_statistical=False, use_topological=True),
    "both": dict(use_statistical=True, use_topological=True),
}


def _ablate(category_corpora):
    results = {}
    for category, corpus in category_corpora.items():
        y = np.asarray(corpus.labels)
        results[category] = {}
        for variant, kwargs in VARIANTS.items():
            extractor = FeatureExtractor(**kwargs)
            X = extractor.extract_many(corpus.series)
            f1s = []
            for seed in range(2):
                X_tr, X_te, y_tr, y_te = holdout_split(
                    X, y, test_ratio=0.35, random_state=seed
                )
                engine = ADarts(
                    config=BENCH_CONFIG,
                    classifier_names=list(BENCH_CLASSIFIERS),
                    extractor=extractor,
                )
                engine.fit_features(X_tr, y_tr)
                f1s.append(f1_weighted(y_te, engine.predict(X_te)))
            results[category][variant] = float(np.mean(f1s))
    return results


def test_fig9_feature_ablation(benchmark, category_corpora):
    results = benchmark.pedantic(
        _ablate, args=(category_corpora,), rounds=1, iterations=1
    )
    lines = [f"{'category':<11}{'stat':>8}{'topo':>8}{'both':>8}"]
    for category, scores in results.items():
        lines.append(
            f"{category:<11}{scores['stat']:>8.3f}{scores['topo']:>8.3f}"
            f"{scores['both']:>8.3f}"
        )
    emit("Fig. 9 — feature ablation (F1)", lines)
    # Combination is competitive with the best single family everywhere.
    for category, scores in results.items():
        assert scores["both"] >= max(scores["stat"], scores["topo"]) - 0.12, category
    # And on at least one complex category it strictly helps over one family.
    assert any(
        scores["both"] > min(scores["stat"], scores["topo"]) + 0.01
        for scores in results.values()
    )
