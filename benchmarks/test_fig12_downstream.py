"""E10 / Fig. 12 — downstream forecasting impact.

Seven forecasting datasets; a 20% block is hidden at the tip of each
series, repaired either by the A-DARTS recommendation or by the static
binary-vector rule of the ImputeBench study, and a 12-step forecast of the
repaired series is scored with sMAPE.  Paper shapes: A-DARTS improves
sMAPE on average (55% in the paper), with the largest gains on the complex
datasets (Paris mobility, Weather) and the smallest on simple ones (ATM).
"""

import numpy as np

from conftest import BENCH_CLASSIFIERS, BENCH_CONFIG, BENCH_SLATE, emit
from repro.core import ADarts
from repro.clustering.labeling import ClusterLabeler
from repro.datasets import FORECAST_DATASETS, load_category, load_forecast_dataset
from repro.forecasting import run_downstream_experiment
from repro.forecasting.downstream import BinaryVectorRecommender


def _run():
    # Train the recommender on the general-domain corpus.  Labeling covers
    # both interior and tip blocks (inference repairs tip blocks), and the
    # extractor includes the missing-pattern features so the classifier can
    # tell the two apart.
    from repro.features import FeatureExtractor

    labeler = ClusterLabeler(
        imputer_names=BENCH_SLATE,
        missing_ratio=(0.1, 0.2),
        patterns=("block", "tip"),
        random_state=0,
    )
    training = []
    for category in ("Power", "Climate", "Water", "Motion"):
        training.extend(load_category(category, n_series=12, n_datasets=2))
    engine = ADarts(
        config=BENCH_CONFIG,
        classifier_names=list(BENCH_CLASSIFIERS),
        labeler=labeler,
        extractor=FeatureExtractor(use_missing_pattern=True),
    )
    engine.fit_datasets(training)

    # The static rule chooses from the same slate A-DARTS was labeled with —
    # the recommendation *strategy* is the variable under test.
    from repro.forecasting.downstream import _ALGORITHM_SCORES

    static = BinaryVectorRecommender(
        {k: v for k, v in _ALGORITHM_SCORES.items() if k in BENCH_SLATE}
    )
    rows = {}
    for name in FORECAST_DATASETS:
        dataset = load_forecast_dataset(name, n_series=6, length=192)
        with_adarts = run_downstream_experiment(
            dataset, lambda s: engine.recommend(s).algorithm, horizon=12
        )
        static_choice = static.recommend(dataset)
        without = run_downstream_experiment(
            dataset, lambda s: static_choice, horizon=12
        )
        rows[name] = (with_adarts, without, static_choice)
    return rows


def test_fig12_downstream_forecasting(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"{'dataset':<16}{'A-DARTS':>9}{'static':>9}{'gain%':>7}  static choice"
    ]
    gains = []
    for name, (with_adarts, without, choice) in rows.items():
        gain = (without - with_adarts) / without * 100 if without > 0 else 0.0
        gains.append(gain)
        lines.append(
            f"{name:<16}{with_adarts:>9.3f}{without:>9.3f}{gain:>7.1f}  {choice}"
        )
    lines.append(
        f"average sMAPE gain: {np.mean(gains):.1f}%   "
        f"median gain: {np.median(gains):.1f}%"
    )
    emit("Fig. 12 — downstream forecasting sMAPE (lower is better)", lines)

    # A-DARTS improves (or matches) the static rule on a majority of the
    # datasets, and the median gain is non-negative.  (The mean over seven
    # sMAPE ratios is dominated by single outlier repairs at this series
    # count, so the median is the robust aggregate.)
    wins = sum(
        1 for with_adarts, without, _ in rows.values()
        if with_adarts <= without + 1e-6
    )
    assert wins >= (len(rows) + 1) // 2
    assert np.median(gains) >= 0
