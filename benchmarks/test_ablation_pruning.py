"""Ablation — the two-phase pruning of ModelRace.

Compares the full configuration (early termination + t-test pruning)
against a no-early-termination variant: the same elite quality should be
reached while evaluating (and paying for) more pipeline fits without the
first pruning phase.
"""

import numpy as np

from conftest import BENCH_CLASSIFIERS, emit
from repro.core import ADarts, ModelRaceConfig
from repro.datasets import holdout_split
from repro.pipeline.metrics import f1_weighted


def _run_variant(X, y, margin: float):
    f1s, evals, runtimes = [], [], []
    for seed in range(3):
        X_tr, X_te, y_tr, y_te = holdout_split(
            X, y, test_ratio=0.35, random_state=seed
        )
        engine = ADarts(
            config=ModelRaceConfig(
                n_partial_sets=2, n_folds=3, max_elite=5,
                early_termination_margin=margin, random_state=seed,
            ),
            classifier_names=list(BENCH_CLASSIFIERS),
        )
        engine.fit_features(X_tr, y_tr)
        f1s.append(f1_weighted(y_te, engine.predict(X_te)))
        evals.append(engine.race_result.n_evaluations)
        runtimes.append(engine.race_result.runtime)
    return float(np.mean(f1s)), float(np.mean(evals)), float(np.mean(runtimes))


def test_ablation_two_phase_pruning(benchmark, category_features):
    X, y = category_features["Power"]

    def compare():
        with_early = _run_variant(X, y, margin=0.2)
        without_early = _run_variant(X, y, margin=1e9)  # never early-terminate
        return with_early, without_early

    (f1_on, evals_on, t_on), (f1_off, evals_off, t_off) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    lines = [
        f"{'variant':<22}{'F1':>8}{'evals':>8}{'time(s)':>9}",
        f"{'early-term + t-test':<22}{f1_on:>8.3f}{evals_on:>8.0f}{t_on:>9.2f}",
        f"{'t-test only':<22}{f1_off:>8.3f}{evals_off:>8.0f}{t_off:>9.2f}",
    ]
    emit("Ablation — two-phase pruning", lines)
    # Early termination saves evaluations without losing quality.
    assert evals_on <= evals_off
    assert f1_on >= f1_off - 0.08
