"""Shared fixtures for the experiment benchmarks.

Every bench reproduces one table/figure of the paper (see DESIGN.md's
per-experiment index).  Expensive artifacts — labeled corpora, extracted
features, per-system evaluations — are session-scoped so the suite builds
them once.  Results print to stdout (run with ``-s`` to see them live) and
are appended to ``benchmarks/results.txt``.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig
from repro.baselines import (
    AutoFolioSelector,
    FLAMLSelector,
    RAHASelector,
    TuneSelector,
)
from repro.clustering.labeling import ClusterLabeler
from repro.datasets import CATEGORIES, holdout_split, load_category
from repro.features import FeatureExtractor
from repro.pipeline.metrics import classification_report

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"

#: Imputation slate raced during labeling (one per family, fast members).
BENCH_SLATE = ("linear", "knn", "svdimp", "stmvl", "tkcm")

#: Classifier families seeded into every race (fast-training members).
BENCH_CLASSIFIERS = (
    "knn", "decision_tree", "extra_trees", "random_forest", "gaussian_nb",
    "ridge", "softmax", "nearest_centroid", "linear_svm",
)

BENCH_CONFIG = ModelRaceConfig(
    n_partial_sets=3, n_folds=3, max_elite=5, n_children_per_parent=3,
    random_state=0,
)


def emit(title: str, lines: list[str]) -> None:
    """Print a result block and persist it to benchmarks/results.txt."""
    block = "\n".join([f"== {title} ==", *lines, ""])
    print("\n" + block)
    with RESULTS_PATH.open("a") as fh:
        fh.write(block + "\n")


#: Varying block sizes per the paper's protocol — diversifies labels.
BENCH_RATIOS = (0.05, 0.15, 0.3)


@pytest.fixture(scope="session")
def category_corpora():
    """LabeledCorpus per category (the miniature 107-dataset archive)."""
    labeler = ClusterLabeler(
        imputer_names=BENCH_SLATE, missing_ratio=BENCH_RATIOS,
        tie_epsilon=0.05, random_state=0,
    )
    corpora = {}
    for category in CATEGORIES:
        datasets = load_category(category, n_series=16, n_datasets=3)
        corpora[category] = labeler.label_corpus(datasets)
    return corpora


@pytest.fixture(scope="session")
def category_features(category_corpora):
    """(X, y) per category under the default (stat+topo) extractor."""
    extractor = FeatureExtractor()
    features = {}
    for category, corpus in category_corpora.items():
        X = extractor.extract_many(corpus.series)
        features[category] = (X, np.asarray(corpus.labels))
    return features


def make_system(name: str):
    """Factory for the five compared systems, bench-scaled."""
    if name == "A-DARTS":
        return ADarts(
            config=BENCH_CONFIG, classifier_names=list(BENCH_CLASSIFIERS),
            random_state=0,
        )
    if name == "FLAML":
        return FLAMLSelector(
            n_rounds=16,
            families=("knn", "decision_tree", "extra_trees", "softmax"),
            random_state=0,
        )
    if name == "Tune":
        return TuneSelector(family="decision_tree", n_configs=12, random_state=0)
    if name == "AutoFolio":
        return AutoFolioSelector(
            family="knn", n_seeds=3, n_perturbations=4, random_state=0
        )
    if name == "RAHA":
        return RAHASelector(n_clusters=4, random_state=0)
    raise ValueError(f"unknown system {name!r}")


SYSTEMS = ("RAHA", "AutoFolio", "Tune", "FLAML", "A-DARTS")


def evaluate_system(name: str, X, y, seed: int = 0) -> dict[str, float]:
    """65/35 holdout evaluation of one system on one category."""
    X_tr, X_te, y_tr, y_te = holdout_split(
        X, y, test_ratio=0.35, random_state=seed
    )
    system = make_system(name)
    if name == "A-DARTS":
        system.fit_features(X_tr, y_tr)
        y_pred = system.predict(X_te)
        rankings = system.predict_rankings(X_te)
    else:
        system.fit(X_tr, y_tr)
        y_pred = system.predict(X_te)
        rankings = system.predict_rankings(X_te) if system.supports_ranking else None
    return classification_report(y_te, y_pred, rankings)


def evaluate_system_repeated(
    name: str, X, y, n_repeats: int = 3
) -> dict[str, float]:
    """Average metrics over several holdout seeds (reduces split noise)."""
    import numpy as _np

    reports = [evaluate_system(name, X, y, seed=s) for s in range(n_repeats)]
    keys = set().union(*(r.keys() for r in reports))
    return {
        k: float(_np.mean([r[k] for r in reports if k in r])) for k in keys
    }


@pytest.fixture(scope="session")
def system_results(category_features):
    """Metrics per (category, system) — shared by Fig. 7 and Table III."""
    results: dict[str, dict[str, dict[str, float]]] = {}
    for category, (X, y) in category_features.items():
        results[category] = {}
        for system in SYSTEMS:
            results[category][system] = evaluate_system_repeated(system, X, y)
    return results
