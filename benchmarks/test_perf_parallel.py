"""Perf — serial vs. parallel wall time for the three parallelized hot paths.

Measures the fixed synthetic workloads below under (a) the historical
serial path and (b) ``ParallelConfig(n_jobs=4, backend="process")`` with
the feature cache / score memo enabled, then writes ``BENCH_parallel.json``
at the repo root so future PRs have a perf trajectory::

    {workload: {serial_s, parallel_s, n_jobs, speedup}}

Workloads:

* ``extract_many`` — a corpus in which every distinct series appears six
  times (realistic for labeling, where faulty variants of one series are
  re-featurized).  The parallel arm combines worker fan-out with the
  content-addressed :class:`FeatureCache`, so repeated series are
  extracted once; on a single-core box this dedup is what produces the
  speedup, on multicore boxes the process pool stacks on top.
* ``race`` — :data:`RACE_RERUNS` consecutive ModelRaces over the *same*
  synthetic classification snapshot (the steady state of iterative
  labeling, where the race is re-run after every corpus tweak).  The
  engine arm shares one content-addressed :class:`ScoreMemo` across the
  re-races, so every fold evaluation after the first race is a memo hit;
  like ``extract_many``'s cache dedup, that is what produces the speedup
  on a single-core box.
* ``labeling`` — cluster-representative imputer races across a small
  Water corpus.

``race`` and ``labeling`` run the *auto* backend: historically they were
forced onto the process backend and recorded 0.1-0.3x "speedups" (fork +
pickle overhead on sub-second workloads).  The cost-aware auto selection
(first-task probe + per-label EWMA, see ``ParallelConfig.resolve_backend``)
now keeps cheap batches serial and folds tiny tasks into larger chunks,
so those entries must not regress below ~1x; the resolved backends are
recorded alongside the timings ("serial" meaning auto kept the batch
in-process).  Timed arms take the best of :data:`REPEATS` runs to
suppress scheduler noise.

Set ``REPRO_BENCH_TINY=1`` to shrink every workload (CI smoke mode); the
JSON schema and the correctness assertions are identical in both modes.
The acceptance gate asserts that the best observed speedup is >= 1.5x and
that parallel outputs match the serial ones exactly (determinism is
tested exhaustively in ``tests/test_parallel_determinism.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit
from repro.clustering.labeling import ClusterLabeler
from repro.core.config import ModelRaceConfig
from repro.core.modelrace import ModelRace
from repro.datasets import load_category
from repro.features import FeatureExtractor
from repro.parallel import (
    FeatureCache,
    ParallelConfig,
    ScoreMemo,
    engine_stats,
)
from repro.pipeline.pipeline import make_seed_pipelines
from repro.pipeline.scoring import ScoreWeights
from repro.timeseries import TimeSeries

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
N_JOBS = 4
PARALLEL = ParallelConfig(n_jobs=N_JOBS, backend="process")
#: Cost-aware auto selection — the recommended config for mixed workloads.
AUTO_PARALLEL = ParallelConfig(n_jobs=N_JOBS, backend="auto")
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
#: Best-of-N timing repeats for the noise-prone sub-second workloads.
REPEATS = 5
#: Consecutive races over one snapshot in the ``race`` workload (the
#: amortized re-race pattern the ScoreMemo exists for).
RACE_RERUNS = 3

#: gamma=0 keeps race scores wall-clock free so arms are comparable.
BENCH_WEIGHTS = ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _timed_best(fn, repeats: int = REPEATS):
    """Best-of-N wall time (and the last result, for assertions)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        result, seconds = _timed(fn)
        best = min(best, seconds)
    return result, best


def _backends_used(fn):
    """Run ``fn`` and report which engine backends executed tasks."""
    before = {
        backend: stats.get("tasks", 0)
        for backend, stats in engine_stats().items()
    }
    result = fn()
    used = sorted(
        backend
        for backend, stats in engine_stats().items()
        if stats.get("tasks", 0) > before.get(backend, 0)
    )
    return result, used


def _record(
    results: dict,
    workload: str,
    serial_s: float,
    parallel_s: float,
    backend: str = "process",
):
    results[workload] = {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "n_jobs": N_JOBS,
        "backend": backend,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else float("inf"),
    }


def _merge_json(results: dict) -> dict:
    """Merge this run's workloads into BENCH_parallel.json and return it."""
    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}
    doc.update(results)
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


# ---------------------------------------------------------------------------
# Workload builders (fixed seeds — identical corpus on every run).
# ---------------------------------------------------------------------------

def _feature_corpus() -> list[TimeSeries]:
    n_distinct, repeats, length = (12, 6, 192) if TINY else (40, 6, 256)
    rng = np.random.default_rng(11)
    distinct = [
        TimeSeries(rng.normal(size=length).cumsum(), name=f"series_{i}")
        for i in range(n_distinct)
    ]
    return [s for _ in range(repeats) for s in distinct]


def _race_snapshot():
    n, d = (60, 5) if TINY else (280, 6)
    rng = np.random.default_rng(3)
    X = rng.normal(size=(n, d))
    y = np.array(["cdrec", "knn", "linear"], dtype=object)[
        rng.integers(0, 3, size=n)
    ]
    X[y == "cdrec"] += 1.0
    X[y == "knn"] -= 1.0
    split = n // 4
    return X[split:], y[split:], X[:split], y[:split]


def _race_config(parallel: ParallelConfig | None) -> ModelRaceConfig:
    return ModelRaceConfig(
        n_partial_sets=2 if TINY else 3,
        n_folds=2 if TINY else 3,
        max_elite=4,
        weights=BENCH_WEIGHTS,
        random_state=0,
        parallel=parallel or ParallelConfig(),
    )


def _labeling_corpus():
    n_series, n_datasets = (4, 1) if TINY else (16, 3)
    return load_category("Water", n_series=n_series, n_datasets=n_datasets)


def _labeler(parallel: ParallelConfig | None) -> ClusterLabeler:
    return ClusterLabeler(
        imputer_names=("linear", "knn", "svdimp"),
        missing_ratio=(0.1, 0.2),
        random_state=0,
        parallel=parallel,
    )


# ---------------------------------------------------------------------------
# The benchmark.
# ---------------------------------------------------------------------------

def test_parallel_speedup_and_report():
    results: dict[str, dict] = {}

    # -- extract_many -----------------------------------------------------
    corpus = _feature_corpus()
    serial_X, serial_s = _timed(lambda: FeatureExtractor().extract_many(corpus))
    fast = FeatureExtractor(parallel=PARALLEL, cache=FeatureCache())
    parallel_X, parallel_s = _timed(lambda: fast.extract_many(corpus))
    assert parallel_X.tobytes() == serial_X.tobytes()
    _record(results, "extract_many", serial_s, parallel_s)

    # -- race (cost-aware auto backend + shared score memo) ---------------
    data = _race_snapshot()
    seed_names = ["knn", "gaussian_nb", "ridge"] if TINY else [
        "knn", "decision_tree", "gaussian_nb", "ridge", "nearest_centroid",
    ]

    def _serial_races():
        result = None
        for _ in range(RACE_RERUNS):
            result = ModelRace(_race_config(None)).run(
                make_seed_pipelines(seed_names), *data
            )
        return result

    def _engine_races():
        # One memo per timed sample: race 1 populates it, races 2..N are
        # served from it (identical work -> identical content keys).
        memo = ScoreMemo()
        result = None
        for _ in range(RACE_RERUNS):
            result = ModelRace(
                _race_config(AUTO_PARALLEL), score_memo=memo
            ).run(make_seed_pipelines(seed_names), *data)
        return result

    serial_race, serial_s = _timed_best(_serial_races)
    (parallel_race, race_backends), parallel_s = _timed_best(
        lambda: _backends_used(_engine_races)
    )
    assert [p.config_key() for p in parallel_race.elite] == [
        p.config_key() for p in serial_race.elite
    ]
    assert parallel_race.scores == serial_race.scores
    _record(results, "race", serial_s, parallel_s, "+".join(race_backends))

    # -- labeling (cost-aware auto backend) -------------------------------
    datasets = _labeling_corpus()
    serial_corpus, serial_s = _timed_best(
        lambda: _labeler(None).label_corpus(datasets)
    )
    (parallel_corpus, label_backends), parallel_s = _timed_best(
        lambda: _backends_used(
            lambda: _labeler(AUTO_PARALLEL).label_corpus(datasets)
        )
    )
    assert list(parallel_corpus.labels) == list(serial_corpus.labels)
    _record(results, "labeling", serial_s, parallel_s, "+".join(label_backends))

    # -- report -----------------------------------------------------------
    doc = _merge_json(results)
    emit(
        f"Parallel speedup (n_jobs={N_JOBS}"
        f"{', tiny' if TINY else ''})",
        [
            f"{name:<14} serial {row['serial_s']:8.3f}s   "
            f"parallel {row['parallel_s']:8.3f}s   "
            f"speedup {row['speedup']:5.2f}x   [{row['backend']}]"
            for name, row in results.items()
        ]
        + [f"wrote {BENCH_JSON.name} ({len(doc)} workloads)"],
    )

    best = max(row["speedup"] for row in results.values())
    assert best >= 1.5, (
        f"expected >=1.5x speedup on at least one workload, best was {best:.2f}x: "
        f"{ {k: v['speedup'] for k, v in results.items()} }"
    )
    # The PR-2 regression: tiny labeling/race workloads forced onto the
    # process backend recorded 0.1-0.3x.  Cost-aware auto selection must
    # keep them at parity or better (serial auto-selected, or a backend
    # that actually pays off); the memoized re-race workload must show a
    # real amortized win.
    assert results["race"]["speedup"] >= 1.2, (
        f"memoized re-race should amortize well below serial cost: "
        f"{results['race']['speedup']:.2f}x via {results['race']['backend']!r}"
    )
    assert results["labeling"]["speedup"] >= 0.9, (
        f"labeling regressed under auto backend selection: "
        f"{results['labeling']['speedup']:.2f}x via "
        f"{results['labeling']['backend']!r}"
    )
