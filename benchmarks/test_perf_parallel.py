"""Perf — serial vs. parallel wall time for the three parallelized hot paths.

Measures the fixed synthetic workloads below under (a) the historical
serial path and (b) ``ParallelConfig(n_jobs=4, backend="process")`` with
the feature cache / score memo enabled, then writes ``BENCH_parallel.json``
at the repo root so future PRs have a perf trajectory::

    {workload: {serial_s, parallel_s, n_jobs, speedup}}

Workloads:

* ``extract_many`` — a corpus in which every distinct series appears six
  times (realistic for labeling, where faulty variants of one series are
  re-featurized).  The parallel arm combines worker fan-out with the
  content-addressed :class:`FeatureCache`, so repeated series are
  extracted once; on a single-core box this dedup is what produces the
  speedup, on multicore boxes the process pool stacks on top.
* ``race`` — one ModelRace over a synthetic classification snapshot,
  fold evaluations fanned out and memoized via :class:`ScoreMemo`.
* ``labeling`` — cluster-representative imputer races across a small
  Water corpus.

Set ``REPRO_BENCH_TINY=1`` to shrink every workload (CI smoke mode); the
JSON schema and the correctness assertions are identical in both modes.
The acceptance gate asserts that the best observed speedup is >= 1.5x and
that parallel outputs match the serial ones exactly (determinism is
tested exhaustively in ``tests/test_parallel_determinism.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import emit
from repro.clustering.labeling import ClusterLabeler
from repro.core.config import ModelRaceConfig
from repro.core.modelrace import ModelRace
from repro.datasets import load_category
from repro.features import FeatureExtractor
from repro.parallel import FeatureCache, ParallelConfig, ScoreMemo
from repro.pipeline.pipeline import make_seed_pipelines
from repro.pipeline.scoring import ScoreWeights
from repro.timeseries import TimeSeries

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
N_JOBS = 4
PARALLEL = ParallelConfig(n_jobs=N_JOBS, backend="process")
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: gamma=0 keeps race scores wall-clock free so arms are comparable.
BENCH_WEIGHTS = ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _record(results: dict, workload: str, serial_s: float, parallel_s: float):
    results[workload] = {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "n_jobs": N_JOBS,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else float("inf"),
    }


def _merge_json(results: dict) -> dict:
    """Merge this run's workloads into BENCH_parallel.json and return it."""
    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}
    doc.update(results)
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


# ---------------------------------------------------------------------------
# Workload builders (fixed seeds — identical corpus on every run).
# ---------------------------------------------------------------------------

def _feature_corpus() -> list[TimeSeries]:
    n_distinct, repeats, length = (12, 6, 192) if TINY else (40, 6, 256)
    rng = np.random.default_rng(11)
    distinct = [
        TimeSeries(rng.normal(size=length).cumsum(), name=f"series_{i}")
        for i in range(n_distinct)
    ]
    return [s for _ in range(repeats) for s in distinct]


def _race_snapshot():
    n, d = (60, 5) if TINY else (280, 6)
    rng = np.random.default_rng(3)
    X = rng.normal(size=(n, d))
    y = np.array(["cdrec", "knn", "linear"], dtype=object)[
        rng.integers(0, 3, size=n)
    ]
    X[y == "cdrec"] += 1.0
    X[y == "knn"] -= 1.0
    split = n // 4
    return X[split:], y[split:], X[:split], y[:split]


def _race_config(parallel: ParallelConfig | None) -> ModelRaceConfig:
    return ModelRaceConfig(
        n_partial_sets=2 if TINY else 3,
        n_folds=2 if TINY else 3,
        max_elite=4,
        weights=BENCH_WEIGHTS,
        random_state=0,
        parallel=parallel or ParallelConfig(),
    )


def _labeling_corpus():
    n_series, n_datasets = (4, 1) if TINY else (16, 3)
    return load_category("Water", n_series=n_series, n_datasets=n_datasets)


def _labeler(parallel: ParallelConfig | None) -> ClusterLabeler:
    return ClusterLabeler(
        imputer_names=("linear", "knn", "svdimp"),
        missing_ratio=(0.1, 0.2),
        random_state=0,
        parallel=parallel,
    )


# ---------------------------------------------------------------------------
# The benchmark.
# ---------------------------------------------------------------------------

def test_parallel_speedup_and_report():
    results: dict[str, dict] = {}

    # -- extract_many -----------------------------------------------------
    corpus = _feature_corpus()
    serial_X, serial_s = _timed(lambda: FeatureExtractor().extract_many(corpus))
    fast = FeatureExtractor(parallel=PARALLEL, cache=FeatureCache())
    parallel_X, parallel_s = _timed(lambda: fast.extract_many(corpus))
    assert parallel_X.tobytes() == serial_X.tobytes()
    _record(results, "extract_many", serial_s, parallel_s)

    # -- race -------------------------------------------------------------
    data = _race_snapshot()
    seed_names = ["knn", "gaussian_nb", "ridge"] if TINY else [
        "knn", "decision_tree", "gaussian_nb", "ridge", "nearest_centroid",
    ]
    serial_race, serial_s = _timed(
        lambda: ModelRace(_race_config(None)).run(
            make_seed_pipelines(seed_names), *data
        )
    )
    parallel_race, parallel_s = _timed(
        lambda: ModelRace(_race_config(PARALLEL), score_memo=ScoreMemo()).run(
            make_seed_pipelines(seed_names), *data
        )
    )
    assert [p.config_key() for p in parallel_race.elite] == [
        p.config_key() for p in serial_race.elite
    ]
    assert parallel_race.scores == serial_race.scores
    _record(results, "race", serial_s, parallel_s)

    # -- labeling ---------------------------------------------------------
    datasets = _labeling_corpus()
    serial_corpus, serial_s = _timed(lambda: _labeler(None).label_corpus(datasets))
    parallel_corpus, parallel_s = _timed(
        lambda: _labeler(PARALLEL).label_corpus(datasets)
    )
    assert list(parallel_corpus.labels) == list(serial_corpus.labels)
    _record(results, "labeling", serial_s, parallel_s)

    # -- report -----------------------------------------------------------
    doc = _merge_json(results)
    emit(
        f"Parallel speedup (n_jobs={N_JOBS}, process backend"
        f"{', tiny' if TINY else ''})",
        [
            f"{name:<14} serial {row['serial_s']:8.3f}s   "
            f"parallel {row['parallel_s']:8.3f}s   "
            f"speedup {row['speedup']:5.2f}x"
            for name, row in results.items()
        ]
        + [f"wrote {BENCH_JSON.name} ({len(doc)} workloads)"],
    )

    best = max(row["speedup"] for row in results.values())
    assert best >= 1.5, (
        f"expected >=1.5x speedup on at least one workload, best was {best:.2f}x: "
        f"{ {k: v['speedup'] for k, v in results.items()} }"
    )
