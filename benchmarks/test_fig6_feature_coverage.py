"""E3 / Fig. 6 — feature coverage heatmap.

Every feature value is normalized to [0, 1] across the corpus, the interval
is split into ``k`` buckets, and per dataset we count how many buckets each
feature covers.  The paper's observations to reproduce: every feature is
covered by at least one dataset, and coverage varies — common features
(symmetry-like) cover most datasets while peculiar ones cover few.
"""

import numpy as np

from conftest import emit
from repro.datasets import CATEGORIES, load_category
from repro.features import FeatureExtractor

N_BUCKETS = 10


def _coverage():
    extractor = FeatureExtractor()
    datasets = []
    for category in CATEGORIES:
        datasets.extend(load_category(category, n_series=12, n_datasets=2))
    per_dataset = [extractor.extract_many(list(ds.series)) for ds in datasets]
    stacked = np.vstack(per_dataset)
    lo = stacked.min(axis=0)
    span = stacked.max(axis=0) - lo
    span[span == 0] = 1.0
    coverage = np.zeros((len(datasets), extractor.n_features), dtype=int)
    for d, M in enumerate(per_dataset):
        normalized = (M - lo) / span
        buckets = np.clip((normalized * N_BUCKETS).astype(int), 0, N_BUCKETS - 1)
        for f in range(extractor.n_features):
            coverage[d, f] = len(set(buckets[:, f].tolist()))
    return coverage, [ds.name for ds in datasets], extractor.feature_names


def test_fig6_feature_coverage(benchmark):
    coverage, dataset_names, feature_names = benchmark.pedantic(
        _coverage, rounds=1, iterations=1
    )
    covered_by_any = (coverage > 0).any(axis=0)
    per_feature_datasets = (coverage > 1).sum(axis=0)  # datasets spanning >1 bucket
    order = np.argsort(per_feature_datasets)
    lines = [
        f"datasets={len(dataset_names)}  features={len(feature_names)}  "
        f"buckets={N_BUCKETS}",
        f"features covered by >=1 dataset: {int(covered_by_any.sum())}"
        f"/{len(feature_names)}",
        "widest-coverage features: "
        + ", ".join(feature_names[i] for i in order[-3:][::-1]),
        "narrowest-coverage features: "
        + ", ".join(feature_names[i] for i in order[:3]),
        f"mean buckets covered per (dataset, feature): {coverage.mean():.2f}",
    ]
    emit("Fig. 6 — feature coverage", lines)
    # Paper claim: all features are covered by at least one dataset.
    assert covered_by_any.all()
    # And coverage is heterogeneous: some features are near-universal,
    # others peculiar.
    assert per_feature_datasets.max() > per_feature_datasets.min()
