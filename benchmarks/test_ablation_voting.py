"""Ablation — soft vs majority voting (the Section IV-B design choice).

The paper reports that "soft" probability-averaged voting beats standard
majority voting with most classifiers; this bench measures both on the
same elites.
"""

import numpy as np

from conftest import BENCH_CLASSIFIERS, BENCH_CONFIG, emit
from repro.core import ADarts
from repro.datasets import holdout_split
from repro.pipeline.metrics import f1_weighted, mean_reciprocal_rank


def _compare(X, y):
    scores = {"soft": [], "majority": []}
    mrrs = {"soft": [], "majority": []}
    for seed in range(3):
        X_tr, X_te, y_tr, y_te = holdout_split(
            X, y, test_ratio=0.35, random_state=seed
        )
        for voting in ("soft", "majority"):
            engine = ADarts(
                config=BENCH_CONFIG,
                classifier_names=list(BENCH_CLASSIFIERS),
                voting=voting,
            )
            engine.fit_features(X_tr, y_tr)
            scores[voting].append(f1_weighted(y_te, engine.predict(X_te)))
            mrrs[voting].append(
                mean_reciprocal_rank(y_te, engine.predict_rankings(X_te))
            )
    return (
        {k: float(np.mean(v)) for k, v in scores.items()},
        {k: float(np.mean(v)) for k, v in mrrs.items()},
    )


def test_ablation_soft_vs_majority_voting(benchmark, category_features):
    X, y = category_features["Motion"]
    f1, mrr = benchmark.pedantic(_compare, args=(X, y), rounds=1, iterations=1)
    lines = [
        f"{'voting':<10}{'F1':>8}{'MRR':>8}",
        f"{'soft':<10}{f1['soft']:>8.3f}{mrr['soft']:>8.3f}",
        f"{'majority':<10}{f1['majority']:>8.3f}{mrr['majority']:>8.3f}",
    ]
    emit("Ablation — soft vs majority voting", lines)
    # Soft voting is at least as good on F1 and strictly finer-grained for
    # ranking (MRR should not be worse).
    assert f1["soft"] >= f1["majority"] - 0.05
    assert mrr["soft"] >= mrr["majority"] - 0.05
