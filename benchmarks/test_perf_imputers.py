"""Perf — per-problem imputation loops vs. the batched block kernels.

Times ``impute(...)`` looped over a corpus of single-series problems
against one ``impute_many(...)`` call for the block-kernel imputers
(closed-form: mean / linear / knn; SVD family: cdrec / svdimp /
softimpute), plus the serial per-series feature extractor against the
blockwise ``extract_many(SeriesBank)`` path, then merges the timings
into ``BENCH_imputers.json`` at the repo root::

    {workload: {scalar_s | serial_s, batched_s | block_s,
                n_series, length, speedup}}

Workloads:

* ``impute_<name>`` — one corpus pass per imputer; the acceptance gate
  is **aggregate** (``impute_aggregate``): >= 5x summed over the six
  imputers on the full 256-series corpus (>= 1.5x in
  ``REPRO_BENCH_TINY=1`` smoke mode, where per-call overhead dominates).
* ``extract_block`` — per-series ``extract`` loop vs. the blockwise
  statistical+topological kernels over a prepared bank (>= 3x full,
  >= 1.2x tiny).
* ``shm_transport`` — the process-backend transport contract: per-task
  pickles carry only the segment handle, bounded at < 256 bytes
  regardless of corpus size (asserted), timed as one pickle per task of
  the row payload vs. the handle.

Every batched result is parity-checked against its reference (<= 1e-9)
before the timings are recorded, so the benchmark cannot "win" by
drifting semantically.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import time

import numpy as np

from conftest import emit
from repro.features import FeatureExtractor
from repro.imputation.base import get_imputer
from repro.parallel import SharedArray, active_segments, shm_available
from repro.timeseries.batch import SeriesBank

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_imputers.json"

#: The block-kernel imputers under the aggregate gate (closed-form + SVD
#: family); the remaining registry members keep their per-problem loops.
IMPUTERS = ("mean", "linear", "knn", "cdrec", "svdimp", "softimpute")

#: Corpus shape (the issue's acceptance corpus: 256 single-series
#: problems of length 256 with 20% missing).
N_SERIES, LENGTH = (48, 96) if TINY else (256, 256)
MISSING = 0.2
#: Aggregate speedup floor across the six imputers.
AGG_FLOOR = 1.5 if TINY else 5.0
#: Speedup floor for the blockwise extractor.
EXTRACT_FLOOR = 1.2 if TINY else 3.0
#: Best-of-N repeats for the cheap batched arms.
REPEATS = 3


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _timed_best(fn, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        result, seconds = _timed(fn)
        best = min(best, seconds)
    return result, best


def _record(results, workload, slow_key, slow_s, fast_key, fast_s, **extra):
    results[workload] = {
        slow_key: round(slow_s, 4),
        fast_key: round(fast_s, 4),
        "speedup": round(slow_s / fast_s, 3) if fast_s else float("inf"),
        **extra,
    }


def _merge_json(results: dict) -> dict:
    doc = {}
    if BENCH_JSON.exists():
        try:
            doc = json.loads(BENCH_JSON.read_text())
        except ValueError:
            doc = {}
    doc.update(results)
    BENCH_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def _corpus(seed=37):
    """``N_SERIES`` rows of length ``LENGTH``, scattered 20% gaps each."""
    rng = np.random.default_rng(seed)
    matrix = np.vstack(
        [rng.normal(size=LENGTH).cumsum() for _ in range(N_SERIES)]
    )
    for row in matrix:
        gaps = rng.choice(LENGTH, size=int(LENGTH * MISSING), replace=False)
        row[gaps] = np.nan
    return matrix


def test_imputer_and_extractor_speedups_and_report():
    results: dict[str, dict] = {}
    corpus = _corpus()
    shape = {"n_series": N_SERIES, "length": LENGTH}

    # -- impute_<name> ----------------------------------------------------
    scalar_total = batched_total = 0.0
    for name in IMPUTERS:
        imputer = get_imputer(name)
        scalar, scalar_s = _timed(
            lambda: [imputer.impute(row[None, :].copy()) for row in corpus]
        )
        batched, batched_s = _timed_best(
            lambda: imputer.impute_many(corpus.copy())
        )
        for i, (a, b) in enumerate(zip(scalar, batched)):
            assert np.abs(b - a).max() <= 1e-9, (name, i)
        scalar_total += scalar_s
        batched_total += batched_s
        _record(
            results, f"impute_{name}", "scalar_s", scalar_s,
            "batched_s", batched_s, **shape,
        )
    _record(
        results, "impute_aggregate", "scalar_s", scalar_total,
        "batched_s", batched_total, **shape,
    )

    # -- extract_block ----------------------------------------------------
    clean = np.nan_to_num(corpus, nan=0.0)
    extractor = FeatureExtractor()
    ref, serial_s = _timed(
        lambda: np.vstack([extractor.extract(row) for row in clean])
    )
    block, block_s = _timed_best(
        lambda: extractor.extract_many(SeriesBank(clean))
    )
    np.testing.assert_allclose(block, ref, rtol=1e-9, atol=1e-9)
    _record(
        results, "extract_block", "serial_s", serial_s,
        "block_s", block_s, **shape,
    )

    # -- shm_transport ----------------------------------------------------
    if shm_available():
        segment = SharedArray.create(clean)
        try:
            handle = segment.handle
            handle_bytes = len(pickle.dumps(handle))
            row_bytes = len(pickle.dumps(clean[0]))
            # One pickle per task: the row payload (naive process-backend
            # transport) vs. the constant-size segment handle.
            _, arrays_s = _timed(
                lambda: [pickle.dumps(row) for row in clean]
            )
            _, handles_s = _timed_best(
                lambda: [pickle.dumps(handle) for _ in range(len(clean))]
            )
        finally:
            segment.close()
            segment.unlink()
        assert active_segments() == ()
        assert handle_bytes < 256, handle_bytes
        assert handle_bytes < row_bytes  # handle beats even one row's pickle
        _record(
            results, "shm_transport", "per_task_array_s", arrays_s,
            "per_task_handle_s", handles_s,
            handle_bytes=handle_bytes,
            per_row_pickle_bytes=row_bytes,
            corpus_bytes=int(clean.nbytes),
            **shape,
        )

    # -- report -----------------------------------------------------------
    doc = _merge_json(results)
    emit(
        f"Batched imputation & extraction kernels{' (tiny)' if TINY else ''}",
        [
            f"{name:<18} "
            + "   ".join(
                f"{key} {row[key]:8.3f}s"
                for key in row
                if key.endswith("_s") and isinstance(row[key], float)
            )
            + f"   speedup {row['speedup']:6.2f}x"
            + (
                f"   (handle {row['handle_bytes']}B"
                f" / corpus {row['corpus_bytes']}B)"
                if "handle_bytes" in row
                else ""
            )
            for name, row in results.items()
        ]
        + [f"wrote {BENCH_JSON.name} ({len(doc)} workloads)"],
    )

    agg = results["impute_aggregate"]["speedup"]
    assert agg >= AGG_FLOOR, (
        f"expected >= {AGG_FLOOR}x aggregate over {IMPUTERS} "
        f"({N_SERIES} series x {LENGTH}), got {agg:.2f}x"
    )
    assert results["extract_block"]["speedup"] >= EXTRACT_FLOOR, (
        f"expected >= {EXTRACT_FLOOR}x on extract_block, got "
        f"{results['extract_block']['speedup']:.2f}x"
    )
