"""E8 / Fig. 10 — pipeline scoring coefficients (alpha and gamma sweeps).

Sweeps one coefficient of the Alg. 1 line-9 scoring function while holding
the others fixed, recording F1 and race runtime.  Paper shapes: raising
alpha lifts F1 (and CPU) with diminishing returns past ~0.5; gamma is
harmless up to ~0.75 and degrades F1 at 1.0 while pushing runtime down.
"""

import numpy as np

from conftest import BENCH_CLASSIFIERS, emit
from repro.core import ADarts, ModelRaceConfig
from repro.datasets import holdout_split
from repro.pipeline import ScoreWeights
from repro.pipeline.metrics import f1_weighted

SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)


def _evaluate(X, y, weights: ScoreWeights) -> tuple[float, float]:
    f1s, runtimes = [], []
    for seed in range(2):
        X_tr, X_te, y_tr, y_te = holdout_split(
            X, y, test_ratio=0.35, random_state=seed
        )
        engine = ADarts(
            config=ModelRaceConfig(
                n_partial_sets=2, n_folds=2, max_elite=5,
                weights=weights, random_state=seed,
            ),
            classifier_names=list(BENCH_CLASSIFIERS),
        )
        engine.fit_features(X_tr, y_tr)
        f1s.append(f1_weighted(y_te, engine.predict(X_te)))
        runtimes.append(engine.race_result.runtime)
    return float(np.mean(f1s)), float(np.mean(runtimes))


def _sweep(X, y):
    alpha_rows = [
        (a, *_evaluate(X, y, ScoreWeights(alpha=a, beta=0.25, gamma=0.75)))
        for a in SWEEP
    ]
    gamma_rows = [
        (g, *_evaluate(X, y, ScoreWeights(alpha=0.5, beta=0.25, gamma=g)))
        for g in SWEEP
    ]
    return alpha_rows, gamma_rows


def test_fig10_score_coefficients(benchmark, category_features):
    X, y = category_features["Water"]
    alpha_rows, gamma_rows = benchmark.pedantic(
        _sweep, args=(X, y), rounds=1, iterations=1
    )
    lines = [f"{'alpha':>6}{'F1':>8}{'CPU(s)':>9}"]
    for a, f1, cpu in alpha_rows:
        lines.append(f"{a:>6.2f}{f1:>8.3f}{cpu:>9.2f}")
    lines.append(f"{'gamma':>6}{'F1':>8}{'CPU(s)':>9}")
    for g, f1, cpu in gamma_rows:
        lines.append(f"{g:>6.2f}{f1:>8.3f}{cpu:>9.2f}")
    emit("Fig. 10 — scoring coefficient sweeps (alpha, gamma)", lines)
    # alpha >= 0.5 is at least as good as alpha = 0 (F1 matters).
    f1_of_alpha = {a: f1 for a, f1, _ in alpha_rows}
    assert max(f1_of_alpha[0.5], f1_of_alpha[0.75], f1_of_alpha[1.0]) >= (
        f1_of_alpha[0.0] - 0.05
    )
    # Moderate gamma (<= 0.75) does not substantially hurt F1.
    f1_of_gamma = {g: f1 for g, f1, _ in gamma_rows}
    assert min(f1_of_gamma[g] for g in (0.0, 0.25, 0.5, 0.75)) >= (
        max(f1_of_gamma.values()) - 0.15
    )
