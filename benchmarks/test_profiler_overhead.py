"""Perf — sampling-profiler overhead on a fig8-style race workload.

Acceptance: attaching :class:`SamplingProfiler` (thread mode, default
5 ms interval) to the ModelRace workload used in the Fig. 8 runtime
benchmark must cost **less than 5%** wall time.  Each arm (bare /
profiled) is run three times and the minimum is compared — the minimum
is the standard noise-robust estimator for wall-clock microbenchmarks.

The profiled arm also round-trips its collapsed-stack output through
``parse_collapsed`` and asserts that the race actually appears in the
sampled stacks, so the overhead number is known to come from a profiler
that was genuinely sampling.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import emit
from repro.core.config import ModelRaceConfig
from repro.core.modelrace import ModelRace
from repro.datasets import holdout_split
from repro.observability import SamplingProfiler, parse_collapsed
from repro.pipeline.pipeline import make_seed_pipelines
from repro.pipeline.scoring import ScoreWeights

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
N_RUNS = 3
MAX_OVERHEAD = 0.05  # 5%


def _make_snapshot(rng, n_per_class=40, n_features=12):
    labels = ["cdrec", "linear", "tkcm"]
    X_parts, y_parts = [], []
    for k, label in enumerate(labels):
        center = np.zeros(n_features)
        center[k * 3 : k * 3 + 3] = 3.0
        X_parts.append(center + rng.normal(size=(n_per_class, n_features)))
        y_parts.extend([label] * n_per_class)
    return np.vstack(X_parts), np.array(y_parts)


def _race_workload():
    """One deterministic ModelRace, the Fig. 8 unit of work."""
    rng = np.random.default_rng(0)
    X, y = _make_snapshot(rng, n_per_class=20 if TINY else 120)
    X_tr, X_te, y_tr, y_te = holdout_split(
        X, y, test_ratio=0.3, random_state=0
    )
    config = ModelRaceConfig(
        n_partial_sets=2 if TINY else 3,
        n_folds=2,
        max_elite=3,
        random_state=0,
        weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
    )
    names = ["knn", "decision_tree", "gaussian_nb", "ridge"]
    if not TINY:
        names += ["nearest_centroid"]
    seeds = make_seed_pipelines(names)
    race = ModelRace(config=config)
    return race.run(seeds, X_tr, y_tr, X_te, y_te)


def _min_wall(fn, runs=N_RUNS):
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_profiler_overhead_under_five_percent(tmp_path):
    # Warm up imports/JITs outside either timed arm.
    _race_workload()

    bare_s = _min_wall(_race_workload)

    profilers = []

    def profiled():
        with SamplingProfiler(interval=0.005, mode="thread") as prof:
            _race_workload()
        profilers.append(prof)

    profiled_s = _min_wall(profiled)

    overhead = profiled_s / bare_s - 1.0
    emit(
        "profiler overhead (fig8 race workload)",
        [
            f"bare       : {bare_s:.4f}s (min of {N_RUNS})",
            f"profiled   : {profiled_s:.4f}s (min of {N_RUNS})",
            f"overhead   : {overhead:+.2%} (budget {MAX_OVERHEAD:.0%})",
            f"samples    : {profilers[-1].n_samples}",
        ],
    )

    # -- collapsed-stack round trip: the profiler really sampled the race.
    prof = profilers[-1]
    assert prof.n_samples > 0, "profiler collected no samples"
    path = prof.export(tmp_path / "race.collapsed")
    counts = parse_collapsed(path.read_text())
    assert counts == prof.counts()
    assert any("repro" in stack for stack in counts), (
        "race frames never appeared in the sampled stacks"
    )

    assert overhead < MAX_OVERHEAD, (
        f"profiler overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%} "
        f"(bare {bare_s:.4f}s vs profiled {profiled_s:.4f}s)"
    )
