"""Substrate validation — the ImputeBench-style algorithm comparison.

Not a figure of the A-DARTS paper itself, but the substrate its labeling
stage stands on: every registered imputation algorithm is scored (RMSE,
runtime) on each dataset category with a 15% missing block.  The table
makes the *premise* of the paper checkable — different algorithms win on
different categories, so selection has value.
"""

import time

import numpy as np

from conftest import emit
from repro.datasets import CATEGORIES, load_category
from repro.imputation import available_imputers, get_imputer
from repro.imputation.evaluation import imputation_rmse
from repro.timeseries import inject_missing_block, TimeSeries


def _score_all():
    rows = {}
    for category in CATEGORIES:
        dataset = load_category(category, n_series=10, n_datasets=1)[0]
        truth = dataset.to_matrix()
        rng = np.random.default_rng(3)
        mask = np.zeros_like(truth, dtype=bool)
        for i in range(truth.shape[0]):
            _, spec = inject_missing_block(
                TimeSeries(truth[i]), ratio=0.15, random_state=rng
            )
            mask[i, spec.start : spec.stop] = True
        faulty = truth.copy()
        faulty[mask] = np.nan
        scale = truth.std() or 1.0
        rows[category] = {}
        for name in available_imputers():
            t0 = time.perf_counter()
            try:
                completed = get_imputer(name).impute(faulty)
                rmse = imputation_rmse(truth, completed, mask) / scale
            except Exception:
                rmse = float("inf")
            rows[category][name] = (rmse, time.perf_counter() - t0)
    return rows


def test_imputer_suite_comparison(benchmark):
    rows = benchmark.pedantic(_score_all, rounds=1, iterations=1)
    names = available_imputers()
    lines = [f"{'category':<11}" + "".join(f"{n[:9]:>10}" for n in names)]
    for category, scores in rows.items():
        lines.append(
            f"{category:<11}"
            + "".join(f"{scores[n][0]:>10.3f}" for n in names)
        )
    winners = {
        category: min(scores, key=lambda n: scores[n][0])
        for category, scores in rows.items()
    }
    lines.append(f"winners: {winners}")
    emit("Substrate — per-category normalized RMSE of all imputers", lines)

    # Every algorithm completes everywhere.
    for category, scores in rows.items():
        for name, (rmse, _) in scores.items():
            assert np.isfinite(rmse), (category, name)
    # The paper's premise: the winner varies across categories.
    assert len(set(winners.values())) >= 2
    # And mean imputation never wins a category.
    assert "mean" not in set(winners.values())
