"""E5 / Table III — per-category efficacy breakdown (A, P, R, F1, MRR).

Reproduces the full comparison table.  Shape expectations: A-DARTS wins (or
ties within noise) on every category's F1, and only A-DARTS and RAHA report
MRR (the ranked-results-availability observation).
"""

from conftest import SYSTEMS, emit


def test_table3_per_category_breakdown(benchmark, system_results):
    result = benchmark.pedantic(
        lambda: system_results, rounds=1, iterations=1
    )
    lines = [
        f"{'category':<11}{'system':<11}"
        f"{'A':>7}{'P':>7}{'R':>7}{'F1':>7}{'MRR':>7}"
    ]
    wins = 0
    for category in result:
        best_f1 = max(result[category][s]["f1"] for s in SYSTEMS)
        for system in SYSTEMS:
            metrics = result[category][system]
            mrr = metrics.get("mrr")
            lines.append(
                f"{category:<11}{system:<11}"
                f"{metrics['accuracy']:>7.2f}{metrics['precision']:>7.2f}"
                f"{metrics['recall']:>7.2f}{metrics['f1']:>7.2f}"
                + (f"{mrr:>7.2f}" if mrr is not None else f"{'-':>7}")
            )
        if result[category]["A-DARTS"]["f1"] >= best_f1 - 0.07:
            wins += 1
    lines.append(f"A-DARTS best-or-tied categories: {wins}/{len(result)}")
    emit("Table III — per-category efficacy", lines)

    # MRR availability: only A-DARTS and RAHA rank.
    for category in result:
        assert "mrr" in result[category]["A-DARTS"]
        assert "mrr" in result[category]["RAHA"]
        for system in ("FLAML", "Tune", "AutoFolio"):
            assert "mrr" not in result[category][system]
    # A-DARTS should be best or tied on a majority of categories.  (On the
    # paper's 67K-series corpus it wins all six; at this miniature scale the
    # small-sample selection noise allows an occasional baseline win.)
    assert wins >= (len(result) + 1) // 2
