"""E6 / Fig. 8 — runtime and F1 vs the number of seed pipelines.

Sweeps the seed-pipeline count fed to ModelRace and records (a) total race
runtime and (b) the recommendation F1 with its spread across holdout seeds.
Expected shapes: runtime grows with seeds; F1 rises and its standard
deviation shrinks (more diversity stabilizes the vote).  Also reproduces
the duplicate-classifier observation: elites may hold several variants of
one family.
"""

import numpy as np

from conftest import BENCH_CLASSIFIERS, emit
from repro.core import ADarts, ModelRaceConfig
from repro.classifiers.spaces import sample_params
from repro.datasets import holdout_split
from repro.pipeline import Pipeline
from repro.pipeline.metrics import f1_weighted

SEED_COUNTS = (4, 8, 16, 24)


def _make_seeds(n: int) -> list[Pipeline]:
    """n seed pipelines: family defaults first, then sampled variants."""
    rng = np.random.default_rng(0)
    seeds, known = [], set()
    i = 0
    while len(seeds) < n:
        family = BENCH_CLASSIFIERS[i % len(BENCH_CLASSIFIERS)]
        if i < len(BENCH_CLASSIFIERS):
            candidate = Pipeline(family, scaler_name="standard")
        else:
            candidate = Pipeline(
                family, sample_params(family, random_state=rng),
                scaler_name="standard",
            )
        if candidate.config_key() not in known:
            known.add(candidate.config_key())
            seeds.append(candidate)
        i += 1
    return seeds


def _sweep(X, y):
    rows = []
    for n_seeds in SEED_COUNTS:
        f1s, runtimes, evals, prune_ratios, duplicate_flags = (
            [], [], [], [], []
        )
        for split_seed in range(3):
            X_tr, X_te, y_tr, y_te = holdout_split(
                X, y, test_ratio=0.35, random_state=split_seed
            )
            engine = ADarts(
                config=ModelRaceConfig(
                    n_partial_sets=2, n_folds=2, max_elite=5,
                    random_state=split_seed,
                ),
            )
            engine.fit_features(
                X_tr, y_tr, seed_pipelines=_make_seeds(n_seeds)
            )
            f1s.append(f1_weighted(y_te, engine.predict(X_te)))
            runtimes.append(engine.race_result.runtime)
            evals.append(engine.race_result.n_evaluations)
            prune_ratios.append(engine.race_result.prune_ratio)
            families = [p.classifier_name for p in engine.winning_pipelines]
            duplicate_flags.append(len(families) != len(set(families)))
        rows.append(
            {
                "n_seeds": n_seeds,
                "f1_mean": float(np.mean(f1s)),
                "f1_std": float(np.std(f1s)),
                "runtime": float(np.mean(runtimes)),
                "n_evaluations": float(np.mean(evals)),
                "prune_ratio": float(np.mean(prune_ratios)),
                "had_duplicates": any(duplicate_flags),
            }
        )
    return rows


def test_fig8_runtime_and_f1_vs_seeds(benchmark, category_features):
    X, y = category_features["Water"]
    rows = benchmark.pedantic(_sweep, args=(X, y), rounds=1, iterations=1)
    lines = [
        f"{'seeds':>6}{'F1':>8}{'std':>8}{'runtime(s)':>12}{'evals':>8}"
        f"{'pruned':>8}{'dupes':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row['n_seeds']:>6}{row['f1_mean']:>8.3f}{row['f1_std']:>8.3f}"
            f"{row['runtime']:>12.2f}{row['n_evaluations']:>8.0f}"
            f"{row['prune_ratio']:>8.1%}{'yes' if row['had_duplicates'] else 'no':>7}"
        )
    emit("Fig. 8 — runtime & F1 vs number of seed pipelines", lines)
    # Search cost grows with the seed count.  Evaluation counts are the
    # deterministic cost measure; wall-clock varies with which families the
    # small seed sets happen to contain.
    assert rows[-1]["n_evaluations"] > rows[0]["n_evaluations"]
    # Pruning avoids part of the potential evaluation budget (Table III);
    # the ratio is a proper fraction by construction.
    for row in rows:
        assert 0.0 <= row["prune_ratio"] < 1.0
    # More pipelines should not hurt F1 (rising trend, tolerating noise).
    best_f1 = max(row["f1_mean"] for row in rows)
    assert rows[-1]["f1_mean"] >= best_f1 - 0.12
    assert max(rows[1]["f1_mean"], rows[2]["f1_mean"], rows[3]["f1_mean"]) >= (
        rows[0]["f1_mean"] - 0.03
    )
    # Duplicate-classifier survival is observed somewhere in the sweep.
    assert any(row["had_duplicates"] for row in rows)
