"""E2 / Table I — capability matrix of the compared systems.

The table is qualitative in the paper; here each flag is *derived from the
implementations* (via their class interfaces) rather than hard-coded, so
the bench doubles as a consistency check on the baseline semantics.
"""

from conftest import emit
from repro.baselines import (
    AutoFolioSelector,
    FLAMLSelector,
    RAHASelector,
    TuneSelector,
)
from repro.core import ADarts


def _capabilities():
    rows = {}
    # multiple models / multiple instances / multiple winners / extraction / scaling
    rows["FLAML"] = dict(
        low_resources=True,
        multiple_models=len(FLAMLSelector().families) > 1,
        multiple_instances=False,   # a discarded family never returns
        multiple_winners=False,     # single winning configuration
        feature_extraction=False,   # fed with our features
        feature_scaling=False,
    )
    rows["Tune"] = dict(
        low_resources=True,
        multiple_models=False,      # hand-picked single family
        multiple_instances=False,
        multiple_winners=False,
        feature_extraction=False,
        feature_scaling=False,
    )
    rows["AutoFolio"] = dict(
        low_resources=True,
        multiple_models=False,
        multiple_instances=False,
        multiple_winners=False,
        feature_extraction=False,
        feature_scaling=False,
    )
    rows["RAHA"] = dict(
        low_resources=False,        # per-cluster model training
        multiple_models=True,       # one per feature cluster
        multiple_instances=True,
        multiple_winners=False,
        feature_extraction=True,
        feature_scaling=False,
    )
    engine = ADarts()
    rows["A-DARTS"] = dict(
        low_resources=True,
        multiple_models=True,
        multiple_instances=True,    # duplicate families may survive
        multiple_winners=True,      # soft voting over the elite
        feature_extraction=engine.extractor is not None,
        feature_scaling=True,       # scaler is part of the pipeline space
    )
    return rows


def test_table1_capability_matrix(benchmark):
    rows = benchmark.pedantic(_capabilities, rounds=1, iterations=1)
    columns = list(next(iter(rows.values())))
    header = f"{'system':<11}" + "".join(f"{c[:14]:>16}" for c in columns)
    lines = [header]
    for system, flags in rows.items():
        lines.append(
            f"{system:<11}"
            + "".join(f"{'yes' if flags[c] else 'no':>16}" for c in columns)
        )
    emit("Table I — capability matrix", lines)
    # A-DARTS is the only row with every model-configuration capability.
    assert all(rows["A-DARTS"][c] for c in columns if c != "low_resources")
    for system in ("FLAML", "Tune", "AutoFolio", "RAHA"):
        assert not rows[system]["multiple_winners"]
        assert not rows[system]["feature_scaling"]
