"""E1 / Fig. 1 — single-classifier performance across the six categories.

The motivating experiment: kNN, MLP, and a gradient-boosting model
(CatBoost stand-in) with sensible fixed configurations each win on *some*
categories and lose on others — no single classifier dominates, which is
why model selection is needed.
"""

import numpy as np

from conftest import emit
from repro.classifiers import get_classifier
from repro.datasets import holdout_split
from repro.features import get_scaler
from repro.pipeline.metrics import f1_weighted

CLASSIFIERS = {
    "kNN": ("knn", {"k": 5, "weights": "distance", "p": 2}),
    "MLP": ("mlp", {"hidden": (32,), "epochs": 80}),
    "CatBoost*": ("gradient_boosting", {"n_estimators": 25, "max_depth": 3}),
}


def _run(category_features):
    rows = {}
    for category, (X, y) in category_features.items():
        X_tr, X_te, y_tr, y_te = holdout_split(
            X, y, test_ratio=0.35, random_state=0
        )
        scaler = get_scaler("standard").fit(X_tr)
        Z_tr, Z_te = scaler.transform(X_tr), scaler.transform(X_te)
        rows[category] = {}
        for label, (name, params) in CLASSIFIERS.items():
            clf = get_classifier(name, **params).fit(Z_tr, y_tr)
            rows[category][label] = f1_weighted(y_te, clf.predict(Z_te))
    return rows


def test_fig1_classifier_performance(benchmark, category_features):
    rows = benchmark.pedantic(_run, args=(category_features,), rounds=1, iterations=1)
    header = f"{'category':<11}" + "".join(f"{c:>11}" for c in CLASSIFIERS)
    lines = [header]
    for category, scores in rows.items():
        lines.append(
            f"{category:<11}"
            + "".join(f"{scores[c]:>11.3f}" for c in CLASSIFIERS)
        )
    # The paper's observation: the winner varies by category.
    winners = {
        category: max(scores, key=scores.get) for category, scores in rows.items()
    }
    lines.append(f"winners: {winners}")
    emit("Fig. 1 — classifier F1 per category (no single winner)", lines)
    assert len(set(winners.values())) >= 2 or _near_ties(rows)


def _near_ties(rows, tol=0.05):
    """Accept the run if runner-ups are within tol of every winner."""
    for scores in rows.values():
        ordered = sorted(scores.values(), reverse=True)
        if ordered[0] - ordered[1] > tol:
            return False
    return True
