"""Scenario: better repair, better forecasts (the Section VII-F story).

A forecaster trained on badly repaired history learns the wrong trends.
This example repairs a tip outage with (a) the A-DARTS recommendation and
(b) a fixed naive choice, then forecasts 12 steps ahead and compares sMAPE.

Run:
    python examples/forecasting_downstream.py
"""

from repro import ADarts, ModelRaceConfig
from repro.datasets import load_category, load_forecast_dataset
from repro.forecasting import run_downstream_experiment
from repro.forecasting.downstream import BinaryVectorRecommender


def main() -> None:
    # Train the recommender on general-domain categories.
    engine = ADarts(
        config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3),
        classifier_names=["knn", "decision_tree", "gaussian_nb"],
    )
    training = load_category("Power", n_series=12, n_datasets=2) + load_category(
        "Climate", n_series=12, n_datasets=2
    )
    engine.fit_datasets(training)

    static = BinaryVectorRecommender()
    print(f"{'dataset':<16} {'A-DARTS sMAPE':>14} {'static sMAPE':>13} {'gain':>7}")
    for name in ("atm", "electricity", "paris_mobility", "weather"):
        dataset = load_forecast_dataset(name, n_series=6, length=180)
        with_adarts = run_downstream_experiment(
            dataset, lambda s: engine.recommend(s).algorithm
        )
        static_choice = static.recommend(dataset)
        without = run_downstream_experiment(dataset, lambda s: static_choice)
        gain = (without - with_adarts) / without * 100 if without > 0 else 0.0
        print(f"{name:<16} {with_adarts:>14.3f} {without:>13.3f} {gain:>6.1f}%")


if __name__ == "__main__":
    main()
