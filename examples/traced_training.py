"""Traced training: run A-DARTS with full observability switched on.

Trains a small engine with a tracer, a metrics registry, and a logging
race observer installed, repairs a faulty series, then exports

* ``trace.json``    — Chrome ``trace_event`` document; open it in
  ``chrome://tracing`` or https://ui.perfetto.dev to see the nested
  labeling / feature-extraction / race / inference spans on a timeline;
* ``metrics.prom``  — Prometheus text exposition of every counter,
  gauge, and latency histogram the run touched;

and renders the same summary the CLI produces via::

    python -m repro report --trace trace.json --metrics metrics.prom

Run:
    python examples/traced_training.py
"""

import logging

import numpy as np

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.datasets import load_category
from repro.observability import (
    LoggingObserver,
    MetricsRegistry,
    Tracer,
    enable_console_logging,
    use_metrics,
    use_tracer,
)
from repro.observability.report import load_metrics, load_trace, render_report
from repro.timeseries import inject_missing_block


def main() -> None:
    # Narrate race progress to stderr through the stdlib logger.
    enable_console_logging(logging.INFO)

    tracer = Tracer()
    registry = MetricsRegistry()

    datasets = load_category("Climate", n_series=12, n_datasets=2)
    engine = ADarts(
        config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3),
        classifier_names=["knn", "decision_tree", "gaussian_nb"],
        observer=LoggingObserver(),
    )

    t = np.arange(300, dtype=float)
    clean = TimeSeries(
        10.0 + 5.0 * np.sin(2 * np.pi * t / 50.0), name="sensor"
    )
    faulty, _ = inject_missing_block(clean, ratio=0.1, random_state=7)

    # Everything inside this block is traced and metered.
    with use_tracer(tracer), use_metrics(registry):
        engine.fit_datasets(datasets)
        recommendation = engine.recommend(faulty)
        repaired = recommendation.impute(faulty)

    print(f"\nrecommended: {recommendation.algorithm}")
    print(f"repaired series has missing values: {repaired.has_missing}")

    trace_path = tracer.export_chrome_trace("trace.json")
    metrics_path = registry.export("metrics.prom")
    print(f"wrote {len(tracer)} spans to {trace_path}")
    print(f"wrote metrics to {metrics_path}")

    # The report needs only the files on disk — same as `repro report`.
    print()
    print(
        render_report(
            load_trace(trace_path), metrics=load_metrics(metrics_path), top=8
        )
    )


if __name__ == "__main__":
    main()
