"""Scenario: repairing anomaly-laden water-quality sensor feeds.

Water-quality series (discharge, conductivity, pH) carry synchronized trends
*and* sporadic anomalies — the kind of data where the right imputation choice
matters most (Table III shows the largest gaps on Water).  This example:

1. trains A-DARTS on Water-like data,
2. simulates a sensor outage (missing block) on a new station,
3. compares the recommended repair against two naive fallbacks,
4. shows that recommendations differ per station (configuration-free).

Run:
    python examples/water_quality_monitoring.py
"""

import numpy as np

from repro import ADarts, ModelRaceConfig
from repro.datasets import load_category
from repro.datasets.generators import generate_water
from repro.imputation import get_imputer
from repro.imputation.evaluation import imputation_rmse
from repro.timeseries import inject_missing_block


def main() -> None:
    # Train on three Water datasets (different rivers, same domain traits).
    engine = ADarts(
        config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3),
        classifier_names=["knn", "decision_tree", "gradient_boosting", "ridge"],
    )
    engine.fit_datasets(load_category("Water", n_series=16, n_datasets=3))

    # A new monitoring station comes online with an outage.
    station = generate_water(n_series=10, length=300, random_state=99, name="rhine")
    truth = station.to_matrix()
    rng = np.random.default_rng(7)
    print(f"{'station':<10} {'recommended':<12} {'rec RMSE':>9} "
          f"{'mean RMSE':>10} {'linear RMSE':>12}")
    for i in range(4):
        faulty, spec = inject_missing_block(
            station[i], ratio=0.15, random_state=rng
        )
        mask = np.zeros_like(truth, dtype=bool)
        mask[i, spec.start : spec.stop] = True
        rec = engine.recommend(faulty)
        faulty_matrix = truth.copy()
        faulty_matrix[mask] = np.nan
        scores = {}
        for name in (rec.algorithm, "mean", "linear"):
            completed = get_imputer(name).impute(faulty_matrix)
            scores[name] = imputation_rmse(truth, completed, mask)
        print(
            f"sensor_{i:<3} {rec.algorithm:<12} {scores[rec.algorithm]:>9.4f} "
            f"{scores['mean']:>10.4f} {scores['linear']:>12.4f}"
        )


if __name__ == "__main__":
    main()
