"""Scenario: extending A-DARTS with a custom imputation algorithm.

Applications can register their own repair techniques; the labeling stage,
the recommendation engine, and the voting inference pick them up with no
further wiring.  Here we add a seasonal-mean imputer tuned for strongly
periodic data and let the labeling race decide — on each cluster — whether
it actually beats the built-in algorithms.

Run:
    python examples/custom_imputer_plugin.py
"""

import numpy as np

from repro import ADarts, ModelRaceConfig
from repro.clustering.labeling import ClusterLabeler
from repro.datasets import load_category
from repro.imputation import BaseImputer, register_imputer
from repro.imputation.base import interpolate_rows


@register_imputer
class SeasonalMeanImputer(BaseImputer):
    """Fill each missing point with the mean of same-phase observations.

    Strong on strictly periodic series (Power/Climate); useless elsewhere —
    a perfect candidate for a *learned* recommendation.
    """

    name = "seasonal_mean"

    def __init__(self, period: int | None = None):
        self.period = period

    def _detect_period(self, row: np.ndarray) -> int:
        x = row - row.mean()
        denom = float(x @ x) or 1.0
        best_lag, best = 1, 0.2
        for lag in range(2, min(120, x.shape[0] // 2)):
            val = float(x[:-lag] @ x[lag:] / denom)
            if val > best:
                best, best_lag = val, lag
        return best_lag

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        out = interpolate_rows(X)
        for i in range(X.shape[0]):
            if not mask[i].any():
                continue
            observed = np.where(mask[i], np.nan, X[i])
            period = self.period or self._detect_period(out[i])
            if period < 2:
                continue
            for t in np.flatnonzero(mask[i]):
                phase_values = observed[t % period :: period]
                phase_values = phase_values[~np.isnan(phase_values)]
                if phase_values.size:
                    out[i, t] = phase_values.mean()
        return out


def main() -> None:
    # Label Power data with a slate that includes the new algorithm.
    labeler = ClusterLabeler(
        imputer_names=("seasonal_mean", "linear", "knn", "svdimp", "mean")
    )
    engine = ADarts(
        labeler=labeler,
        config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3),
        classifier_names=["knn", "decision_tree", "gaussian_nb"],
    )
    datasets = load_category("Power", n_series=14, n_datasets=3)
    engine.fit_datasets(datasets)

    labels = engine._labeled_corpus.labels
    values, counts = np.unique(labels, return_counts=True)
    print("label distribution after adding the custom imputer:")
    for value, count in zip(values, counts):
        print(f"  {value:<14} {count}")

    faulty = engine._labeled_corpus.series[0]
    rec = engine.recommend(faulty)
    print(f"\nrecommendation for a periodic faulty series: {rec.algorithm}")
    print(f"ranking: {rec.ranking}")


if __name__ == "__main__":
    main()
