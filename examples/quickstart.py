"""Quickstart: train A-DARTS on a small corpus and repair a faulty series.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.datasets import load_category
from repro.timeseries import inject_missing_block


def main() -> None:
    # 1. Load training data: two Climate datasets plus two Water datasets.
    datasets = load_category("Climate", n_series=14, n_datasets=2) + load_category(
        "Water", n_series=14, n_datasets=2
    )
    print(f"training corpus: {sum(len(d) for d in datasets)} series")

    # 2. Train the recommendation engine (labeling + feature extraction +
    #    ModelRace happen inside). A small config keeps this demo fast.
    engine = ADarts(
        config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3),
        classifier_names=["knn", "decision_tree", "random_forest", "gaussian_nb"],
    )
    engine.fit_datasets(datasets)
    print("winning pipelines:")
    for pipeline in engine.winning_pipelines:
        print(f"  {pipeline}")

    # 3. Build a new faulty series the engine has never seen.
    t = np.arange(365, dtype=float)
    clean = TimeSeries(
        12.0 + 9.0 * np.sin(2 * np.pi * t / 365.0) + np.sin(2 * np.pi * t / 7.0),
        name="new_sensor",
    )
    faulty, spec = inject_missing_block(clean, ratio=0.12, random_state=42)
    print(f"\nfaulty series: {faulty} (block at {spec.start}, len {spec.length})")

    # 4. Recommend and repair.
    rec = engine.recommend(faulty)
    print(f"recommended algorithm: {rec.algorithm}")
    print(f"full ranking: {rec.ranking}")
    repaired = rec.impute(faulty)
    rmse = float(
        np.sqrt(
            np.mean(
                (repaired.values[faulty.mask] - clean.values[faulty.mask]) ** 2
            )
        )
    )
    print(f"repair RMSE on the hidden block: {rmse:.4f}")


if __name__ == "__main__":
    main()
