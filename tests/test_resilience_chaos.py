"""Chaos harness: seeded fault plans against the race and the executors.

Every test here follows the same shape: build a deterministic
:class:`~repro.resilience.FaultPlan`, point it at one instrumented call
site, and assert that the system *degrades* (records the failure, prunes
the component, falls back) instead of crashing — and that the outcome is
reproducible for a fixed seed.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core import ModelRace, ModelRaceConfig
from repro.datasets.splits import holdout_split
from repro.exceptions import (
    DeadlineExceededError,
    EvaluationError,
    ImputationError,
    InjectedFault,
    TransientError,
    WorkerCrashError,
)
from repro.imputation import get_imputer
from repro.observability import RecordingObserver
from repro.parallel import ExecutionEngine, ParallelConfig
from repro.pipeline import ScoreWeights, make_seed_pipelines
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultPolicy,
    FaultRule,
    call_with_deadline,
    reset_resilience_stats,
    resilience_stats,
    use_fault_injector,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_resilience_stats()
    yield
    reset_resilience_stats()


@pytest.fixture(scope="module")
def race_data(labeled_features):
    X, y = labeled_features
    return holdout_split(X, y, test_ratio=0.3, random_state=0)


def _race_config(**overrides):
    base = dict(
        n_partial_sets=2,
        n_folds=2,
        max_elite=3,
        random_state=0,
        # Wall-clock-free scoring: chaos outcomes must be byte-comparable.
        weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
    )
    base.update(overrides)
    return ModelRaceConfig(**base)


# ---------------------------------------------------------------------------
# FaultPolicy unit behaviour
# ---------------------------------------------------------------------------
class TestFaultPolicy:
    def test_fail_once_then_succeed_is_retried(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientError("transient hiccup")
            return "ok"

        policy = FaultPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        assert policy.run(flaky, label="test") == "ok"
        assert calls["n"] == 2
        assert resilience_stats()["retries"] == 1

    def test_fatal_errors_are_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("a bug, not weather")

        policy = FaultPolicy(max_retries=5, backoff_base=0.0)
        with pytest.raises(ValueError):
            policy.run(broken, label="test")
        assert calls["n"] == 1

    def test_retry_budget_exhausts(self):
        def always_down():
            raise TransientError("still down")

        policy = FaultPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        with pytest.raises(TransientError):
            policy.run(always_down, label="test")
        assert resilience_stats()["retries"] == 2

    def test_deadline_abandons_hung_call(self):
        start = time.perf_counter()
        with pytest.raises(DeadlineExceededError):
            call_with_deadline(lambda: time.sleep(5.0), 0.1, label="hung")
        # The caller regains control promptly; the sleeper is orphaned.
        assert time.perf_counter() - start < 2.0
        assert resilience_stats()["deadline_hits"] == 1

    def test_deadline_is_fatal_never_retried(self):
        calls = {"n": 0}

        def hang():
            calls["n"] += 1
            time.sleep(5.0)

        policy = FaultPolicy(max_retries=3, eval_deadline=0.1)
        with pytest.raises(DeadlineExceededError):
            policy.run(hang, label="test")
        assert calls["n"] == 1  # a hang retried is a hang multiplied

    def test_no_deadline_runs_inline(self):
        # seconds=None must not spawn a watchdog thread.
        assert call_with_deadline(lambda: 42, None) == 42


# ---------------------------------------------------------------------------
# FaultInjector determinism
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_firing_sequence(self):
        def sequence(seed):
            inj = FaultInjector(
                [FaultRule(site="race.evaluate", probability=0.5)], seed=seed
            )
            out = []
            for i in range(40):
                try:
                    out.append(inj.check("race.evaluate", "knn", token=i) or "pass")
                except InjectedFault:
                    out.append("raise")
            return out

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)  # plans actually differ by seed
        assert "raise" in sequence(7) and "pass" in sequence(7)

    def test_token_draws_are_order_independent(self):
        inj_fwd = FaultInjector(
            [FaultRule(site="race.evaluate", probability=0.5)], seed=3
        )
        inj_rev = FaultInjector(
            [FaultRule(site="race.evaluate", probability=0.5)], seed=3
        )

        def fires(inj, token):
            try:
                inj.check("race.evaluate", "knn", token=token)
                return False
            except InjectedFault:
                return True

        tokens = list(range(20))
        fwd = {t: fires(inj_fwd, t) for t in tokens}
        rev = {t: fires(inj_rev, t) for t in reversed(tokens)}
        assert fwd == rev

    def test_times_and_after_bound_firing(self):
        inj = FaultInjector(
            [FaultRule(site="classifier.fit", after=1, times=1)], seed=0
        )
        assert inj.check("classifier.fit", "knn") is None  # skipped (after)
        with pytest.raises(InjectedFault):
            inj.check("classifier.fit", "knn")  # fires exactly once
        assert inj.check("classifier.fit", "knn") is None  # exhausted
        assert inj.n_fired == 1

    def test_match_targets_one_component(self):
        inj = FaultInjector(
            [FaultRule(site="imputer.impute", match="mean")], seed=0
        )
        assert inj.check("imputer.impute", "linear") is None
        with pytest.raises(InjectedFault):
            inj.check("imputer.impute", "mean")

    def test_nan_kind_returns_poison_marker(self):
        inj = FaultInjector(
            [FaultRule(site="imputer.impute", kind="nan")], seed=0
        )
        assert inj.check("imputer.impute", "mean") == "nan"

    def test_kill_degrades_to_crash_error_in_parent(self):
        inj = FaultInjector(
            [FaultRule(site="executor.task", kind="kill")], seed=0
        )
        with pytest.raises(WorkerCrashError):
            inj.check("executor.task", "batch")

    def test_injector_pickles(self):
        import pickle

        inj = FaultInjector(
            [FaultRule(site="race.evaluate", probability=0.5)], seed=9
        )
        clone = pickle.loads(pickle.dumps(inj))
        assert clone.seed == inj.seed
        assert clone.rules == inj.rules


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(3, name="test")
        assert not breaker.record_failure("p")
        assert not breaker.record_failure("p")
        assert breaker.record_failure("p")  # third consecutive opens it
        assert breaker.is_open("p")
        assert breaker.open_keys() == ["p"]

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(2, name="test")
        breaker.record_failure("p")
        breaker.record_success("p")
        assert not breaker.record_failure("p")  # streak restarted
        assert not breaker.is_open("p")

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(1, reset_after=0.05, name="test")
        breaker.record_failure("p")
        assert breaker.is_open("p")
        time.sleep(0.06)
        assert not breaker.is_open("p")  # probe allowed
        assert breaker.record_failure("p")  # one failure re-opens


# ---------------------------------------------------------------------------
# Chaos against the race
# ---------------------------------------------------------------------------
class TestRaceChaos:
    def test_fail_once_then_succeed_retries_to_clean_race(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        plan = FaultPlan(
            [FaultRule(site="race.evaluate", match="knn", times=1)], seed=0
        )
        cfg = _race_config(
            fault_policy=FaultPolicy(
                max_retries=2, backoff_base=0.0, jitter=0.0
            ),
            fault_injector=plan.injector(),
        )
        seeds = make_seed_pipelines(["knn", "decision_tree"])
        result = ModelRace(cfg).run(seeds, X_tr, y_tr, X_te, y_te)
        assert result.elite  # race completed
        assert result.n_failures == 0  # the retry absorbed the fault
        stats = resilience_stats()
        assert stats["faults_injected"] >= 1
        assert stats["retries"] >= 1

    def test_always_failing_family_is_recorded_not_fatal(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        plan = FaultPlan(
            [FaultRule(site="race.evaluate", match="gaussian_nb")], seed=0
        )
        cfg = _race_config(fault_injector=plan.injector())
        seeds = make_seed_pipelines(["knn", "decision_tree", "gaussian_nb"])
        obs = RecordingObserver()
        result = ModelRace(cfg).run(
            seeds, X_tr, y_tr, X_te, y_te, observer=obs
        )
        assert result.elite
        assert result.n_failures >= 1
        assert all(p.classifier_name != "gaussian_nb" for p in result.elite)
        # Failures surface as scored events carrying the error string.
        failed = [
            e for e in obs.of_type("candidate_scored")
            if e["score"].error is not None
        ]
        assert failed and all(
            "InjectedFault" in e["score"].error for e in failed
        )

    def test_quarantine_prunes_failing_pipeline(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        plan = FaultPlan(
            [FaultRule(site="race.evaluate", match="gaussian_nb")], seed=0
        )
        cfg = _race_config(
            fault_policy=FaultPolicy(quarantine_threshold=1),
            fault_injector=plan.injector(),
        )
        seeds = make_seed_pipelines(["knn", "gaussian_nb"])
        obs = RecordingObserver()
        result = ModelRace(cfg).run(
            seeds, X_tr, y_tr, X_te, y_te, observer=obs
        )
        assert result.n_quarantined >= 1
        quarantine_events = obs.of_type("quarantine")
        assert quarantine_events
        quarantined_keys = {e["config_key"] for e in quarantine_events}
        # Quarantined configurations never rejoin a later iteration.
        later_scored = {
            e["config_key"]
            for e in obs.of_type("candidate_scored")
            if e["iteration"] > min(q["iteration"] for q in quarantine_events)
        }
        assert not (quarantined_keys & later_scored)
        assert all(p.classifier_name != "gaussian_nb" for p in result.elite)

    def test_hang_past_deadline_is_abandoned(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        plan = FaultPlan(
            [
                FaultRule(
                    site="race.evaluate",
                    kind="hang",
                    match="knn",
                    times=1,
                    duration=2.0,
                )
            ],
            seed=0,
        )
        cfg = _race_config(
            fault_policy=FaultPolicy(eval_deadline=0.2),
            fault_injector=plan.injector(),
        )
        seeds = make_seed_pipelines(["knn", "decision_tree"])
        start = time.perf_counter()
        result = ModelRace(cfg).run(seeds, X_tr, y_tr, X_te, y_te)
        assert result.elite
        assert result.n_failures >= 1  # the hung eval scored as failed
        # One 2s hang, 0.2s budget: the race must not have waited it out
        # serially for every fold.
        assert time.perf_counter() - start < 10.0
        assert resilience_stats()["deadline_hits"] >= 1

    def test_fail_fast_escalates(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        plan = FaultPlan(
            [FaultRule(site="race.evaluate", match="knn")], seed=0
        )
        cfg = _race_config(
            fault_policy=FaultPolicy(fail_fast=True),
            fault_injector=plan.injector(),
        )
        seeds = make_seed_pipelines(["knn", "decision_tree"])
        with pytest.raises(EvaluationError):
            ModelRace(cfg).run(seeds, X_tr, y_tr, X_te, y_te)

    def test_classifier_fit_site_records_failure(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        plan = FaultPlan(
            [FaultRule(site="classifier.fit", match="gaussian_nb")], seed=0
        )
        cfg = _race_config(fault_injector=plan.injector())
        seeds = make_seed_pipelines(["knn", "gaussian_nb"])
        result = ModelRace(cfg).run(seeds, X_tr, y_tr, X_te, y_te)
        assert result.elite
        assert result.n_failures >= 1

    def _chaos_outcome(self, race_data, parallel=None):
        X_tr, X_te, y_tr, y_te = race_data
        plan = FaultPlan(
            [FaultRule(site="race.evaluate", probability=0.4)], seed=11
        )
        overrides = {"fault_injector": plan.injector()}
        if parallel is not None:
            overrides["parallel"] = parallel
        cfg = _race_config(**overrides)
        seeds = make_seed_pipelines(["knn", "decision_tree", "gaussian_nb"])
        result = ModelRace(cfg).run(seeds, X_tr, y_tr, X_te, y_te)
        return (
            sorted(map(str, result.scores)),
            {str(k): v for k, v in result.scores.items()},
            result.n_failures,
        )

    def test_chaos_race_is_deterministic_across_runs(self, race_data):
        first = self._chaos_outcome(race_data)
        second = self._chaos_outcome(race_data)
        assert first == second
        assert first[2] >= 1  # the plan actually fired

    def test_chaos_race_agrees_across_backends(self, race_data):
        serial = self._chaos_outcome(race_data)
        threaded = self._chaos_outcome(
            race_data, parallel=ParallelConfig(n_jobs=4, backend="thread")
        )
        assert serial == threaded


# ---------------------------------------------------------------------------
# Chaos against the imputers
# ---------------------------------------------------------------------------
class TestImputerChaos:
    @pytest.fixture
    def gappy(self):
        X = np.tile(np.sin(np.linspace(0, 6.28, 50)), (3, 1))
        X[0, 10:20] = np.nan
        return X

    def test_nan_poison_trips_typed_validation(self, gappy):
        plan = FaultPlan(
            [FaultRule(site="imputer.impute", kind="nan", match="mean")],
            seed=0,
        )
        with use_fault_injector(plan.injector()):
            with pytest.raises(ImputationError):
                get_imputer("mean").impute(gappy)
            # Unmatched imputers are untouched.
            out = get_imputer("linear").impute(gappy)
        assert np.isfinite(out).all()

    def test_injected_raise_propagates_as_transient(self, gappy):
        plan = FaultPlan(
            [FaultRule(site="imputer.impute", match="mean")], seed=0
        )
        with use_fault_injector(plan.injector()):
            with pytest.raises(InjectedFault):
                get_imputer("mean").impute(gappy)

    def test_impute_deadline_abandons_hang(self, gappy):
        from repro.resilience import use_fault_policy

        plan = FaultPlan(
            [
                FaultRule(
                    site="imputer.impute",
                    kind="hang",
                    duration=2.0,
                    match="mean",
                )
            ],
            seed=0,
        )
        # The site hang fires *before* ``_impute`` (outside the deadline
        # window), so the call is delayed but completes; the companion
        # test below puts the slowness inside ``_impute`` where the
        # deadline actually bites.
        start = time.perf_counter()
        with use_fault_policy(FaultPolicy(impute_deadline=0.5)):
            with use_fault_injector(plan.injector()):
                out = get_imputer("mean").impute(gappy)
        assert np.isfinite(out).all()
        assert time.perf_counter() - start >= 2.0  # the hang really slept

    def test_impute_deadline_on_slow_algorithm(self, gappy, monkeypatch):
        from repro.imputation.simple import MeanImputer
        from repro.resilience import use_fault_policy

        def slow_impute(self, X, mask):
            time.sleep(2.0)
            return X

        monkeypatch.setattr(MeanImputer, "_impute", slow_impute)
        start = time.perf_counter()
        with use_fault_policy(FaultPolicy(impute_deadline=0.2)):
            with pytest.raises(DeadlineExceededError):
                MeanImputer().impute(gappy)
        assert time.perf_counter() - start < 1.5


# ---------------------------------------------------------------------------
# Chaos against the execution engine
# ---------------------------------------------------------------------------
class TestExecutorChaos:
    def test_transient_task_crash_retried_in_place(self):
        plan = FaultPlan(
            [FaultRule(site="executor.task", kind="kill", times=1)], seed=0
        )
        engine = ExecutionEngine(
            ParallelConfig(n_jobs=2, backend="thread"),
            injector=plan.injector(),
        )
        with engine:
            out = engine.map(lambda x: x * 2, list(range(8)), label="batch")
        assert out == [x * 2 for x in range(8)]
        assert engine.n_demotions == 0  # absorbed by in-place retries

    def test_thread_backend_demotes_to_serial(self):
        # times=3 exhausts the in-place retry budget (1 + 2 retries) on
        # the thread backend, forcing one thread->serial demotion; the
        # serial resubmission then runs with the rule spent.  One chunk
        # (chunk_size=6) keeps the firing order deterministic: the first
        # item absorbs all three firings.
        plan = FaultPlan(
            [FaultRule(site="executor.task", kind="kill", times=3)], seed=0
        )
        engine = ExecutionEngine(
            ParallelConfig(n_jobs=2, backend="thread", chunk_size=6),
            injector=plan.injector(),
        )
        with engine:
            out = engine.map(lambda x: x + 1, list(range(6)), label="batch")
        assert out == [x + 1 for x in range(6)]
        assert engine.n_demotions == 1
        assert resilience_stats()["backend_demotions"] == 1

    def test_serial_backend_surfaces_exhausted_crashes(self):
        plan = FaultPlan(
            [FaultRule(site="executor.task", kind="kill")], seed=0
        )
        engine = ExecutionEngine(ParallelConfig(), injector=plan.injector())
        with engine:
            with pytest.raises(WorkerCrashError):
                engine.map(lambda x: x, [1, 2, 3], label="batch")


def _kill_child_once(item, *, sentinel: str):
    """Picklable task that hard-kills its host worker exactly once.

    The first pool worker to run a task claims the sentinel file and dies
    via ``os._exit`` — the unclean-exit ``BrokenProcessPool`` regression
    reproducer.  Subsequent executions (including the resubmitted batch
    on the demoted thread backend, where ``parent_process()`` is
    ``None``) just compute.
    """
    if multiprocessing.parent_process() is not None and not os.path.exists(sentinel):
        try:
            with open(sentinel, "x") as fh:
                fh.write("killed")
        except FileExistsError:
            return item * 2  # a sibling worker claimed the kill first
        os._exit(23)
    return item * 2


class TestProcessPoolCrash:
    def test_broken_process_pool_demotes_to_thread(self, tmp_path):
        """Regression: a worker dying mid-batch must not abort the batch.

        The engine detects ``BrokenProcessPool``, tears the pool down,
        demotes to the thread backend, and resubmits the *whole* batch —
        the caller sees complete, correctly ordered results.
        """
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        if engine._process_pool() is None:
            pytest.skip("process pool unavailable in this environment")
        sentinel = str(tmp_path / "worker-killed")
        fn = functools.partial(_kill_child_once, sentinel=sentinel)
        with engine:
            out = engine.map(fn, list(range(8)), label="crash-batch")
        assert out == [i * 2 for i in range(8)]
        assert os.path.exists(sentinel), "kill task never ran in a pool worker"
        assert engine.n_demotions == 1
        stats = resilience_stats()
        assert stats["worker_crashes"] >= 1
        assert stats["backend_demotions"] >= 1

    def test_engine_survives_follow_up_batches_after_crash(self, tmp_path):
        """After a crash the engine keeps serving batches (on threads)."""
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        if engine._process_pool() is None:
            pytest.skip("process pool unavailable in this environment")
        sentinel = str(tmp_path / "worker-killed")
        fn = functools.partial(_kill_child_once, sentinel=sentinel)
        with engine:
            first = engine.map(fn, list(range(4)), label="crash-batch")
            # Pool is marked broken; later batches go straight to threads.
            second = engine.map(fn, list(range(4)), label="after-crash")
        assert first == second == [i * 2 for i in range(4)]
        assert engine.n_demotions == 1  # only the crashed batch demoted
