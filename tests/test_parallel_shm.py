"""Shared-memory transport tests: SharedArray lifecycle, the
``ExecutionEngine.map(shared=...)`` contract on every backend, bounded
per-task serialization, and segment cleanup on worker-crash demotion."""

import functools
import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.parallel import (
    ExecutionEngine,
    ParallelConfig,
    SharedArray,
    active_segments,
    shm_available,
)
from repro.timeseries.batch import SeriesBank

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable in this environment"
)


def _row_sum(index, *, matrix):
    return float(matrix[index].sum())


def _row_dot(index, *, matrix, weights):
    return float(matrix[index] @ weights)


class TestSharedArray:
    def test_roundtrip_and_registry(self):
        data = np.arange(12.0).reshape(3, 4)
        seg = SharedArray.create(data)
        try:
            assert seg.handle[0] in active_segments()
            view = SharedArray.attach(seg.handle)
            np.testing.assert_array_equal(view.array, data)
            # Attached view is zero-copy: segments share the buffer.
            seg.array[0, 0] = 99.0
            assert view.array[0, 0] == 99.0
            view.close()
        finally:
            seg.close()
            seg.unlink()
        assert seg.handle[0] not in active_segments()

    def test_handle_is_tiny_compared_to_array(self):
        data = np.zeros((256, 1024))
        seg = SharedArray.create(data)
        try:
            handle_bytes = len(pickle.dumps(seg.handle))
            assert handle_bytes < 256
            assert handle_bytes * 1000 < data.nbytes
        finally:
            seg.close()
            seg.unlink()

    def test_unlink_is_idempotent(self):
        seg = SharedArray.create(np.ones(4))
        seg.close()
        seg.unlink()
        seg.unlink()  # no raise
        assert active_segments() == ()

    def test_non_contiguous_input_copied(self):
        base = np.arange(20.0).reshape(4, 5)
        strided = base[:, ::2]
        seg = SharedArray.create(strided)
        try:
            np.testing.assert_array_equal(seg.array, strided)
        finally:
            seg.close()
            seg.unlink()


class TestSharedMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_shared_parity(self, backend):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(24, 64))
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend=backend))
        with engine:
            out = engine.map(
                _row_sum,
                list(range(24)),
                label="shm-test",
                shared={"matrix": matrix},
            )
        assert out == [float(matrix[i].sum()) for i in range(24)]
        assert active_segments() == ()

    def test_map_multiple_shared_arrays(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(10, 32))
        weights = rng.normal(size=32)
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        with engine:
            out = engine.map(
                _row_dot,
                list(range(10)),
                label="shm-test",
                shared={"matrix": matrix, "weights": weights},
            )
        np.testing.assert_allclose(out, matrix @ weights, rtol=1e-12)
        assert active_segments() == ()

    def test_empty_batch_with_shared(self):
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        assert engine.map(_row_sum, [], shared={"matrix": np.ones((2, 2))}) == []
        assert active_segments() == ()

    def test_series_bank_share_attach(self):
        rng = np.random.default_rng(2)
        bank = SeriesBank(rng.normal(size=(6, 48)))
        seg = bank.share()
        try:
            clone = SeriesBank.attach(seg.handle)
            np.testing.assert_array_equal(clone.raw, bank.raw)
            np.testing.assert_array_equal(clone.znorm, bank.znorm)
        finally:
            seg.unlink()
        assert active_segments() == ()


def _kill_worker_once(index, *, sentinel, matrix):
    """First pool worker to run claims the sentinel and dies uncleanly."""
    if multiprocessing.parent_process() is not None and not os.path.exists(sentinel):
        try:
            with open(sentinel, "x") as fh:
                fh.write("killed")
        except FileExistsError:
            return float(matrix[index].sum())
        os._exit(23)
    return float(matrix[index].sum())


class TestCrashCleanup:
    def test_segments_unlinked_on_demotion(self, tmp_path):
        """A worker crash mid-batch demotes to threads AND unlinks the
        shared segments before the thread resubmission."""
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        if engine._process_pool() is None:
            pytest.skip("process pool unavailable in this environment")
        matrix = np.arange(32.0).reshape(8, 4)
        sentinel = str(tmp_path / "worker-killed")
        fn = functools.partial(_kill_worker_once, sentinel=sentinel)
        with engine:
            out = engine.map(
                fn, list(range(8)), label="shm-crash", shared={"matrix": matrix}
            )
        assert out == [float(matrix[i].sum()) for i in range(8)]
        assert os.path.exists(sentinel), "kill task never ran in a pool worker"
        assert engine.n_demotions == 1
        assert active_segments() == ()


class TestAttachCacheStaleness:
    """Regression: segment names are recycled by the OS, so the attach
    cache must never serve a mapping whose geometry no longer matches
    the incoming handle."""

    def test_same_name_different_geometry_reattaches(self):
        from repro.parallel.shm import attach_cached, clear_attach_cache

        clear_attach_cache()
        seg = SharedArray.create(np.arange(16.0).reshape(4, 4))
        try:
            cached = attach_cached(seg.handle)
            assert cached.array.shape == (4, 4)
            # A recycled name arrives with different geometry: the stale
            # mapping must be dropped, not served as-is.
            recycled = (seg.handle[0], (2, 2), seg.handle[2])
            fresh = attach_cached(recycled)
            assert fresh is not cached
            assert fresh.array.shape == (2, 2)
            np.testing.assert_array_equal(
                fresh.array, np.arange(4.0).reshape(2, 2)
            )
            # And the fresh mapping is what the cache now holds.
            assert attach_cached(recycled) is fresh
        finally:
            clear_attach_cache()
            seg.close()
            seg.unlink()

    def test_dtype_mismatch_reattaches(self):
        from repro.parallel.shm import attach_cached, clear_attach_cache

        clear_attach_cache()
        seg = SharedArray.create(np.arange(8.0))
        try:
            cached = attach_cached(seg.handle)
            recycled = (seg.handle[0], (16,), np.dtype(np.float32).str)
            fresh = attach_cached(recycled)
            assert fresh is not cached
            assert fresh.array.dtype == np.float32
        finally:
            clear_attach_cache()
            seg.close()
            seg.unlink()

    def test_closed_cached_segment_reattaches(self):
        from repro.parallel.shm import attach_cached, clear_attach_cache

        clear_attach_cache()
        seg = SharedArray.create(np.ones(6))
        try:
            cached = attach_cached(seg.handle)
            cached.close()  # e.g. torn down by an earlier batch
            fresh = attach_cached(seg.handle)
            assert fresh is not cached
            np.testing.assert_array_equal(fresh.array, np.ones(6))
        finally:
            clear_attach_cache()
            seg.close()
            seg.unlink()


class TestFeatureCacheDurability:
    def test_put_leaves_no_temp_files(self, tmp_path):
        from repro.parallel import FeatureCache

        cache = FeatureCache(tmp_path)
        for i in range(4):
            cache.put(f"key{i}", np.arange(8.0) + i)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [f"key{i}.npy" for i in range(4)]

    def test_put_is_fsynced_before_rename(self, tmp_path, monkeypatch):
        """The published name must only ever point at flushed bytes."""
        import repro.parallel.cache as cache_mod
        from repro.parallel import FeatureCache

        order = []
        real_fsync = os.fsync
        real_replace = cache_mod.pathlib.Path.replace

        def spy_fsync(fd):
            order.append("fsync")
            return real_fsync(fd)

        def spy_replace(self, target):
            order.append(("replace", target.name))
            return real_replace(self, target)

        monkeypatch.setattr(cache_mod.os, "fsync", spy_fsync)
        monkeypatch.setattr(cache_mod.pathlib.Path, "replace", spy_replace)
        FeatureCache(tmp_path).put("abc", np.arange(4.0))
        assert order[0] == "fsync"  # file data flushed first
        assert ("replace", "abc.npy") in order
        np.testing.assert_array_equal(
            np.load(tmp_path / "abc.npy"), np.arange(4.0)
        )

    def test_reload_after_put(self, tmp_path):
        from repro.parallel import FeatureCache

        FeatureCache(tmp_path).put("vec", np.linspace(0, 1, 5))
        fresh = FeatureCache(tmp_path)  # a new process
        np.testing.assert_array_equal(
            fresh.get("vec"), np.linspace(0, 1, 5)
        )
        assert fresh.misses == 0


class TestSharedEngineLifecycle:
    """The serving daemon's engine transport rides the same SharedArray
    lifecycle rules: publish once, attach many, release exactly once."""

    def test_publish_attach_release(self, serving_engine):
        from repro.serving.shards import SharedEngine, attach_shared_engine
        from repro.timeseries import TimeSeries

        before = set(active_segments())
        export = SharedEngine.publish(serving_engine)
        created = set(active_segments()) - before
        assert len(created) == 2  # JSON document + training matrix
        assert export.nbytes > 0

        # An attached engine answers like the original.
        attached = attach_shared_engine(export.handle)
        rng = np.random.default_rng(7)
        t = np.linspace(0, 4 * np.pi, 96)
        values = np.sin(t) + 0.05 * rng.normal(size=96)
        values[30:45] = np.nan
        series = TimeSeries(values, name="probe")
        rec_a = serving_engine.recommend_many([series])[0]
        rec_b = attached.recommend_many([series])[0]
        assert rec_a.algorithm == rec_b.algorithm
        assert list(rec_a.ranking) == list(rec_b.ranking)
        fixed_a = serving_engine.repair_many([series], [rec_a])[0]
        fixed_b = attached.repair_many([series], [rec_b])[0]
        assert np.array_equal(
            fixed_a.values, fixed_b.values, equal_nan=True
        )

        export.release()
        assert set(active_segments()) & created == set()
        # Release is idempotent.
        export.release()

    def test_attached_matrix_is_zero_copy(self, serving_engine):
        from repro.parallel.shm import attach_cached
        from repro.serving.shards import SharedEngine, attach_shared_engine

        export = SharedEngine.publish(serving_engine)
        try:
            attached = attach_shared_engine(export.handle)
            segment = attach_cached(tuple(export.handle["train_x"]))
            X = attached._train_X
            # The imported engine's matrix must alias the shared segment,
            # not a per-worker copy: that is the zero-pickling claim.
            assert np.shares_memory(X, segment.array)
        finally:
            export.release()

    def test_pool_stop_unlinks_after_worker_crash(self, serving_engine):
        """Killing a shard process outright must not leak segments."""
        from repro.serving import LoadGenerator, ShardPool

        before = set(active_segments())
        pool = ShardPool(serving_engine, 2, backend="process")
        with pool:
            requests = LoadGenerator(seed=31, length=96).requests(4)
            results, shard_id, _ = pool.run_batch(requests)
            assert all(r["status"] == 200 for r in results)
            # Simulate an external kill of one worker process.
            victim = pool._shards[0].runner
            victim._proc.terminate()
            victim._proc.join(timeout=5)
        assert set(active_segments()) == before
