"""Shared-memory transport tests: SharedArray lifecycle, the
``ExecutionEngine.map(shared=...)`` contract on every backend, bounded
per-task serialization, and segment cleanup on worker-crash demotion."""

import functools
import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.parallel import (
    ExecutionEngine,
    ParallelConfig,
    SharedArray,
    active_segments,
    shm_available,
)
from repro.timeseries.batch import SeriesBank

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable in this environment"
)


def _row_sum(index, *, matrix):
    return float(matrix[index].sum())


def _row_dot(index, *, matrix, weights):
    return float(matrix[index] @ weights)


class TestSharedArray:
    def test_roundtrip_and_registry(self):
        data = np.arange(12.0).reshape(3, 4)
        seg = SharedArray.create(data)
        try:
            assert seg.handle[0] in active_segments()
            view = SharedArray.attach(seg.handle)
            np.testing.assert_array_equal(view.array, data)
            # Attached view is zero-copy: segments share the buffer.
            seg.array[0, 0] = 99.0
            assert view.array[0, 0] == 99.0
            view.close()
        finally:
            seg.close()
            seg.unlink()
        assert seg.handle[0] not in active_segments()

    def test_handle_is_tiny_compared_to_array(self):
        data = np.zeros((256, 1024))
        seg = SharedArray.create(data)
        try:
            handle_bytes = len(pickle.dumps(seg.handle))
            assert handle_bytes < 256
            assert handle_bytes * 1000 < data.nbytes
        finally:
            seg.close()
            seg.unlink()

    def test_unlink_is_idempotent(self):
        seg = SharedArray.create(np.ones(4))
        seg.close()
        seg.unlink()
        seg.unlink()  # no raise
        assert active_segments() == ()

    def test_non_contiguous_input_copied(self):
        base = np.arange(20.0).reshape(4, 5)
        strided = base[:, ::2]
        seg = SharedArray.create(strided)
        try:
            np.testing.assert_array_equal(seg.array, strided)
        finally:
            seg.close()
            seg.unlink()


class TestSharedMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_shared_parity(self, backend):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(24, 64))
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend=backend))
        with engine:
            out = engine.map(
                _row_sum,
                list(range(24)),
                label="shm-test",
                shared={"matrix": matrix},
            )
        assert out == [float(matrix[i].sum()) for i in range(24)]
        assert active_segments() == ()

    def test_map_multiple_shared_arrays(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(10, 32))
        weights = rng.normal(size=32)
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        with engine:
            out = engine.map(
                _row_dot,
                list(range(10)),
                label="shm-test",
                shared={"matrix": matrix, "weights": weights},
            )
        np.testing.assert_allclose(out, matrix @ weights, rtol=1e-12)
        assert active_segments() == ()

    def test_empty_batch_with_shared(self):
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        assert engine.map(_row_sum, [], shared={"matrix": np.ones((2, 2))}) == []
        assert active_segments() == ()

    def test_series_bank_share_attach(self):
        rng = np.random.default_rng(2)
        bank = SeriesBank(rng.normal(size=(6, 48)))
        seg = bank.share()
        try:
            clone = SeriesBank.attach(seg.handle)
            np.testing.assert_array_equal(clone.raw, bank.raw)
            np.testing.assert_array_equal(clone.znorm, bank.znorm)
        finally:
            seg.unlink()
        assert active_segments() == ()


def _kill_worker_once(index, *, sentinel, matrix):
    """First pool worker to run claims the sentinel and dies uncleanly."""
    if multiprocessing.parent_process() is not None and not os.path.exists(sentinel):
        try:
            with open(sentinel, "x") as fh:
                fh.write("killed")
        except FileExistsError:
            return float(matrix[index].sum())
        os._exit(23)
    return float(matrix[index].sum())


class TestCrashCleanup:
    def test_segments_unlinked_on_demotion(self, tmp_path):
        """A worker crash mid-batch demotes to threads AND unlinks the
        shared segments before the thread resubmission."""
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        if engine._process_pool() is None:
            pytest.skip("process pool unavailable in this environment")
        matrix = np.arange(32.0).reshape(8, 4)
        sentinel = str(tmp_path / "worker-killed")
        fn = functools.partial(_kill_worker_once, sentinel=sentinel)
        with engine:
            out = engine.map(
                fn, list(range(8)), label="shm-crash", shared={"matrix": matrix}
            )
        assert out == [float(matrix[i].sum()) for i in range(8)]
        assert os.path.exists(sentinel), "kill task never ran in a pool worker"
        assert engine.n_demotions == 1
        assert active_segments() == ()
