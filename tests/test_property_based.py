"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.features import FeatureExtractor, get_scaler
from repro.features.topological import persistence_diagram
from repro.imputation import get_imputer
from repro.pipeline.metrics import (
    accuracy_score,
    mean_reciprocal_rank,
    recall_at_k,
    weighted_precision_recall_f1,
)
from repro.forecasting import smape
from repro.timeseries import TimeSeries, inject_missing_block
from repro.timeseries.correlation import cross_correlation, max_cross_correlation


finite_series = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=16, max_value=128),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)

# Magnitudes below 1e-6 are snapped to zero: denormal-scale values make
# float absorption (x + 1.0 == 1.0) defeat exact-equality properties
# without exercising any library behaviour.
small_series = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=32, max_value=96),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False).map(
        lambda v: 0.0 if abs(v) < 1e-6 else v
    ),
)


class TestTimeSeriesProperties:
    @given(values=finite_series)
    def test_zscore_idempotent_scale(self, values):
        from hypothesis import assume

        ts = TimeSeries(values)
        z = ts.zscore()
        assert len(z) == len(ts)
        # Near-constant inputs (std at float-noise level) are numerically
        # degenerate; idempotence only makes sense away from them.
        assume(values.std() > 1e-6 * (np.abs(values).max() + 1.0))
        assert abs(z.values.mean()) < 1e-6
        zz = z.zscore()
        assert np.allclose(z.values, zz.values, atol=1e-6)

    @given(values=finite_series, ratio=st.floats(min_value=0.05, max_value=0.5))
    def test_injection_then_interpolation_restores_completeness(self, values, ratio):
        ts = TimeSeries(values)
        faulty, spec = inject_missing_block(ts, ratio=ratio, random_state=0)
        assert faulty.n_missing == spec.length
        restored = faulty.interpolated()
        assert not restored.has_missing
        # Observed values unchanged.
        obs = ~faulty.mask
        assert np.array_equal(restored.values[obs], values[obs])

    @given(values=small_series)
    def test_missing_blocks_partition_mask(self, values):
        vals = values.copy()
        vals[5:9] = np.nan
        vals[20:21] = np.nan
        ts = TimeSeries(vals)
        total = sum(length for _, length in ts.missing_blocks())
        assert total == ts.n_missing


class TestCorrelationProperties:
    @given(values=small_series)
    def test_self_correlation_bounds(self, values):
        c = cross_correlation(values, values)
        assert -1.0 - 1e-9 <= c <= 1.0 + 1e-9
        if values.std() > 1e-6:
            assert c == pytest.approx(1.0, abs=1e-6)

    @given(values=small_series, shift=st.integers(min_value=0, max_value=10))
    def test_max_cross_correlation_dominates_plain(self, values, shift):
        other = np.roll(values, shift)
        assert (
            max_cross_correlation(values, other)
            >= cross_correlation(values, other) - 1e-9
        )


class TestImputationProperties:
    @settings(max_examples=20, deadline=None)
    @given(values=small_series, start=st.integers(min_value=2, max_value=20))
    def test_linear_imputer_never_exceeds_anchor_range(self, values, start):
        # Linear interpolation output is a convex combination of anchors.
        vals = values.copy()
        stop = min(start + 6, len(vals) - 2)
        if stop <= start:
            return
        vals[start:stop] = np.nan
        out = get_imputer("linear").impute(vals[None, :])[0]
        lo, hi = np.nanmin(values), np.nanmax(values)
        assert out.min() >= lo - 1e-9
        assert out.max() <= hi + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(values=small_series)
    def test_mean_imputer_constant_inside_gap(self, values):
        vals = values.copy()
        vals[10:16] = np.nan
        out = get_imputer("mean").impute(vals[None, :])[0]
        gap = out[10:16]
        assert np.allclose(gap, gap[0])


class TestMetricProperties:
    labels = st.lists(
        st.sampled_from(["a", "b", "c"]), min_size=2, max_size=30
    )

    @given(y=labels)
    def test_perfect_prediction_all_ones(self, y):
        p, r, f = weighted_precision_recall_f1(y, list(y))
        assert p == pytest.approx(1.0)
        assert r == pytest.approx(1.0)
        assert f == pytest.approx(1.0)
        assert accuracy_score(y, list(y)) == 1.0

    @given(y_true=labels, seed=st.integers(min_value=0, max_value=100))
    def test_metrics_bounded(self, y_true, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.choice(["a", "b", "c"], size=len(y_true)).tolist()
        p, r, f = weighted_precision_recall_f1(y_true, y_pred)
        for v in (p, r, f):
            assert 0.0 <= v <= 1.0
        assert 0.0 <= accuracy_score(y_true, y_pred) <= 1.0

    @given(y=labels)
    def test_f1_le_one_and_accuracy_equals_weighted_recall(self, y):
        rng = np.random.default_rng(0)
        y_pred = rng.choice(["a", "b", "c"], size=len(y)).tolist()
        _, recall, _ = weighted_precision_recall_f1(y, y_pred)
        assert accuracy_score(y, y_pred) == pytest.approx(recall)

    @given(y=labels)
    def test_recall_at_k_monotone_in_k(self, y):
        rng = np.random.default_rng(1)
        rankings = [
            rng.permutation(["a", "b", "c"]).tolist() for _ in y
        ]
        r1 = recall_at_k(y, rankings, k=1)
        r2 = recall_at_k(y, rankings, k=2)
        r3 = recall_at_k(y, rankings, k=3)
        assert r1 <= r2 <= r3 == 1.0

    @given(y=labels)
    def test_mrr_between_zero_and_one(self, y):
        rng = np.random.default_rng(2)
        rankings = [rng.permutation(["a", "b", "c"]).tolist() for _ in y]
        assert 0.0 <= mean_reciprocal_rank(y, rankings) <= 1.0

    @given(
        y_true=hnp.arrays(
            np.float64, st.integers(2, 20),
            elements=st.floats(min_value=0.1, max_value=1e3),
        )
    )
    def test_smape_bounds(self, y_true):
        rng = np.random.default_rng(0)
        y_pred = y_true * rng.uniform(0.5, 2.0, size=y_true.shape)
        assert 0.0 <= smape(y_true, y_pred) <= 2.0


class TestScalerProperties:
    matrices = hnp.arrays(
        np.float64,
        st.tuples(st.integers(5, 30), st.integers(2, 8)),
        elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )

    @settings(max_examples=20, deadline=None)
    @given(X=matrices)
    def test_standard_scaler_output_standardized(self, X):
        Z = get_scaler("standard").fit_transform(X)
        assert np.isfinite(Z).all()
        live = X.std(axis=0) > 1e-9
        if live.any():
            assert np.allclose(Z[:, live].mean(axis=0), 0.0, atol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(X=matrices)
    def test_minmax_within_range(self, X):
        Z = get_scaler("minmax").fit_transform(X)
        assert Z.min() >= -1e-9
        assert Z.max() <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(X=matrices)
    def test_transform_consistent_with_fit_transform(self, X):
        scaler = get_scaler("robust")
        Z1 = scaler.fit_transform(X)
        Z2 = scaler.transform(X)
        assert np.allclose(Z1, Z2)


class TestTopologyProperties:
    @settings(max_examples=20, deadline=None)
    @given(values=small_series)
    def test_sublevel_diagram_death_ge_birth(self, values):
        diagram = persistence_diagram(values, kind="sublevel")
        if diagram.size:
            assert (diagram[:, 1] >= diagram[:, 0]).all()

    @settings(max_examples=20, deadline=None)
    @given(values=small_series, shift=st.floats(min_value=-50, max_value=50))
    def test_sublevel_diagram_translation_equivariant(self, values, shift):
        d1 = persistence_diagram(values, kind="sublevel")
        d2 = persistence_diagram(values + shift, kind="sublevel")
        assert d1.shape == d2.shape
        if d1.size:
            assert np.allclose(
                sorted(d1[:, 1] - d1[:, 0]), sorted(d2[:, 1] - d2[:, 0]),
                atol=1e-9,
            )


class TestFeatureExtractorProperties:
    @settings(max_examples=15, deadline=None)
    @given(values=small_series)
    def test_feature_vector_always_finite_fixed_length(self, values):
        fe = FeatureExtractor()
        v = fe.extract(values)
        assert v.shape == (fe.n_features,)
        assert np.isfinite(v).all()
