"""Tests for incremental clustering, K-Shape, and cluster labeling."""

import numpy as np
import pytest

from repro.clustering import (
    ClusterLabeler,
    IncrementalClustering,
    KShape,
    correlation_gain,
    kshape_grid_search,
    kshape_iterative,
)
from repro.exceptions import ClusteringError, ValidationError
from repro.timeseries import TimeSeries


def _make_groups(rng, n_per=6, length=120):
    """Three clearly distinct shape groups."""
    t = np.linspace(0, 4 * np.pi, length)
    groups = [np.sin(t), np.sign(np.sin(3 * t)), t / t.max() * 2 - 1]
    series = []
    for g, base in enumerate(groups):
        for i in range(n_per):
            noisy = base * rng.uniform(0.9, 1.1) + rng.normal(0, 0.05, length)
            series.append(TimeSeries(noisy, name=f"g{g}_{i}"))
    return series


@pytest.fixture(scope="module")
def grouped_series():
    return _make_groups(np.random.default_rng(0))


class TestCorrelationGain:
    def test_positive_when_union_improves(self):
        assert correlation_gain(0.9, 0.5, 0.5, 10) > 0

    def test_zero_m_raises(self):
        with pytest.raises(ValidationError):
            correlation_gain(0.9, 0.5, 0.5, 0)

    def test_formula(self):
        value = correlation_gain(0.8, 0.6, 0.5, 4)
        expected = (0.8 - (0.6 * 0.5) / 4) / 8
        assert value == pytest.approx(expected)


class TestIncrementalClustering:
    def test_finds_the_three_groups(self, grouped_series):
        model = IncrementalClustering(delta=0.8, random_state=0).fit(grouped_series)
        labels = model.labels_
        # Series of the same group share a label.
        for g in range(3):
            block = labels[g * 6 : (g + 1) * 6]
            assert len(set(block.tolist())) == 1
        assert model.n_clusters_ >= 3

    def test_high_intra_cluster_correlation(self, grouped_series):
        model = IncrementalClustering(delta=0.8, random_state=0).fit(grouped_series)
        assert model.average_correlation() > 0.8

    def test_single_series(self):
        model = IncrementalClustering().fit([TimeSeries(np.arange(50.0))])
        assert model.n_clusters_ == 1

    def test_empty_raises(self):
        with pytest.raises(ClusteringError):
            IncrementalClustering().fit([])

    def test_invalid_delta_raises(self):
        with pytest.raises(ValidationError):
            IncrementalClustering(delta=0.0)

    def test_unfitted_guards(self):
        model = IncrementalClustering()
        with pytest.raises(ClusteringError):
            _ = model.n_clusters_

    def test_labels_partition_everything(self, grouped_series):
        model = IncrementalClustering(random_state=0).fit(grouped_series)
        assert model.labels_.shape == (len(grouped_series),)
        covered = sorted(i for cluster in model.clusters_ for i in cluster)
        assert covered == list(range(len(grouped_series)))


class TestKShape:
    def test_separates_groups(self, grouped_series):
        model = KShape(n_clusters=3, random_state=0).fit(grouped_series)
        labels = model.labels_
        for g in range(3):
            block = labels[g * 6 : (g + 1) * 6]
            # A dominant label per group (k-shape may misplace one series).
            values, counts = np.unique(block, return_counts=True)
            assert counts.max() >= 5

    def test_invalid_k_raises(self):
        with pytest.raises(ValidationError):
            KShape(n_clusters=0)

    def test_empty_raises(self):
        with pytest.raises(ClusteringError):
            KShape().fit([])

    def test_average_correlation_computable(self, grouped_series):
        model = KShape(n_clusters=3, random_state=0).fit(grouped_series)
        assert -1.0 <= model.average_correlation() <= 1.0

    def test_grid_search_beats_default_k(self, grouped_series):
        default = KShape(n_clusters=8, random_state=0).fit(grouped_series)
        best = kshape_grid_search(grouped_series, k_values=range(2, 7))
        assert best.average_correlation() >= default.average_correlation() - 0.05

    def test_iterative_reaches_target(self, grouped_series):
        model = kshape_iterative(
            grouped_series, target_correlation=0.8, max_k=10
        )
        assert model.average_correlation() >= 0.8 or model.n_clusters_ == 10


class TestClusterLabeler:
    def test_labels_whole_dataset(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear", "mean"), random_state=0
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        assert len(corpus) == len(small_climate_dataset)
        assert all(label in ("linear", "mean") for label in corpus.labels)
        assert all(s.has_missing for s in corpus.series)
        assert corpus.n_benchmark_runs >= 1

    def test_rankings_complete(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear", "mean", "knn"), random_state=0
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        for ranking in corpus.rankings:
            assert sorted(ranking) == ["knn", "linear", "mean"]

    def test_label_propagation_amortizes_runs(self, small_climate_dataset):
        labeler = ClusterLabeler(imputer_names=("linear", "mean"), random_state=0)
        corpus = labeler.label_dataset(small_climate_dataset)
        # Far fewer benchmark runs than series (that's the whole point).
        assert corpus.n_benchmark_runs < len(corpus)

    def test_categories_recorded(self, small_climate_dataset):
        labeler = ClusterLabeler(imputer_names=("linear", "mean"), random_state=0)
        corpus = labeler.label_dataset(small_climate_dataset)
        assert set(corpus.categories) == {"Climate"}

    def test_corpus_concatenation(self, small_climate_dataset, small_motion_dataset):
        labeler = ClusterLabeler(imputer_names=("linear", "mean"), random_state=0)
        corpus = labeler.label_corpus(
            [small_climate_dataset, small_motion_dataset]
        )
        assert len(corpus) == len(small_climate_dataset) + len(small_motion_dataset)
        assert set(corpus.categories) == {"Climate", "Motion"}

    def test_empty_imputers_raise(self):
        with pytest.raises(ValidationError):
            ClusterLabeler(imputer_names=())

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValidationError):
            ClusterLabeler(missing_ratio=0.0)

    def test_empty_datasets_raise(self):
        with pytest.raises(ValidationError):
            ClusterLabeler().label_corpus([])
