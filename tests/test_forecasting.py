"""Tests for the forecasting substrate and the downstream harness."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, RegistryError, ValidationError
from repro.forecasting import (
    ARForecaster,
    HoltWintersForecaster,
    SeasonalNaiveForecaster,
    get_forecaster,
    smape,
)
from repro.forecasting.downstream import (
    BinaryVectorRecommender,
    downstream_forecast_error,
    run_downstream_experiment,
)
from repro.forecasting.metrics import mase
from repro.forecasting.models import detect_period
from repro.datasets import load_forecast_dataset
from repro.timeseries import TimeSeries

ALL_FORECASTERS = [SeasonalNaiveForecaster, HoltWintersForecaster, ARForecaster]


@pytest.fixture
def seasonal_signal():
    t = np.arange(120, dtype=float)
    return 10 + 3 * np.sin(2 * np.pi * t / 12.0)


class TestDetectPeriod:
    def test_finds_sine_period(self, seasonal_signal):
        assert detect_period(seasonal_signal) == 12

    def test_aperiodic_returns_one(self):
        assert detect_period(np.random.default_rng(0).normal(size=100)) == 1

    def test_constant_returns_one(self):
        assert detect_period(np.full(50, 2.0)) == 1


class TestForecasters:
    @pytest.mark.parametrize("cls", ALL_FORECASTERS)
    def test_forecast_shape(self, cls, seasonal_signal):
        model = cls().fit(seasonal_signal)
        assert model.forecast(12).shape == (12,)

    @pytest.mark.parametrize("cls", ALL_FORECASTERS)
    def test_accurate_on_clean_seasonal(self, cls, seasonal_signal):
        model = cls().fit(seasonal_signal)
        t_future = np.arange(120, 132, dtype=float)
        truth = 10 + 3 * np.sin(2 * np.pi * t_future / 12.0)
        assert smape(truth, model.forecast(12)) < 0.05

    @pytest.mark.parametrize("cls", ALL_FORECASTERS)
    def test_unfitted_raises(self, cls):
        with pytest.raises(NotFittedError):
            cls().forecast(3)

    @pytest.mark.parametrize("cls", ALL_FORECASTERS)
    def test_nan_history_rejected(self, cls):
        with pytest.raises(ValidationError):
            cls().fit(np.array([1.0, np.nan, 3.0, 4.0, 5.0]))

    @pytest.mark.parametrize("cls", ALL_FORECASTERS)
    def test_invalid_horizon_raises(self, cls, seasonal_signal):
        model = cls().fit(seasonal_signal)
        with pytest.raises(ValidationError):
            model.forecast(0)

    def test_holt_winters_tracks_trend(self):
        x = np.arange(60, dtype=float) * 0.5 + 3
        model = HoltWintersForecaster(period=1).fit(x)
        pred = model.forecast(5)
        truth = np.arange(60, 65, dtype=float) * 0.5 + 3
        assert np.abs(pred - truth).max() < 1.0

    def test_ar_recovers_ar1(self):
        rng = np.random.default_rng(0)
        x = np.zeros(400)
        for i in range(1, 400):
            x[i] = 0.8 * x[i - 1] + rng.normal(0, 0.1)
        model = ARForecaster(order=1).fit(x)
        assert model._coef[0] == pytest.approx(0.8, abs=0.08)

    def test_registry(self):
        assert get_forecaster("ar").name == "ar"
        with pytest.raises(RegistryError):
            get_forecaster("prophet")


class TestMetrics:
    def test_smape_zero_on_perfect(self):
        assert smape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_smape_symmetry(self):
        assert smape([1.0], [3.0]) == smape([3.0], [1.0])

    def test_smape_bounded_by_two(self):
        assert smape([1.0], [-1.0]) == pytest.approx(2.0)

    def test_smape_both_zero_contributes_zero(self):
        assert smape([0.0, 1.0], [0.0, 1.0]) == 0.0

    def test_smape_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            smape([1.0, 2.0], [1.0])

    def test_mase_naive_is_one(self):
        history = np.arange(20, dtype=float)
        y_true = np.array([20.0, 21.0])
        y_pred = y_true - 1.0  # exactly the naive one-step error
        assert mase(y_true, y_pred, history) == pytest.approx(1.0)


class TestBinaryVectorRecommender:
    def test_recommends_known_algorithm(self):
        ds = load_forecast_dataset("electricity", n_series=4, length=120)
        rec = BinaryVectorRecommender()
        assert rec.recommend(ds) in rec.algorithm_scores

    def test_properties_binary(self):
        ds = load_forecast_dataset("atm", n_series=4, length=120)
        props = BinaryVectorRecommender.dataset_properties(ds)
        assert set(np.unique(props).tolist()).issubset({0.0, 1.0})

    def test_empty_scores_raise(self):
        with pytest.raises(ValidationError):
            BinaryVectorRecommender(algorithm_scores={})


class TestDownstreamHarness:
    def test_downstream_error_in_range(self, seasonal_signal):
        series = TimeSeries(seasonal_signal)
        t_future = np.arange(120, 132, dtype=float)
        future = 10 + 3 * np.sin(2 * np.pi * t_future / 12.0)
        err = downstream_forecast_error(series, future, "linear")
        assert 0.0 <= err <= 2.0

    def test_better_imputation_helps(self, seasonal_signal):
        # 'mean' destroys the final 20% of a seasonal signal; tkcm repairs
        # the periodic pattern — forecasts must reflect that gap.
        series = TimeSeries(seasonal_signal)
        t_future = np.arange(120, 132, dtype=float)
        future = 10 + 3 * np.sin(2 * np.pi * t_future / 12.0)
        err_good = downstream_forecast_error(series, future, "tkcm")
        err_bad = downstream_forecast_error(series, future, "mean")
        assert err_good < err_bad

    def test_short_future_raises(self, seasonal_signal):
        with pytest.raises(ValidationError):
            downstream_forecast_error(
                TimeSeries(seasonal_signal), np.zeros(3), "linear", horizon=12
            )

    def test_run_experiment_returns_mean_error(self):
        ds = load_forecast_dataset("atm", n_series=3, length=120)
        err = run_downstream_experiment(ds, lambda s: "linear", horizon=8)
        assert 0.0 <= err <= 2.0
