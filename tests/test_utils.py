"""Unit tests for utility helpers (rng, validation, timing)."""

import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils import (
    Timer,
    check_1d,
    check_2d,
    check_finite,
    check_positive,
    check_probability,
    ensure_rng,
    spawn_rng,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent(self):
        parent = ensure_rng(0)
        children = spawn_rng(parent, 3)
        assert len(children) == 3
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), -1)


class TestValidation:
    def test_check_1d_accepts_lists(self):
        arr = check_1d([1, 2, 3])
        assert arr.dtype == float

    def test_check_1d_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_1d([])

    def test_check_1d_nan_policy(self):
        check_1d([1.0, np.nan])  # allowed by default
        with pytest.raises(ValidationError):
            check_1d([1.0, np.nan], allow_nan=False)

    def test_check_1d_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_1d([1.0, np.inf])

    def test_check_2d_shape(self):
        with pytest.raises(ValidationError):
            check_2d([1.0, 2.0])

    def test_check_finite(self):
        with pytest.raises(ValidationError):
            check_finite(np.array([np.nan]))

    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        with pytest.raises(ValidationError):
            check_positive(0.0)
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive(-1.0, strict=False)

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.5)


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_start_stop(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed >= 0.004
        assert t.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_restart_after_with_block(self):
        """start/stop works on a timer previously used as a context manager."""
        t = Timer()
        with t:
            time.sleep(0.002)
        first = t.elapsed
        assert first >= 0.001
        t.start()
        time.sleep(0.002)
        second = t.stop()
        assert second >= 0.001
        assert t.elapsed == second  # elapsed reflects the latest run only

    def test_stop_twice_raises(self):
        """A stopped timer needs a fresh start before stopping again."""
        t = Timer()
        t.start()
        t.stop()
        with pytest.raises(RuntimeError):
            t.stop()

    def test_start_restarts_running_timer(self):
        """Calling start on a running timer restarts the clock."""
        t = Timer()
        t.start()
        time.sleep(0.01)
        t.start()  # restart: discard the elapsed time so far
        elapsed = t.stop()
        assert elapsed < 0.009

    def test_stop_after_exit_of_with_block_raises(self):
        """Exiting the with block consumes the start; stop() then raises."""
        t = Timer()
        with t:
            pass
        with pytest.raises(RuntimeError):
            t.stop()

    def test_reuse_as_context_manager(self):
        t = Timer()
        with t:
            pass
        with t:  # reuse of the same object is supported
            time.sleep(0.001)
        assert t.elapsed > 0.0
