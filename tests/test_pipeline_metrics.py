"""Unit tests for efficacy metrics: A/P/R/F1 (weighted), Recall@k, MRR."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.pipeline import (
    accuracy_score,
    classification_report,
    f1_weighted,
    mean_reciprocal_rank,
    recall_at_k,
    weighted_precision_recall_f1,
)
from repro.pipeline.metrics import rankings_from_proba


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0

    def test_half(self):
        assert accuracy_score([0, 1, 0, 1], [0, 1, 1, 0]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            accuracy_score([1, 2], [1])


class TestWeightedPRF:
    def test_perfect_prediction(self):
        p, r, f = weighted_precision_recall_f1(["a", "b", "a"], ["a", "b", "a"])
        assert (p, r, f) == (1.0, 1.0, 1.0)

    def test_known_binary_case(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 0, 0, 1])
        p, r, f = weighted_precision_recall_f1(y_true, y_pred)
        # Both classes: precision=recall=2/3 -> weighted = 2/3.
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(2 / 3)
        assert f == pytest.approx(2 / 3)

    def test_weighting_by_support(self):
        # Majority class predicted perfectly, minority entirely wrong.
        y_true = np.array([0] * 9 + [1])
        y_pred = np.array([0] * 10)
        _, recall, _ = weighted_precision_recall_f1(y_true, y_pred)
        assert recall == pytest.approx(0.9)

    def test_f1_consistent_with_prf(self):
        y_true = [0, 1, 2, 0, 1, 2]
        y_pred = [0, 1, 1, 0, 2, 2]
        assert f1_weighted(y_true, y_pred) == weighted_precision_recall_f1(
            y_true, y_pred
        )[2]

    def test_class_never_predicted(self):
        p, r, f = weighted_precision_recall_f1(["a", "b"], ["a", "a"])
        assert 0 <= f < 1


class TestRecallAtK:
    def test_top1_equals_accuracy(self):
        y = ["a", "b"]
        rankings = [["a", "b"], ["a", "b"]]
        assert recall_at_k(y, rankings, k=1) == 0.5

    def test_top3_catches_deeper(self):
        y = ["c"]
        rankings = [["a", "b", "c"]]
        assert recall_at_k(y, rankings, k=3) == 1.0
        assert recall_at_k(y, rankings, k=2) == 0.0

    def test_invalid_k_raises(self):
        with pytest.raises(ValidationError):
            recall_at_k(["a"], [["a"]], k=0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            recall_at_k(["a", "b"], [["a"]])


class TestMRR:
    def test_always_first_is_one(self):
        assert mean_reciprocal_rank(["a", "b"], [["a", "x"], ["b", "x"]]) == 1.0

    def test_always_second_is_half(self):
        assert mean_reciprocal_rank(["a"], [["x", "a"]]) == 0.5

    def test_absent_label_contributes_zero(self):
        assert mean_reciprocal_rank(["z"], [["a", "b"]]) == 0.0

    def test_mixed(self):
        value = mean_reciprocal_rank(["a", "b"], [["a"], ["x", "b"]])
        assert value == pytest.approx((1.0 + 0.5) / 2)


class TestHelpers:
    def test_rankings_from_proba(self):
        proba = np.array([[0.1, 0.7, 0.2], [0.5, 0.2, 0.3]])
        classes = np.array(["a", "b", "c"])
        rankings = rankings_from_proba(proba, classes)
        assert rankings[0] == ["b", "c", "a"]
        assert rankings[1] == ["a", "c", "b"]

    def test_classification_report_keys(self):
        report = classification_report(["a", "b"], ["a", "b"], [["a"], ["b"]])
        assert set(report) == {
            "accuracy", "precision", "recall", "f1", "mrr", "recall_at_3",
        }
        assert report["accuracy"] == 1.0
        assert report["mrr"] == 1.0

    def test_classification_report_without_rankings(self):
        report = classification_report(["a"], ["a"])
        assert "mrr" not in report
