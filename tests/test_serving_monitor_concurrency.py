"""Thread-safety regression tests for the monitor/drift serving plane.

The serving daemon is the first genuinely multi-threaded caller of
:class:`InferenceMonitor` — its batch executor can run
``recommend_many`` from several threads at once.  These tests hammer one
monitor from 8 threads and assert the bookkeeping is *exact*: ledger row
counts, request/series counters, recommendation-mix totals, and
once-per-excursion alert announcement (previously racy check-then-act
on ``_announced_quarantined`` and ``DriftDetector._alert_active``).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.observability import (
    InferenceMonitor,
    RecordingServingObserver,
    RepairLedger,
    read_ledger,
    use_ledger,
)
from repro.observability.serving import DriftDetector
from repro.timeseries import TimeSeries

N_THREADS = 8
N_CALLS = 6
BATCH = 4
LENGTH = 96


def _request_batches(seed: int):
    """Per-thread request batches (faulty in-distribution series)."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, LENGTH)
    batches = []
    for call in range(N_CALLS):
        batch = []
        for j in range(BATCH):
            values = np.sin(t * (1 + 0.05 * j)) + 0.05 * rng.normal(
                size=LENGTH
            )
            values[20 + call : 35 + call] = np.nan
            batch.append(TimeSeries(values, name=f"s{seed}-{call}-{j}"))
        batches.append(batch)
    return batches


def _hammer(monitor, n_threads=N_THREADS):
    """Run ``recommend_many`` concurrently; re-raise any worker error."""
    errors = []

    def worker(seed):
        try:
            for batch in _request_batches(seed):
                out = monitor.recommend_many(batch)
                assert len(out) == len(batch)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestMonitorHammer:
    def test_counters_and_ledger_rows_exact(self, serving_engine, tmp_path):
        path = tmp_path / "ledger.jsonl"
        monitor = InferenceMonitor(serving_engine, window=64)
        expected_requests = N_THREADS * N_CALLS
        expected_series = expected_requests * BATCH

        with use_ledger(RepairLedger(path)):
            _hammer(monitor)

        assert monitor.n_requests == expected_requests
        assert monitor.n_series == expected_series
        assert sum(monitor.recommendation_mix.values()) == expected_series
        # One provenance row per served series, none lost or duplicated.
        rows = [r for r in read_ledger(path) if r["kind"] == "repair"]
        assert len(rows) == expected_series
        assert len({r["id"] for r in rows}) == expected_series

        snapshot = monitor.snapshot()
        assert snapshot.n_requests == expected_requests
        assert snapshot.n_series == expected_series
        mix = snapshot.recommendation_mix["counts"]
        assert sum(mix.values()) == expected_series

    def test_drift_detector_counts_exact_under_hammer(self, serving_engine):
        detector = DriftDetector(
            serving_engine.feature_baseline_,
            window_size=128,
            min_samples=16,
        )
        monitor = InferenceMonitor(
            serving_engine, window=64, drift_detector=detector
        )
        _hammer(monitor)
        # Every series pushed exactly one vector into the drift window.
        assert detector._total == N_THREADS * N_CALLS * BATCH
        # The hammer traffic is one persistent excursion relative to the
        # training baseline: exactly ONE alert, no matter how many
        # threads raced the check (once-per-excursion announcement).
        assert detector.n_alerts == 1


class TestOncePerExcursionUnderConcurrency:
    def test_concurrent_checks_announce_one_alert(self, serving_engine):
        """16 threads racing ``check()`` on a drifted window announce
        the excursion exactly once (the old check-then-act could fire
        an alert per thread)."""
        detector = DriftDetector(
            serving_engine.feature_baseline_,
            window_size=64,
            min_samples=8,
            psi_threshold=0.1,
            ks_threshold=0.2,
        )
        observer = RecordingServingObserver()
        detector.add_observer(observer)
        rng = np.random.default_rng(3)
        # Fill the window with far-out-of-distribution vectors without
        # triggering check() yet: write rows under the detector's lock
        # via update() on a still-cold window... min_samples=8, so only
        # the first 7 updates stay silent; batch the rest in one call.
        n_features = serving_engine.feature_baseline_.n_features
        shifted = 300.0 + 80.0 * rng.normal(size=(64, n_features))
        report = detector.update(shifted)
        assert report is not None and report.triggered
        n_after_fill = detector.n_alerts
        assert n_after_fill == 1

        barrier = threading.Barrier(16)

        def racer():
            barrier.wait()
            detector.check()

        threads = [threading.Thread(target=racer) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Still the same single excursion: no double announcements.
        assert detector.n_alerts == 1
        assert len(observer.of_type("drift_alert")) == 1

    def test_member_quarantine_announced_once(self, serving_engine):
        """Concurrent recommend_many calls seeing the same quarantined
        ensemble member announce it exactly once."""

        class QuarantinedEnsemble:
            """Wraps the engine's ensemble, reporting one quarantine."""

            def __init__(self, inner):
                self._inner = inner
                self.quarantined_members = ("member-7",)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        monitor = InferenceMonitor(serving_engine, window=64)
        observer = RecordingServingObserver()
        monitor.add_observer(observer)
        original = serving_engine._ensemble
        serving_engine._ensemble = QuarantinedEnsemble(original)
        try:
            _hammer(monitor)
        finally:
            serving_engine._ensemble = original
        quarantines = observer.of_type("member_quarantined")
        assert [q["member"] for q in quarantines] == ["member-7"]
