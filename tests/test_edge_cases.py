"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.core import ModelRace, SoftVotingEnsemble
from repro.core.config import ModelRaceConfig as Config
from repro.datasets.splits import holdout_split
from repro.features import FeatureExtractor, get_scaler
from repro.imputation import get_imputer
from repro.pipeline import Pipeline, make_seed_pipelines


class TestDegenerateTrainingData:
    def test_single_class_corpus_trains_and_predicts(self, rng):
        X = rng.normal(size=(40, 8))
        y = np.array(["only"] * 40)
        engine = ADarts(
            config=ModelRaceConfig(n_partial_sets=2, n_folds=2, random_state=0),
            classifier_names=["knn", "gaussian_nb"],
        )
        engine.fit_features(X, y)
        assert (engine.predict(X) == "only").all()

    def test_two_samples_per_class_minimum(self, rng):
        X = np.vstack([rng.normal(size=(3, 4)), 5 + rng.normal(size=(3, 4))])
        y = np.array(["a", "a", "a", "b", "b", "b"])
        engine = ADarts(
            config=ModelRaceConfig(n_partial_sets=1, n_folds=2, random_state=0),
            classifier_names=["knn"],
            test_ratio=0.34,
        )
        engine.fit_features(X, y)
        assert set(engine.predict(X)) <= {"a", "b"}

    def test_constant_features_survive_scaling(self, rng):
        X = np.hstack([np.ones((30, 3)), rng.normal(size=(30, 3))])
        y = (X[:, 4] > 0).astype(int).astype(str)
        pipeline = Pipeline("knn", scaler_name="standard").fit(X, y)
        assert pipeline.predict(X).shape == (30,)


class TestCrashResilience:
    def test_race_survives_crashing_pipeline(self, labeled_features):
        X, y = labeled_features
        X_tr, X_te, y_tr, y_te = holdout_split(X, y, random_state=0)

        crasher = Pipeline("knn")
        original_fit = crasher.fit

        def explode(*args, **kwargs):
            raise RuntimeError("injected failure")

        crasher.fit = explode
        crasher.clone = lambda: crasher  # keep returning the broken object
        healthy = Pipeline("gaussian_nb")
        result = ModelRace(
            Config(n_partial_sets=2, n_folds=2, random_state=0)
        ).run([crasher, healthy], X_tr, y_tr, X_te, y_te)
        names = {p.classifier_name for p in result.elite}
        assert "gaussian_nb" in names

    def test_ensemble_skips_unfittable_member_configs(self, labeled_features):
        X, y = labeled_features
        good = Pipeline("knn").fit(X, y)
        ens = SoftVotingEnsemble([good])
        assert (ens.predict(X[:3])).shape == (3,)


class TestExtremeSeries:
    def test_very_short_series_features(self):
        fe = FeatureExtractor()
        vec = fe.extract(np.array([1.0, 2.0, 1.5, 2.5, 1.0, 2.0, 1.5, 2.5]))
        assert np.isfinite(vec).all()

    def test_imputation_on_two_point_gap_short_series(self):
        values = np.array([1.0, np.nan, np.nan, 4.0, 5.0, 6.0])
        out = get_imputer("linear").impute(values)
        assert np.allclose(out[0], [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])

    def test_huge_magnitude_series(self):
        t = np.linspace(0, 6.28, 100)
        series = TimeSeries(1e9 * np.sin(t) + 1e12)
        vec = FeatureExtractor().extract(series)
        assert np.isfinite(vec).all()

    def test_negative_only_series_through_tenmf(self):
        # TeNMF shifts to a nonnegative domain internally.
        rows = -100 + 5 * np.vstack([np.sin(np.linspace(0, 12, 80))] * 4)
        rows = rows + np.random.default_rng(0).normal(0, 0.1, rows.shape)
        faulty = rows.copy()
        faulty[0, 20:30] = np.nan
        out = get_imputer("tenmf").impute(faulty)
        assert np.isfinite(out).all()
        assert out[0, 20:30].mean() < 0  # stays in the data's domain

    def test_scaler_single_sample(self):
        Z = get_scaler("standard").fit_transform(np.array([[1.0, 2.0, 3.0]]))
        assert Z.shape == (1, 3)
        assert np.isfinite(Z).all()


class TestSeedPipelineValidation:
    def test_make_seed_pipelines_rejects_bad_family(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            make_seed_pipelines(["not_a_classifier"])

    def test_race_with_single_seed(self, labeled_features):
        X, y = labeled_features
        X_tr, X_te, y_tr, y_te = holdout_split(X, y, random_state=0)
        result = ModelRace(
            Config(n_partial_sets=2, n_folds=2, random_state=0)
        ).run([Pipeline("gaussian_nb")], X_tr, y_tr, X_te, y_te)
        assert result.elite


class TestRecommendationConsistency:
    def test_identical_series_identical_recommendation(
        self, small_climate_dataset
    ):
        from repro.clustering.labeling import ClusterLabeler

        labeler = ClusterLabeler(imputer_names=("linear", "mean"), random_state=0)
        engine = ADarts(
            labeler=labeler,
            config=ModelRaceConfig(n_partial_sets=2, n_folds=2, random_state=0),
            classifier_names=["knn", "gaussian_nb"],
        )
        engine.fit_datasets([small_climate_dataset])
        series = small_climate_dataset[0]
        values = series.values.copy()
        values[30:50] = np.nan
        faulty = series.with_values(values)
        rec1 = engine.recommend(faulty)
        rec2 = engine.recommend(faulty)
        assert rec1.algorithm == rec2.algorithm
        assert rec1.ranking == rec2.ranking
