"""Tests for the sampling profiler and the collapsed-stack format."""

import sys
import threading
import time

import numpy as np
import pytest

from repro.observability import SamplingProfiler, parse_collapsed
from repro.observability.profiler import collapse_frame


def _busy(seconds: float) -> float:
    """CPU-bound loop that keeps a recognisable frame on the stack."""
    deadline = time.perf_counter() + seconds
    acc = 0.0
    while time.perf_counter() < deadline:
        acc += float(np.sum(np.random.default_rng(0).normal(size=256)))
    return acc


class TestCollapsedFormat:
    def test_round_trip_exact(self):
        counts = {
            "mod:main;mod:work": 42,
            "mod:main;other:leaf": 7,
        }
        text = "\n".join(f"{k} {v}" for k, v in counts.items())
        assert parse_collapsed(text) == counts

    def test_blank_lines_and_comments_skipped(self):
        text = "# flamegraph input\n\na:b;c:d 3\n\n# trailer\n"
        assert parse_collapsed(text) == {"a:b;c:d": 3}

    def test_duplicate_stacks_accumulate(self):
        assert parse_collapsed("a:b 2\na:b 3\n") == {"a:b": 5}

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_collapsed("no-count-here\n")
        with pytest.raises(ValueError):
            parse_collapsed("stack notanumber\n")

    def test_collapse_frame_root_first(self):
        frame = sys._getframe()
        collapsed = collapse_frame(frame)
        parts = collapsed.split(";")
        assert parts[-1].endswith(":test_collapse_frame_root_first")
        assert all(":" in part for part in parts)

    def test_collapse_frame_depth_cap(self):
        def recurse(n):
            if n == 0:
                return collapse_frame(sys._getframe(), max_depth=5)
            return recurse(n - 1)

        assert len(recurse(20).split(";")) == 5


class TestSamplingProfiler:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(mode="perf")
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_thread_mode_collects_samples(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy(0.15)
        assert prof.n_samples > 5
        assert prof.elapsed >= 0.15
        counts = prof.counts()
        assert sum(counts.values()) == prof.n_samples
        assert any("_busy" in stack for stack in counts)

    def test_export_round_trips(self, tmp_path):
        with SamplingProfiler(interval=0.002) as prof:
            _busy(0.1)
        path = prof.export(tmp_path / "profile.collapsed")
        assert parse_collapsed(path.read_text()) == prof.counts()

    def test_start_stop_idempotent(self):
        prof = SamplingProfiler(interval=0.002)
        prof.start()
        prof.start()  # no second sampler thread
        _busy(0.05)
        prof.stop()
        samples = prof.n_samples
        prof.stop()
        assert prof.n_samples == samples
        # Sampling really stopped.
        _busy(0.05)
        assert prof.n_samples == samples

    def test_hotspots_and_render_top(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy(0.12)
        hotspots = prof.hotspots(top=5)
        assert 0 < len(hotspots) <= 5
        # Descending by self-sample count.
        counts = [count for _, count in hotspots]
        assert counts == sorted(counts, reverse=True)
        table = prof.render_top(5)
        assert "samples" in table
        assert f"{prof.n_samples} samples" in table

    def test_sampler_excludes_itself(self):
        with SamplingProfiler(interval=0.002) as prof:
            _busy(0.1)
        assert not any("_sample_loop" in stack for stack in prof.counts())

    def test_signal_mode_on_main_thread(self):
        prof = SamplingProfiler(interval=0.002, mode="signal")
        if not prof._signal_mode_available():
            pytest.skip("setitimer/SIGPROF unavailable on this platform")
        with prof:
            _busy(0.15)
        assert prof._active_mode == "signal"
        assert prof.n_samples > 0

    def test_signal_mode_falls_back_off_main_thread(self):
        result = {}

        def run():
            prof = SamplingProfiler(interval=0.002, mode="signal")
            with prof:
                _busy(0.05)
            result["mode"] = prof._active_mode
            result["samples"] = prof.n_samples

        worker = threading.Thread(target=run)
        worker.start()
        worker.join()
        assert result["mode"] == "thread"
        assert result["samples"] >= 0
