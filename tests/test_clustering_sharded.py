"""Shard-and-merge clustering tests: exact K=1 identity with the
single-shard algorithm, label parity on well-separated corpora across
shard counts, bounded divergence on noisy corpora, determinism, and the
ClusterLabeler shards/bank_path wiring."""

import numpy as np
import pytest

from repro.clustering.incremental import IncrementalClustering, ShardedClustering
from repro.clustering.labeling import ClusterLabeler
from repro.exceptions import ValidationError
from repro.timeseries.series import TimeSeries


def _canonical(labels):
    """Relabel clusters by first occurrence so orderings compare equal."""
    mapping = {}
    out = []
    for lab in labels:
        if lab not in mapping:
            mapping[lab] = len(mapping)
        out.append(mapping[lab])
    return out


def _grouped_corpus(n_groups, group_size, seed, length=96, noise=0.03):
    """Well-separated sinusoid groups, shuffled: the parity family.

    Groups are tight (small size, low noise, distinct frequency AND
    offset), so every reasonable partition recovers them — the regime
    where shard-and-merge must agree with the single-shard algorithm.
    """
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, length)
    series, truth = [], []
    for g in range(n_groups):
        base = np.sin(t * (g + 1)) + 3.0 * g
        for _ in range(group_size):
            series.append(
                TimeSeries(base + noise * rng.normal(size=length))
            )
            truth.append(g)
    order = rng.permutation(len(series))
    return [series[i] for i in order], [truth[i] for i in order]


def _coassignment_agreement(labels_a, labels_b):
    """Fraction of series pairs on whose co-membership both agree."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    iu = np.triu_indices(len(a), k=1)
    same_a = (a[:, None] == a[None, :])[iu]
    same_b = (b[:, None] == b[None, :])[iu]
    return float(np.mean(same_a == same_b))


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            ShardedClustering(n_shards=0)
        with pytest.raises(ValidationError):
            ShardedClustering(merge_passes=-1)

    def test_inherits_single_shard_validation(self):
        with pytest.raises(ValidationError):
            ShardedClustering(delta=1.5)


class TestSingleShardIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_k1_identical_to_incremental(self, seed):
        series, _ = _grouped_corpus(4, 5, seed)
        single = IncrementalClustering(random_state=0).fit(series)
        sharded = ShardedClustering(n_shards=1, random_state=0).fit(series)
        np.testing.assert_array_equal(sharded.labels_, single.labels_)
        assert sharded.clusters_ == single.clusters_


class TestShardMergeParity:
    """The small-corpus parity suite pinned by the issue: on corpora of
    well-separated groups (<=256 series), shard-and-merge must produce
    the same partition as the single-shard algorithm for every shard
    count."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("n_shards", [2, 3, 4])
    def test_labels_identical_small_corpus(self, n_shards, seed):
        series, _ = _grouped_corpus(5, 5, seed)
        single = IncrementalClustering(random_state=0).fit(series)
        sharded = ShardedClustering(
            n_shards=n_shards, random_state=0
        ).fit(series)
        assert _canonical(sharded.labels_) == _canonical(single.labels_)

    @pytest.mark.parametrize("n_shards", [2, 6, 8])
    def test_labels_identical_larger_corpus(self, n_shards):
        # 42 groups x 6 = 252 series, the <=256 ceiling of the suite.
        series, _ = _grouped_corpus(42, 6, seed=7)
        single = IncrementalClustering(random_state=0).fit(series)
        sharded = ShardedClustering(
            n_shards=n_shards, random_state=0
        ).fit(series)
        assert _canonical(sharded.labels_) == _canonical(single.labels_)

    def test_parity_with_prebuilt_bank(self, tmp_path):
        """A disk-backed bank feeding merge representatives changes
        nothing about the partition."""
        from repro.timeseries.batch import SeriesBank

        series, _ = _grouped_corpus(4, 6, seed=9)
        bank = SeriesBank.create(tmp_path / "bank", series)
        with_bank = ShardedClustering(n_shards=3, random_state=0).fit(
            series, bank=bank
        )
        without = ShardedClustering(n_shards=3, random_state=0).fit(series)
        np.testing.assert_array_equal(with_bank.labels_, without.labels_)


class TestBoundedDivergence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_noisy_corpus_agreement_bounded(self, n_shards):
        """On noisier corpora shard-and-merge may legitimately differ,
        but the partitions must stay structurally close."""
        series, truth = _grouped_corpus(6, 8, seed=11, noise=0.25)
        single = IncrementalClustering(random_state=0).fit(series)
        sharded = ShardedClustering(
            n_shards=n_shards, random_state=0
        ).fit(series)
        agreement = _coassignment_agreement(sharded.labels_, single.labels_)
        assert agreement >= 0.85
        # And both stay anchored to the generating groups.
        assert _coassignment_agreement(sharded.labels_, truth) >= 0.85

    def test_merge_passes_zero_skips_merge_stage(self, monkeypatch):
        """merge_passes=0 disables the representative-merge stage (the
        final global refinement still runs, so labels stay valid)."""
        series, _ = _grouped_corpus(3, 6, seed=5)
        sharded = ShardedClustering(n_shards=3, merge_passes=0, random_state=0)

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("merge stage ran despite merge_passes=0")

        monkeypatch.setattr(sharded, "_merge_across_shards", _boom)
        sharded.fit(series)
        assert sharded.labels_ is not None
        assert len(sharded.labels_) == len(series)


class TestDeterminism:
    def test_same_seed_same_partition(self):
        series, _ = _grouped_corpus(4, 6, seed=13)
        a = ShardedClustering(n_shards=4, random_state=0).fit(series)
        b = ShardedClustering(n_shards=4, random_state=0).fit(series)
        np.testing.assert_array_equal(a.labels_, b.labels_)

    def test_shards_clamped_to_corpus(self):
        series, _ = _grouped_corpus(1, 4, seed=0)
        fitted = ShardedClustering(n_shards=64, random_state=0).fit(series)
        assert fitted.labels_ is not None
        assert len(fitted.labels_) == len(series)


class TestLabelerWiring:
    def test_invalid_shards_rejected(self):
        with pytest.raises(ValidationError):
            ClusterLabeler(shards=0)

    def test_make_clustering_respects_shards(self):
        labeler = ClusterLabeler(shards=3)
        clustering = labeler._make_clustering()
        assert isinstance(clustering, ShardedClustering)
        assert clustering.n_shards == 3
        assert not isinstance(
            ClusterLabeler()._make_clustering(), ShardedClustering
        )

    def test_template_parameters_forwarded(self):
        template = IncrementalClustering(
            delta=0.6, split_ratio=0.3, min_cluster_size=2, random_state=7
        )
        labeler = ClusterLabeler(shards=2, clustering=template)
        clustering = labeler._make_clustering()
        assert isinstance(clustering, ShardedClustering)
        assert clustering.delta == 0.6
        assert clustering.min_cluster_size == 2
        assert clustering.random_state == 7

    def test_fit_clustering_creates_and_reuses_bank(self, tmp_path):
        series, _ = _grouped_corpus(3, 5, seed=17)
        labeler = ClusterLabeler(shards=2, bank_path=tmp_path / "banks")
        fitted = labeler._fit_clustering("My Dataset/1", series)
        assert fitted.labels_ is not None
        bank_dirs = list((tmp_path / "banks").iterdir())
        assert len(bank_dirs) == 1
        assert (bank_dirs[0] / "meta.json").exists()
        assert "/" not in bank_dirs[0].name  # sanitized
        # Second fit reopens the existing bank rather than rebuilding.
        before = (bank_dirs[0] / "raw.npy").stat().st_mtime_ns
        again = labeler._fit_clustering("My Dataset/1", series)
        after = (bank_dirs[0] / "raw.npy").stat().st_mtime_ns
        assert before == after
        np.testing.assert_array_equal(again.labels_, fitted.labels_)

    def test_unsharded_labeler_ignores_bank_path(self, tmp_path):
        series, _ = _grouped_corpus(2, 5, seed=19)
        labeler = ClusterLabeler(shards=1, bank_path=tmp_path / "banks")
        fitted = labeler._fit_clustering("plain", series)
        assert fitted.labels_ is not None
        assert not (tmp_path / "banks").exists()
