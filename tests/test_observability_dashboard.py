"""Tests for the ``repro top`` renderer and the bench trend table."""

import json

import pytest

from repro.observability.dashboard import (
    bench_trend_rows,
    human_bytes,
    load_snapshot,
    render_bench_trend,
    render_top,
)


def _snapshot_dict():
    return {
        "generated_at": "2026-01-01T00:00:00+00:00",
        "uptime_s": 10.0,
        "n_requests": 20,
        "n_series": 40,
        "latency": {
            "count": 20, "p50": 0.004, "p95": 0.006, "p99": 0.0065,
            "max": 0.007, "sketch_p50": 0.0041, "sketch_p99": 0.0066,
        },
        "slo": {
            "n_events": 40,
            "n_alerts": 1,
            "latency_sketch": {"p50": 0.002, "p99": 0.003},
            "policies": [
                {
                    "policy": "latency_p99",
                    "objective": "p99 latency <= 1000ms over 5m/60m",
                    "fast_burn": 20.0,
                    "slow_burn": 8.0,
                    "budget_remaining": 0.25,
                    "alerting": True,
                },
                {
                    "policy": "error_rate",
                    "objective": "error rate <= 1.000% over 5m/60m",
                    "fast_burn": 0.0,
                    "slow_burn": 0.0,
                    "budget_remaining": 1.0,
                    "alerting": False,
                },
            ],
            "slices": {
                "imputer:cdrec": {
                    "n": 30, "errors": 2, "p99": 0.004,
                    "bad": {"latency_p99": 5},
                },
            },
        },
        "resources": {
            "process": {
                "rss_bytes": 100 * 1024 * 1024,
                "hwm_bytes": 120 * 1024 * 1024,
            },
            "accounts": {
                "series_bank": {
                    "bytes": 2048, "peak_bytes": 4096, "items": 3,
                },
            },
            "kernels": {
                "ncc_cross": {
                    "calls": 4, "bytes_moved": 1 << 20,
                    "chunks": 8, "scratch_allocations": 8,
                },
            },
            "backend_decisions": {"serial": 9, "process": 1},
        },
        "caches": {
            "feature_cache": {
                "hits": 30, "misses": 10, "hit_rate": 0.75, "bytes": 512,
            },
            "score_memo": None,
        },
        "recommendation_mix": {"fractions": {"cdrec": 0.8, "linear": 0.2}},
        "alerts": {"slo_alerts": 1, "drift_alerts": 0},
        "drift": {"psi_max": 0.1, "ks_max": 0.2, "alerting": False},
        "build": {"version": "1.0.0", "git_sha": "abc1234"},
    }


class TestRenderTop:
    def test_full_snapshot_renders_all_sections(self):
        frame = render_top(_snapshot_dict())
        assert "repro top — v1.0.0 @ abc1234" in frame
        assert "latency_p99" in frame and "ALERT" in frame
        assert "error_rate" in frame and "ok" in frame
        assert "slice imputer:cdrec" in frame
        assert "100.0 MiB" in frame  # rss
        assert "ncc_cross" in frame and "1.0 MiB" in frame
        assert "backend decisions: process=1  serial=9" in frame
        assert "hit rate" in frame and "75.0%" in frame
        assert "mix: cdrec 80%" in frame
        assert "slo_alerts=1" in frame
        # default rendering is color-free (CI artifacts stay clean)
        assert "\x1b[" not in frame

    def test_color_mode_emits_ansi(self):
        frame = render_top(_snapshot_dict(), color=True)
        assert "\x1b[31m" in frame  # the alerting policy is red

    def test_degrades_on_minimal_snapshot(self):
        frame = render_top({})
        assert "slo tracking disabled" in frame
        assert "alerts: none" in frame

    def test_pre_slo_schema_snapshot_renders(self):
        # Old exports (before the SLO plane) must still render.
        frame = render_top(
            {
                "generated_at": "x",
                "uptime_s": 1.0,
                "n_requests": 1,
                "n_series": 1,
                "latency": {"p50": 0.001, "p95": 0.002, "p99": 0.003},
            }
        )
        assert "1.0ms" in frame

    def test_human_bytes(self):
        assert human_bytes(0) == "0 B"
        assert human_bytes(512) == "512 B"
        assert human_bytes(1536) == "1.5 KiB"
        assert human_bytes(3 * 1024 * 1024) == "3.0 MiB"
        assert human_bytes(None) == "0 B"

    def test_load_snapshot_round_trip(self, tmp_path):
        path = tmp_path / "health.json"
        path.write_text(json.dumps(_snapshot_dict()))
        assert load_snapshot(path)["n_requests"] == 20

    def test_load_snapshot_rejects_non_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_snapshot(path)


class TestBenchTrend:
    BASELINE = {
        "race": {"serial_s": 1.0, "parallel_s": 0.5, "n": 4},
        "kernels": {"batched_s": 0.002},
        "gone": {"serial_s": 2.0},
    }
    FRESH = {
        "race": {"serial_s": 2.0, "parallel_s": 0.4},
        "kernels": {"batched_s": 0.003},
        "added": {"serial_s": 0.1},
    }

    def test_rows_cover_both_sides(self):
        rows = bench_trend_rows(self.BASELINE, self.FRESH)
        by_key = {(r["workload"], r["arm"]): r for r in rows}
        assert by_key[("race", "serial_s")]["ratio"] == pytest.approx(2.0)
        assert by_key[("race", "parallel_s")]["ratio"] == pytest.approx(0.8)
        assert by_key[("kernels", "batched_s")]["noise"] is True
        assert by_key[("gone", "serial_s")]["fresh_s"] is None
        assert by_key[("added", "serial_s")]["baseline_s"] is None
        # non-numeric / non-_s keys are not arms
        assert ("race", "n") not in by_key

    def test_render_flags(self):
        table = render_bench_trend(self.BASELINE, self.FRESH)
        assert "REGRESSED" in table     # race.serial_s at 2x
        assert "improved" in table      # race.parallel_s at 0.8x
        assert "noise" in table         # kernels under min_seconds
        assert "new" in table           # added.serial_s
        assert "1 regression(s)" in table
        assert "baseline-only" in table  # gone.* summarized in footer
        assert "gone" not in table.splitlines()[2:-2][0]

    def test_include_missing_lists_baseline_only_arms(self):
        table = render_bench_trend(
            self.BASELINE, self.FRESH, include_missing=True
        )
        assert "missing" in table
        assert any("gone" in line for line in table.splitlines())

    def test_threshold_matches_ci_gate(self):
        # At threshold 2.5 the 2.0x slowdown is not a regression.
        table = render_bench_trend(
            self.BASELINE, self.FRESH, threshold=2.5
        )
        assert "no regressions beyond 2.50x" in table

    def test_agrees_with_check_regression(self):
        # The table's REGRESSED flag must match the CI gate's verdict on
        # the same documents (same arm discovery, same threshold).
        import pathlib
        import sys

        repo_root = pathlib.Path(__file__).resolve().parent.parent
        sys.path.insert(0, str(repo_root / "benchmarks"))
        try:
            from check_regression import compare
        finally:
            sys.path.pop(0)
        problems = compare(self.BASELINE, self.FRESH, 1.5)
        flagged = {p.split(":")[0] for p in problems if "missing" not in p}
        assert flagged == {"race.serial_s"}
        table = render_bench_trend(self.BASELINE, self.FRESH)
        assert table.count("REGRESSED") == len(flagged)
