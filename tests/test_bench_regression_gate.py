"""Unit tests for the benchmark regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
import pathlib

import pytest

_GATE_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


BASELINE = {
    "extract_many": {"serial_s": 1.0, "parallel_s": 0.25, "n_jobs": 4},
    "race": {"serial_s": 0.2, "parallel_s": 0.3, "n_jobs": 4},
}


def _write(path, document):
    path.write_text(json.dumps(document))
    return path


class TestCompare:
    def test_identical_passes(self):
        assert gate.compare(BASELINE, BASELINE) == []

    def test_faster_passes(self):
        fresh = {
            "extract_many": {"serial_s": 0.5, "parallel_s": 0.1},
            "race": {"serial_s": 0.1, "parallel_s": 0.1},
        }
        assert gate.compare(BASELINE, fresh) == []

    def test_slowdown_beyond_threshold_fails(self):
        fresh = {
            "extract_many": {"serial_s": 1.0, "parallel_s": 0.5},  # 2.0x
            "race": {"serial_s": 0.2, "parallel_s": 0.3},
        }
        problems = gate.compare(BASELINE, fresh, threshold=1.5)
        assert len(problems) == 1
        assert "extract_many.parallel_s" in problems[0]
        assert "2.00x" in problems[0]

    def test_slowdown_within_threshold_passes(self):
        fresh = {
            "extract_many": {"serial_s": 1.4, "parallel_s": 0.3},
            "race": {"serial_s": 0.25, "parallel_s": 0.35},
        }
        assert gate.compare(BASELINE, fresh, threshold=1.5) == []

    def test_missing_workload_is_a_regression(self):
        fresh = {"extract_many": BASELINE["extract_many"]}
        problems = gate.compare(BASELINE, fresh)
        assert problems == ["race: missing from the fresh benchmark run"]

    def test_new_workload_passes(self):
        fresh = dict(BASELINE)
        fresh["labeling"] = {"serial_s": 5.0, "parallel_s": 5.0}
        assert gate.compare(BASELINE, fresh) == []

    def test_noise_floor_ignores_tiny_arms(self):
        baseline = {"w": {"serial_s": 0.001, "parallel_s": 0.002}}
        fresh = {"w": {"serial_s": 0.009, "parallel_s": 0.008}}  # 9x but tiny
        assert gate.compare(baseline, fresh, min_seconds=0.01) == []
        # Above the floor the same ratio fails.
        assert gate.compare(baseline, fresh, min_seconds=0.0005) != []

    def test_missing_arm_keys_skipped(self):
        baseline = {"w": {"serial_s": 1.0}}
        fresh = {"w": {"parallel_s": 99.0}}
        assert gate.compare(baseline, fresh) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            gate.compare(BASELINE, BASELINE, threshold=1.0)

    def test_timing_keys_discovers_any_seconds_arm(self):
        arms = {
            "per_pair_s": 2.0,
            "batched_s": 0.1,
            "speedup": 20.0,     # not an arm
            "backend": "serial",  # not numeric
            "n_jobs": 4,
        }
        assert gate.timing_keys(arms) == ("batched_s", "per_pair_s")

    def test_custom_seconds_arms_are_gated(self):
        baseline = {"ncc": {"per_pair_s": 2.0, "batched_s": 0.1}}
        fresh = {"ncc": {"per_pair_s": 2.0, "batched_s": 0.5}}  # 5x slower
        problems = gate.compare(baseline, fresh, threshold=1.5)
        assert len(problems) == 1
        assert "ncc.batched_s" in problems[0]


class TestDocumentIO:
    def test_load_document(self, tmp_path):
        path = _write(tmp_path / "bench.json", BASELINE)
        assert gate.load_document(path) == BASELINE

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            gate.load_document(tmp_path / "absent.json")

    def test_load_non_document_raises(self, tmp_path):
        path = _write(tmp_path / "bad.json", [1, 2, 3])
        with pytest.raises(ValueError):
            gate.load_document(path)

    def test_refresh_baseline_merges_and_writes(self, tmp_path):
        path = _write(tmp_path / "baseline.json", BASELINE)
        fresh = {
            "extract_many": {"serial_s": 0.9, "parallel_s": 0.2},
            "labeling": {"serial_s": 0.1, "parallel_s": 0.1},
        }
        merged = gate.refresh_baseline(path, BASELINE, fresh)
        on_disk = json.loads(path.read_text())
        assert on_disk == merged
        assert on_disk["extract_many"]["serial_s"] == 0.9  # overwritten
        assert "race" in on_disk  # untouched workloads kept
        assert "labeling" in on_disk  # new workloads adopted


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        fresh = _write(tmp_path / "fresh.json", BASELINE)
        code = gate.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        )
        assert code == 0
        assert "passed" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        fresh = _write(
            tmp_path / "fresh.json",
            {
                "extract_many": {"serial_s": 5.0, "parallel_s": 0.25},
                "race": BASELINE["race"],
            },
        )
        code = gate.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().err

    def test_update_refreshes_baseline_on_success(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        fresh_doc = {
            "extract_many": {"serial_s": 0.8, "parallel_s": 0.2},
            "race": {"serial_s": 0.15, "parallel_s": 0.25},
        }
        fresh = _write(tmp_path / "fresh.json", fresh_doc)
        code = gate.main(
            ["--baseline", str(baseline), "--fresh", str(fresh), "--update"]
        )
        assert code == 0
        assert json.loads(baseline.read_text()) == fresh_doc

    def test_update_skipped_on_failure(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", BASELINE)
        fresh = _write(
            tmp_path / "fresh.json",
            {
                "extract_many": {"serial_s": 9.0, "parallel_s": 9.0},
                "race": BASELINE["race"],
            },
        )
        code = gate.main(
            ["--baseline", str(baseline), "--fresh", str(fresh), "--update"]
        )
        assert code == 1
        assert json.loads(baseline.read_text()) == BASELINE

    def test_multiple_fresh_documents_merge(self, tmp_path, capsys):
        baseline = _write(
            tmp_path / "baseline.json",
            {**BASELINE, "ncc": {"per_pair_s": 2.0, "batched_s": 0.1}},
        )
        fresh_a = _write(tmp_path / "a.json", BASELINE)
        fresh_b = _write(
            tmp_path / "b.json", {"ncc": {"per_pair_s": 1.9, "batched_s": 0.1}}
        )
        code = gate.main(
            [
                "--baseline", str(baseline),
                "--fresh", str(fresh_a),
                "--fresh", str(fresh_b),
            ]
        )
        assert code == 0
        assert "3 workloads" in capsys.readouterr().out
        # Without the second document, ncc is missing -> regression.
        assert gate.main(
            ["--baseline", str(baseline), "--fresh", str(fresh_a)]
        ) == 1

    def test_committed_baseline_matches_schema(self):
        document = gate.load_document(
            _GATE_PATH.parent / "bench_baseline.json"
        )
        assert document, "committed baseline must not be empty"
        for workload, arms in document.items():
            assert isinstance(arms, dict), workload
            assert gate.timing_keys(arms), workload
