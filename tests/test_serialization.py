"""Tests for engine export/import (JSON persistence)."""

import json

import pytest

from repro import ADarts, ModelRaceConfig
from repro.core import export_engine, import_engine, load_engine, save_engine
from repro.exceptions import NotFittedError, ValidationError


FAST = dict(
    config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3, random_state=0),
    classifier_names=["knn", "decision_tree", "gaussian_nb"],
)


@pytest.fixture(scope="module")
def trained(labeled_features):
    X, y = labeled_features
    return ADarts(**FAST).fit_features(X, y), X, y


class TestExportImport:
    def test_round_trip_predictions_identical(self, trained):
        engine, X, y = trained
        document = export_engine(engine)
        restored = import_engine(document)
        assert (engine.predict(X) == restored.predict(X)).all()

    def test_round_trip_preserves_pipelines(self, trained):
        engine, X, y = trained
        restored = import_engine(export_engine(engine))
        original = sorted(p.config_key() for p in engine.winning_pipelines)
        rebuilt = sorted(p.config_key() for p in restored.winning_pipelines)
        assert original == rebuilt

    def test_document_is_json_serializable(self, trained):
        engine, _, _ = trained
        text = json.dumps(export_engine(engine))
        assert json.loads(text)["format_version"] == 1

    def test_unfitted_export_raises(self):
        with pytest.raises(NotFittedError):
            export_engine(ADarts(**FAST))

    def test_wrong_version_rejected(self, trained):
        engine, _, _ = trained
        document = export_engine(engine)
        document["format_version"] = 99
        with pytest.raises(ValidationError):
            import_engine(document)

    def test_restored_engine_recommends(self, small_climate_dataset, faulty_series):
        # recommend() goes through the feature extractor, so the engine must
        # have been trained on extractor output (fit_labeled path).
        from repro.clustering.labeling import ClusterLabeler

        labeler = ClusterLabeler(imputer_names=("linear", "mean"), random_state=0)
        engine = ADarts(labeler=labeler, **FAST)
        engine.fit_datasets([small_climate_dataset])
        restored = import_engine(export_engine(engine))
        rec = restored.recommend(faulty_series)
        assert rec.algorithm in ("linear", "mean")
        assert rec.algorithm == engine.recommend(faulty_series).algorithm

    def test_mlp_tuple_params_survive(self, labeled_features):
        X, y = labeled_features
        engine = ADarts(
            config=ModelRaceConfig(
                n_partial_sets=2, n_folds=2, max_elite=2, random_state=0
            ),
            classifier_names=["mlp"],
        ).fit_features(X, y)
        restored = import_engine(export_engine(engine))
        for pipeline in restored.winning_pipelines:
            assert isinstance(pipeline.classifier_params["hidden"], tuple)


class TestFileRoundTrip:
    def test_save_and_load(self, trained, tmp_path):
        engine, X, _ = trained
        path = save_engine(engine, tmp_path / "engine.json")
        assert path.exists()
        restored = load_engine(path)
        assert (engine.predict(X) == restored.predict(X)).all()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            load_engine(tmp_path / "nope.json")


class TestFeatureBaselinePersistence:
    def test_baseline_exported_and_restored(self, trained):
        import numpy as np

        engine, X, _ = trained
        assert engine.feature_baseline_ is not None
        document = export_engine(engine)
        assert "feature_baseline" in document
        restored = import_engine(document)
        original = engine.feature_baseline_
        rebuilt = restored.feature_baseline_
        assert rebuilt is not None
        assert rebuilt.feature_names == original.feature_names
        assert rebuilt.n_samples == original.n_samples
        assert np.allclose(rebuilt.mean, original.mean)
        assert np.allclose(rebuilt.edges, original.edges)
        assert np.allclose(rebuilt.expected, original.expected)

    def test_baseline_document_is_json_safe(self, trained):
        engine, _, _ = trained
        payload = json.dumps(export_engine(engine)["feature_baseline"])
        assert "NaN" not in payload

    def test_legacy_document_rebuilds_baseline(self, trained):
        engine, X, _ = trained
        document = export_engine(engine)
        document.pop("feature_baseline")  # pre-baseline era document
        restored = import_engine(document)
        baseline = restored.feature_baseline_
        assert baseline is not None
        assert baseline.n_samples == X.shape[0]
        assert baseline.n_features == X.shape[1]

    def test_save_load_keeps_baseline(self, trained, tmp_path):
        import numpy as np

        engine, _, _ = trained
        path = save_engine(engine, tmp_path / "engine.json")
        restored = load_engine(path)
        assert restored.feature_baseline_ is not None
        assert np.allclose(
            restored.feature_baseline_.std, engine.feature_baseline_.std
        )


class TestLedgerHeadPersistence:
    @pytest.fixture(scope="class")
    def ledgered(self, labeled_features):
        from repro.observability import RepairLedger, use_ledger

        X, y = labeled_features
        engine = ADarts(**FAST)
        with use_ledger(RepairLedger()):
            engine.fit_features(X, y)
        return engine

    def test_head_round_trips(self, ledgered):
        restored = import_engine(export_engine(ledgered))
        assert restored.ledger_head_ is not None
        assert restored.ledger_head_["fit_id"] == ledgered.ledger_head_["fit_id"]
        kinds = {r["kind"] for r in restored.ledger_head_["records"]}
        assert {"fit", "race"} <= kinds

    def test_head_document_is_json_safe(self, ledgered):
        text = json.dumps(export_engine(ledgered))
        assert json.loads(text)["ledger_head"]["fit_id"].startswith("fit")

    def test_head_records_schema_upgraded_on_import(self, ledgered):
        from repro.observability import LEDGER_SCHEMA_VERSION

        document = export_engine(ledgered)
        # Simulate a head written by the v1 prototype: flat payload + epoch ts.
        old = dict(document["ledger_head"]["records"][0])
        old.pop("schema")
        old.update(old.pop("data"))
        old["ts"] = 1700000000.0
        old.pop("time", None)
        document["ledger_head"]["records"][0] = old
        restored = import_engine(document)
        first = restored.ledger_head_["records"][0]
        assert first["schema"] == LEDGER_SCHEMA_VERSION
        assert "data" in first

    def test_engine_without_head_still_imports(self, trained):
        engine, X, _ = trained
        document = export_engine(engine)
        document.pop("ledger_head", None)
        document.pop("cluster_atlas", None)
        restored = import_engine(document)
        assert restored.ledger_head_ is None
        assert restored.cluster_atlas_ is None
        assert (engine.predict(X) == restored.predict(X)).all()


class TestMalformedDocuments:
    def test_non_dict_document_rejected(self):
        with pytest.raises(ValidationError):
            import_engine([1, 2, 3])

    def test_missing_required_key_rejected(self, trained):
        engine, _, _ = trained
        document = export_engine(engine)
        document.pop("extractor")
        with pytest.raises(ValidationError, match="missing required key"):
            import_engine(document)

    def test_malformed_section_rejected(self, trained):
        engine, _, _ = trained
        document = export_engine(engine)
        document["extractor"] = "not a mapping"
        with pytest.raises(ValidationError):
            import_engine(document)

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "engine.json"
        path.write_text("{ this is not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_engine(path)
