"""Tests for engine export/import (JSON persistence)."""

import json

import pytest

from repro import ADarts, ModelRaceConfig
from repro.core import export_engine, import_engine, load_engine, save_engine
from repro.exceptions import NotFittedError, ValidationError


FAST = dict(
    config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3, random_state=0),
    classifier_names=["knn", "decision_tree", "gaussian_nb"],
)


@pytest.fixture(scope="module")
def trained(labeled_features):
    X, y = labeled_features
    return ADarts(**FAST).fit_features(X, y), X, y


class TestExportImport:
    def test_round_trip_predictions_identical(self, trained):
        engine, X, y = trained
        document = export_engine(engine)
        restored = import_engine(document)
        assert (engine.predict(X) == restored.predict(X)).all()

    def test_round_trip_preserves_pipelines(self, trained):
        engine, X, y = trained
        restored = import_engine(export_engine(engine))
        original = sorted(p.config_key() for p in engine.winning_pipelines)
        rebuilt = sorted(p.config_key() for p in restored.winning_pipelines)
        assert original == rebuilt

    def test_document_is_json_serializable(self, trained):
        engine, _, _ = trained
        text = json.dumps(export_engine(engine))
        assert json.loads(text)["format_version"] == 1

    def test_unfitted_export_raises(self):
        with pytest.raises(NotFittedError):
            export_engine(ADarts(**FAST))

    def test_wrong_version_rejected(self, trained):
        engine, _, _ = trained
        document = export_engine(engine)
        document["format_version"] = 99
        with pytest.raises(ValidationError):
            import_engine(document)

    def test_restored_engine_recommends(self, small_climate_dataset, faulty_series):
        # recommend() goes through the feature extractor, so the engine must
        # have been trained on extractor output (fit_labeled path).
        from repro.clustering.labeling import ClusterLabeler

        labeler = ClusterLabeler(imputer_names=("linear", "mean"), random_state=0)
        engine = ADarts(labeler=labeler, **FAST)
        engine.fit_datasets([small_climate_dataset])
        restored = import_engine(export_engine(engine))
        rec = restored.recommend(faulty_series)
        assert rec.algorithm in ("linear", "mean")
        assert rec.algorithm == engine.recommend(faulty_series).algorithm

    def test_mlp_tuple_params_survive(self, labeled_features):
        X, y = labeled_features
        engine = ADarts(
            config=ModelRaceConfig(
                n_partial_sets=2, n_folds=2, max_elite=2, random_state=0
            ),
            classifier_names=["mlp"],
        ).fit_features(X, y)
        restored = import_engine(export_engine(engine))
        for pipeline in restored.winning_pipelines:
            assert isinstance(pipeline.classifier_params["hidden"], tuple)


class TestFileRoundTrip:
    def test_save_and_load(self, trained, tmp_path):
        engine, X, _ = trained
        path = save_engine(engine, tmp_path / "engine.json")
        assert path.exists()
        restored = load_engine(path)
        assert (engine.predict(X) == restored.predict(X)).all()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            load_engine(tmp_path / "nope.json")
