"""Unit tests for repro.parallel: config, engine, and caches."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.observability import MetricsRegistry, Tracer, use_metrics, use_tracer
from repro.parallel import (
    AUTO_PROCESS_MIN_TASKS,
    ExecutionEngine,
    FeatureCache,
    ParallelConfig,
    ScoreMemo,
    available_cpus,
    hash_array,
    hash_arrays,
)


def _square(x):
    return x * x


class TestParallelConfig:
    def test_defaults_are_serial(self):
        cfg = ParallelConfig()
        assert cfg.n_jobs == 1
        assert cfg.resolve_backend(1000) == "serial"

    def test_invalid_backend(self):
        with pytest.raises(ValidationError):
            ParallelConfig(backend="gpu")

    def test_invalid_chunk_size(self):
        with pytest.raises(ValidationError):
            ParallelConfig(chunk_size=0)

    def test_zero_jobs_means_all_cpus(self):
        assert ParallelConfig(n_jobs=0).effective_jobs == available_cpus()
        assert ParallelConfig(n_jobs=-1).effective_jobs == available_cpus()

    def test_auto_backend_scales_with_workload(self):
        cfg = ParallelConfig(n_jobs=4, backend="auto")
        assert cfg.resolve_backend(1) == "serial"
        assert cfg.resolve_backend(AUTO_PROCESS_MIN_TASKS - 1) == "thread"
        assert cfg.resolve_backend(AUTO_PROCESS_MIN_TASKS) == "process"

    def test_explicit_backend_respected(self):
        cfg = ParallelConfig(n_jobs=4, backend="thread")
        assert cfg.resolve_backend(1000) == "thread"

    def test_single_job_always_serial(self):
        cfg = ParallelConfig(n_jobs=1, backend="process")
        assert cfg.resolve_backend(1000) == "serial"

    def test_chunk_size_derivation(self):
        cfg = ParallelConfig(n_jobs=4)
        assert cfg.resolve_chunk_size(16) == 1
        assert cfg.resolve_chunk_size(160) == 10
        assert ParallelConfig(n_jobs=4, chunk_size=7).resolve_chunk_size(160) == 7

    def test_with_jobs(self):
        cfg = ParallelConfig(n_jobs=1, backend="thread", chunk_size=3)
        other = cfg.with_jobs(8)
        assert other.n_jobs == 8
        assert other.backend == "thread"
        assert other.chunk_size == 3


class TestExecutionEngine:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_preserves_order(self, backend):
        engine = ExecutionEngine(ParallelConfig(n_jobs=4, backend=backend))
        items = list(range(37))
        assert engine.map(_square, items) == [x * x for x in items]

    def test_empty_batch(self):
        assert ExecutionEngine().map(_square, []) == []

    def test_default_config_is_serial(self):
        assert ExecutionEngine().config.n_jobs == 1

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("task failed")

        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="thread"))
        with pytest.raises(RuntimeError, match="task failed"):
            engine.map(boom, [1, 2, 3])

    def test_batch_emits_span_and_metrics(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="thread"))
        with use_tracer(tracer), use_metrics(registry):
            engine.map(_square, list(range(8)), label="test.batch")
        names = [s.name for s in tracer.finished_spans()]
        assert "test.batch" in names
        span = next(s for s in tracer.finished_spans() if s.name == "test.batch")
        assert span.tags["backend"] == "thread"
        assert span.tags["n_tasks"] == 8
        doc = registry.as_dict()
        assert "repro_parallel_tasks_total" in doc
        (labels_repr, payload), = doc["repro_parallel_tasks_total"].items()
        assert 'backend="thread"' in labels_repr
        assert payload["value"] == 8


class TestHashing:
    def test_hash_array_content_addressed(self):
        a = np.arange(10, dtype=float)
        assert hash_array(a) == hash_array(a.copy())
        b = a.copy()
        b[3] += 1e-12
        assert hash_array(a) != hash_array(b)

    def test_hash_array_dtype_and_shape_sensitive(self):
        a = np.arange(6, dtype=float)
        assert hash_array(a) != hash_array(a.reshape(2, 3))
        assert hash_array(a) != hash_array(a.astype(np.float32))

    def test_hash_object_labels(self):
        y1 = np.array(["knn", "linear"], dtype=object)
        y2 = np.array(["knn", "linear"], dtype=object)
        y3 = np.array(["knn", "cdrec"], dtype=object)
        assert hash_array(y1) == hash_array(y2)
        assert hash_array(y1) != hash_array(y3)

    def test_hash_arrays_extra_context(self):
        a = np.arange(4, dtype=float)
        assert hash_arrays(a, extra="ctx1") != hash_arrays(a, extra="ctx2")


class TestFeatureCache:
    def test_memory_roundtrip_bit_identical(self):
        cache = FeatureCache()
        vec = np.array([1.0, np.pi, -0.5])
        key = cache.key(np.arange(5, dtype=float), ("fp",))
        assert cache.get(key) is None
        cache.put(key, vec)
        out = cache.get(key)
        assert out.tobytes() == vec.tobytes()
        # Returned copies are independent of the stored vector.
        out[0] = 99.0
        assert cache.get(key)[0] == 1.0

    def test_hit_miss_accounting(self):
        cache = FeatureCache()
        key = cache.key(np.ones(3), ("fp",))
        cache.get(key)
        cache.put(key, np.zeros(2))
        cache.get(key)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_disk_persistence(self, tmp_path):
        vec = np.array([0.25, -1.75, 3.5])
        key = FeatureCache.key(np.arange(4, dtype=float), ("fp", 3))
        first = FeatureCache(tmp_path)
        first.put(key, vec)
        # A brand-new cache instance (fresh process, conceptually) hits disk.
        second = FeatureCache(tmp_path)
        out = second.get(key)
        assert out is not None
        assert out.tobytes() == vec.tobytes()
        assert second.hits == 1

    def test_key_depends_on_fingerprint(self):
        values = np.arange(8, dtype=float)
        assert FeatureCache.key(values, ("a",)) != FeatureCache.key(values, ("b",))

    def test_clear(self, tmp_path):
        cache = FeatureCache(tmp_path)
        key = cache.key(np.ones(2), ())
        cache.put(key, np.ones(2))
        cache.clear(disk=True)
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_metrics_counters_flow(self):
        registry = MetricsRegistry()
        cache = FeatureCache()
        key = cache.key(np.ones(2), ())
        with use_metrics(registry):
            cache.get(key)
            cache.put(key, np.ones(2))
            cache.get(key)
        doc = registry.as_dict()
        assert doc["repro_feature_cache_hits_total"]["_"]["value"] == 1
        assert doc["repro_feature_cache_misses_total"]["_"]["value"] == 1


class TestScoreMemo:
    def test_roundtrip_and_accounting(self):
        memo = ScoreMemo()
        key = (("knn", (), "standard", ()), "foldhash")
        assert memo.get(key) is None
        memo.put(key, "score-object")
        assert memo.get(key) == "score-object"
        assert memo.hits == 1
        assert memo.misses == 1
        assert memo.hit_rate == 0.5
        memo.clear()
        assert len(memo) == 0
