"""Scalar-vs-batched parity matrix for every registered imputer.

``impute_many`` promises results within 1e-9 of looping ``impute`` per
problem, with the same typed errors on invalid input.  This suite pins
that contract across the full registry, over degenerate inputs, input
containers (list / 2-D array / SeriesBank), and the batched ledger path.
"""

import numpy as np
import pytest

from repro.exceptions import ImputationError, ValidationError
from repro.imputation.base import available_imputers, get_imputer
from repro.observability.ledger import RepairLedger, use_ledger
from repro.timeseries.batch import SeriesBank
from repro.timeseries.series import TimeSeries

ALL_IMPUTERS = available_imputers()


def _corpus(rng, n=6, length=48, missing=0.2):
    """Row problems with scattered gaps; every row keeps observed values."""
    rows = []
    for i in range(n):
        row = rng.normal(size=length).cumsum()
        if i == 0:
            row[:] = 4.0  # constant row
        gaps = rng.choice(length, size=max(1, int(length * missing)), replace=False)
        row[gaps] = np.nan
        if np.isnan(row).all():  # paranoia: keep at least one observation
            row[0] = 1.0
        rows.append(row)
    return rows


class TestImputeManyParity:
    @pytest.mark.parametrize("name", ALL_IMPUTERS)
    def test_matches_scalar_loop(self, name):
        rng = np.random.default_rng(11)
        rows = _corpus(rng)
        scalar = [get_imputer(name).impute(r.copy()[None, :]) for r in rows]
        batched = get_imputer(name).impute_many([r.copy() for r in rows])
        assert len(batched) == len(rows)
        for i, (a, b) in enumerate(zip(scalar, batched)):
            np.testing.assert_allclose(b, a, rtol=1e-9, atol=1e-9,
                                       err_msg=f"{name} row {i}")

    @pytest.mark.parametrize("name", ALL_IMPUTERS)
    def test_mixed_shapes_and_complete_rows(self, name):
        rng = np.random.default_rng(12)
        problems = _corpus(rng, n=3, length=40)
        problems.append(rng.normal(size=40).cumsum())      # complete: passthrough
        problems.append(_corpus(rng, n=1, length=64)[0])   # different length
        scalar = [get_imputer(name).impute(p.copy()[None, :]) for p in problems]
        batched = get_imputer(name).impute_many([p.copy() for p in problems])
        for i, (a, b) in enumerate(zip(scalar, batched)):
            np.testing.assert_allclose(b, a, rtol=1e-9, atol=1e-9,
                                       err_msg=f"{name} problem {i}")

    def test_complete_corpus_is_pure_passthrough(self):
        rng = np.random.default_rng(13)
        rows = [rng.normal(size=32) for _ in range(4)]
        out = get_imputer("mean").impute_many([r.copy() for r in rows])
        for row, completed in zip(rows, out):
            np.testing.assert_array_equal(completed[0], row)

    def test_all_nan_problem_raises_like_scalar(self):
        rows = [np.array([1.0, np.nan, 3.0]), np.full(3, np.nan)]
        imp = get_imputer("mean")
        with pytest.raises(ImputationError):
            imp.impute(rows[1][None, :])
        with pytest.raises(ImputationError):
            imp.impute_many([r.copy() for r in rows])

    def test_inf_problem_raises_like_scalar(self):
        rows = [np.array([1.0, np.nan, 3.0]), np.array([1.0, np.inf, np.nan])]
        imp = get_imputer("mean")
        with pytest.raises(ValidationError):
            imp.impute(rows[1][None, :])
        with pytest.raises(ValidationError):
            imp.impute_many([r.copy() for r in rows])

    def test_matrix_container_matches_list(self):
        rng = np.random.default_rng(14)
        rows = _corpus(rng, n=5, length=36)
        matrix = np.vstack(rows)
        from_list = get_imputer("linear").impute_many([r.copy() for r in rows])
        from_matrix = get_imputer("linear").impute_many(matrix.copy())
        for a, b in zip(from_list, from_matrix):
            np.testing.assert_array_equal(a, b)

    def test_series_bank_rows_become_problems(self):
        rng = np.random.default_rng(15)
        clean = np.vstack([rng.normal(size=24).cumsum() for _ in range(4)])
        bank = SeriesBank(clean)
        out = get_imputer("mean").impute_many(bank)
        assert len(out) == 4  # complete rows pass through
        for row, completed in zip(clean, out):
            np.testing.assert_array_equal(completed[0], row)

    def test_repair_ids_length_mismatch(self):
        with pytest.raises(ValidationError):
            get_imputer("mean").impute_many(
                [np.array([1.0, np.nan])], repair_ids=["a", "b"]
            )

    def test_impute_series_many_matches_impute_series(self):
        rng = np.random.default_rng(16)
        series = [
            TimeSeries(r, name=f"s{i}") for i, r in enumerate(_corpus(rng, n=4))
        ]
        imp = get_imputer("knn")
        batched = imp.impute_series_many(series)
        for s, repaired in zip(series, batched):
            expected = get_imputer("knn").impute_series(s)
            assert repaired.name == s.name
            np.testing.assert_allclose(
                repaired.values, expected.values, rtol=1e-9, atol=1e-9
            )
            assert not repaired.has_missing


class TestBatchedLedger:
    def test_one_row_per_problem_with_repair_ids(self):
        rng = np.random.default_rng(17)
        rows = _corpus(rng, n=4, length=32)
        rows.append(rng.normal(size=32))  # complete: no ledger row
        ids = [f"rep-{i}" for i in range(len(rows))]
        ledger = RepairLedger()  # memory-only
        with use_ledger(ledger):
            get_imputer("mean").impute_many(
                [r.copy() for r in rows], repair_ids=ids
            )
        impute_rows = [r for r in ledger.records() if r["kind"] == "impute"]
        assert len(impute_rows) == 4  # complete problem emits nothing
        seen = {r["data"]["repair_id"] for r in impute_rows}
        assert seen == set(ids[:4])
        for row in impute_rows:
            assert row["data"]["algorithm"] == "mean"
            assert row["data"]["elapsed_s"] is not None
            assert row["data"]["quality"] is not None

    def test_no_ledger_rows_without_repair_context(self):
        rng = np.random.default_rng(18)
        ledger = RepairLedger()
        with use_ledger(ledger):
            get_imputer("mean").impute_many(
                [r.copy() for r in _corpus(rng, n=3, length=24)]
            )
        assert [r for r in ledger.records() if r["kind"] == "impute"] == []
