"""Unit tests for missing-block injection."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.timeseries import (
    TimeSeries,
    MissingBlockSpec,
    inject_mcar,
    inject_missing_block,
    inject_missing_blocks,
    inject_tip_block,
)


@pytest.fixture
def series():
    return TimeSeries(np.arange(100, dtype=float))


class TestMissingBlockSpec:
    def test_stop(self):
        assert MissingBlockSpec(start=5, length=3).stop == 8

    def test_negative_start_raises(self):
        with pytest.raises(ValidationError):
            MissingBlockSpec(start=-1, length=3)

    def test_zero_length_raises(self):
        with pytest.raises(ValidationError):
            MissingBlockSpec(start=0, length=0)


class TestInjectMissingBlock:
    def test_by_ratio(self, series):
        faulty, spec = inject_missing_block(series, ratio=0.1, random_state=0)
        assert spec.length == 10
        assert faulty.n_missing == 10
        assert faulty.missing_blocks() == [(spec.start, 10)]

    def test_by_length(self, series):
        faulty, spec = inject_missing_block(series, length=25, random_state=0)
        assert spec.length == 25
        assert faulty.n_missing == 25

    def test_explicit_start(self, series):
        faulty, spec = inject_missing_block(series, length=5, start=10)
        assert spec.start == 10
        assert np.isnan(faulty.values[10:15]).all()
        assert not np.isnan(faulty.values[:10]).any()

    def test_original_untouched(self, series):
        inject_missing_block(series, ratio=0.2, random_state=0)
        assert not series.has_missing

    def test_keeps_anchors(self, series):
        # Random placement avoids the first and last observation.
        for seed in range(20):
            faulty, spec = inject_missing_block(series, ratio=0.5, random_state=seed)
            assert spec.start >= 1
            assert spec.stop <= len(series) - 1

    def test_both_ratio_and_length_raises(self, series):
        with pytest.raises(ValidationError):
            inject_missing_block(series, ratio=0.1, length=5)

    def test_neither_raises(self, series):
        with pytest.raises(ValidationError):
            inject_missing_block(series)

    def test_block_as_long_as_series_raises(self, series):
        with pytest.raises(ValidationError):
            inject_missing_block(series, length=100)

    def test_out_of_range_start_raises(self, series):
        with pytest.raises(ValidationError):
            inject_missing_block(series, length=20, start=90)

    def test_deterministic_with_seed(self, series):
        _, spec1 = inject_missing_block(series, ratio=0.1, random_state=7)
        _, spec2 = inject_missing_block(series, ratio=0.1, random_state=7)
        assert spec1 == spec2


class TestInjectMissingBlocks:
    def test_multiple_disjoint(self, series):
        faulty, specs = inject_missing_blocks(series, n_blocks=3, ratio=0.15, random_state=1)
        assert len(specs) == 3
        # Disjoint: the union of spans equals the missing count.
        assert faulty.n_missing == sum(s.length for s in specs)
        for a, b in zip(specs, specs[1:]):
            assert a.stop < b.start

    def test_too_many_blocks_raises(self):
        short = TimeSeries(np.arange(10, dtype=float))
        with pytest.raises(ValidationError):
            inject_missing_blocks(short, n_blocks=5, ratio=0.9, random_state=0)

    def test_invalid_n_blocks_raises(self, series):
        with pytest.raises(ValidationError):
            inject_missing_blocks(series, n_blocks=0, ratio=0.1)


class TestInjectTipBlock:
    def test_tip_placement(self, series):
        faulty, spec = inject_tip_block(series, ratio=0.2)
        assert spec.length == 20
        assert spec.stop == len(series)
        assert np.isnan(faulty.values[-20:]).all()
        assert not np.isnan(faulty.values[:-20]).any()

    def test_full_erase_raises(self, series):
        with pytest.raises(ValidationError):
            inject_tip_block(series, ratio=1.0)


class TestInjectMcar:
    def test_ratio_respected(self, series):
        faulty, mask = inject_mcar(series, ratio=0.3, random_state=0)
        assert faulty.n_missing == 30
        assert mask.sum() == 30

    def test_always_keeps_one_observation(self):
        short = TimeSeries(np.arange(3, dtype=float))
        faulty, _ = inject_mcar(short, ratio=1.0, random_state=0)
        assert faulty.n_missing <= 2
