"""Unit tests for ModelRace (Algorithm 1)."""

import pytest

from repro.core import ModelRace, ModelRaceConfig
from repro.datasets.splits import holdout_split
from repro.exceptions import ValidationError
from repro.pipeline import Pipeline, ScoreWeights, make_seed_pipelines


@pytest.fixture(scope="module")
def race_data(labeled_features):
    X, y = labeled_features
    return holdout_split(X, y, test_ratio=0.3, random_state=0)


FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=3, n_children_per_parent=2,
    random_state=0,
)


class TestConfigValidation:
    def test_invalid_partial_sets(self):
        with pytest.raises(ValidationError):
            ModelRaceConfig(n_partial_sets=0)

    def test_invalid_folds(self):
        with pytest.raises(ValidationError):
            ModelRaceConfig(n_folds=1)

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            ModelRaceConfig(initial_fraction=0.0)

    def test_invalid_pvalue(self):
        with pytest.raises(ValidationError):
            ModelRaceConfig(ttest_pvalue=2.0)


class TestRace:
    def test_returns_fitted_elite(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        seeds = make_seed_pipelines(["knn", "decision_tree", "gaussian_nb"])
        result = ModelRace(FAST_CONFIG).run(seeds, X_tr, y_tr, X_te, y_te)
        assert 1 <= len(result.elite) <= FAST_CONFIG.max_elite
        for pipeline in result.elite:
            preds = pipeline.predict(X_te)
            assert preds.shape == y_te.shape

    def test_history_records_every_iteration(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        seeds = make_seed_pipelines(["knn", "ridge"])
        result = ModelRace(FAST_CONFIG).run(seeds, X_tr, y_tr, X_te, y_te)
        assert len(result.history) == FAST_CONFIG.n_partial_sets
        assert result.n_evaluations > 0
        assert result.runtime > 0
        for record in result.history:
            assert record["n_elite"] <= FAST_CONFIG.max_elite

    def test_partial_sets_grow(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        seeds = make_seed_pipelines(["knn"])
        result = ModelRace(
            ModelRaceConfig(n_partial_sets=3, n_folds=2, random_state=0)
        ).run(seeds, X_tr, y_tr, X_te, y_te)
        sizes = [h["subset_size"] for h in result.history]
        assert sizes == sorted(sizes)
        assert sizes[-1] == X_tr.shape[0]

    def test_empty_seeds_raise(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        with pytest.raises(ValidationError):
            ModelRace(FAST_CONFIG).run([], X_tr, y_tr, X_te, y_te)

    def test_mismatched_xy_raise(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        with pytest.raises(ValidationError):
            ModelRace(FAST_CONFIG).run(
                make_seed_pipelines(["knn"]), X_tr, y_tr[:-1], X_te, y_te
            )

    def test_duplicate_family_can_survive(self, race_data):
        """Duplicates are the point (Section VII-D): variations of the same
        classifier may co-exist in the elite."""
        X_tr, X_te, y_tr, y_te = race_data
        seeds = [
            Pipeline("knn", {"k": 1, "weights": "uniform", "p": 2}),
            Pipeline("knn", {"k": 9, "weights": "distance", "p": 2}),
            Pipeline("knn", {"k": 21, "weights": "distance", "p": 1}),
        ]
        config = ModelRaceConfig(
            n_partial_sets=2, n_folds=2, max_elite=3,
            ttest_pvalue=0.999,  # prune only near-identical distributions
            random_state=0,
        )
        result = ModelRace(config).run(seeds, X_tr, y_tr, X_te, y_te)
        families = [p.classifier_name for p in result.elite]
        assert families.count("knn") == len(families)  # all knn variants

    def test_scores_tracked_per_survivor(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        seeds = make_seed_pipelines(["knn", "gaussian_nb"])
        result = ModelRace(FAST_CONFIG).run(seeds, X_tr, y_tr, X_te, y_te)
        for pipeline in result.elite:
            assert result.scores[pipeline.config_key()], "survivor has scores"

    def test_deterministic_given_seed(self, race_data):
        # gamma=0 removes the wall-clock term; everything else is seeded.
        X_tr, X_te, y_tr, y_te = race_data
        config = ModelRaceConfig(
            n_partial_sets=2, n_folds=2, max_elite=3,
            weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
            random_state=0,
        )
        seeds = make_seed_pipelines(["knn", "ridge"])
        r1 = ModelRace(config).run(seeds, X_tr, y_tr, X_te, y_te)
        r2 = ModelRace(config).run(seeds, X_tr, y_tr, X_te, y_te)
        assert [p.config_key() for p in r1.elite] == [
            p.config_key() for p in r2.elite
        ]

    def test_aggressive_early_termination_still_returns(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        config = ModelRaceConfig(
            n_partial_sets=2, n_folds=2, early_termination_margin=0.0,
            random_state=0,
        )
        seeds = make_seed_pipelines(["knn", "decision_tree", "ridge"])
        result = ModelRace(config).run(seeds, X_tr, y_tr, X_te, y_te)
        assert result.elite  # never loses everything

    def test_time_weighted_scoring_runs(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        config = ModelRaceConfig(
            n_partial_sets=2, n_folds=2,
            weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=1.5),
            random_state=0,
        )
        result = ModelRace(config).run(
            make_seed_pipelines(["knn", "gaussian_nb"]), X_tr, y_tr, X_te, y_te
        )
        assert result.elite
