"""Shared fixtures: small deterministic datasets and feature matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_category
from repro.features import FeatureExtractor
from repro.timeseries import TimeSeries, TimeSeriesDataset


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sine_series():
    t = np.linspace(0, 4 * np.pi, 200)
    return TimeSeries(np.sin(t), name="sine")


@pytest.fixture
def faulty_series(sine_series):
    values = sine_series.values.copy()
    values[60:80] = np.nan
    return sine_series.with_values(values)


@pytest.fixture(scope="session")
def small_climate_dataset():
    return load_category("Climate", n_series=8, n_datasets=1)[0]


@pytest.fixture(scope="session")
def small_motion_dataset():
    return load_category("Motion", n_series=8, n_datasets=1)[0]


@pytest.fixture(scope="session")
def correlated_matrix(rng):
    """A rank-2 matrix plus noise: ideal for matrix-completion imputers."""
    n, m = 12, 150
    t = np.linspace(0, 4 * np.pi, m)
    basis = np.vstack([np.sin(t), np.cos(0.5 * t)])
    weights = rng.normal(size=(n, 2))
    return weights @ basis + 0.01 * rng.normal(size=(n, m))


@pytest.fixture(scope="session")
def block_mask(correlated_matrix):
    mask = np.zeros_like(correlated_matrix, dtype=bool)
    mask[0, 40:70] = True
    mask[3, 100:120] = True
    return mask


@pytest.fixture(scope="session")
def labeled_features(rng):
    """Synthetic feature/label pairs with learnable class structure."""
    n_per_class = 40
    labels = ["cdrec", "linear", "tkcm"]
    X_parts, y_parts = [], []
    for k, label in enumerate(labels):
        center = np.zeros(12)
        center[k * 3 : k * 3 + 3] = 3.0
        X_parts.append(center + rng.normal(size=(n_per_class, 12)))
        y_parts.extend([label] * n_per_class)
    return np.vstack(X_parts), np.array(y_parts)


@pytest.fixture(scope="session")
def extractor():
    return FeatureExtractor()


@pytest.fixture(scope="session")
def serving_engine():
    """A small fitted A-DARTS engine shared by the serving test suite.

    Two well-separated families (sines -> linear, walks -> mean) with a
    fast race config, so shard workers can refit the pipelines from the
    exported document in well under a second.
    """
    from repro import ADarts, ModelRaceConfig
    from repro.pipeline.scoring import ScoreWeights

    rng = np.random.default_rng(42)
    length = 96
    t = np.linspace(0, 4 * np.pi, length)
    series, labels = [], []
    for i in range(10):
        values = np.sin(t * (1 + 0.05 * i)) + 0.05 * rng.normal(size=length)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(10):
        values = 0.5 * np.cumsum(rng.normal(size=length))
        series.append(TimeSeries(values, name=f"walk{i}"))
        labels.append("mean")
    engine = ADarts(
        config=ModelRaceConfig(
            n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
            weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
        ),
        classifier_names=["knn", "decision_tree"],
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, np.array(labels))
    return engine


@pytest.fixture
def tiny_dataset():
    rows = np.vstack(
        [
            np.sin(np.linspace(0, 6.28, 64)) + i * 0.1
            for i in range(5)
        ]
    )
    return TimeSeriesDataset.from_matrix(rows, name="tiny", category="Test")
