"""Tests for labeler extensions: varying ratios, tip patterns, tie handling."""

import numpy as np
import pytest

from repro.clustering.labeling import ClusterLabeler
from repro.exceptions import ValidationError
from repro.timeseries.patterns import detect_missing_pattern


class TestVaryingRatios:
    def test_multiple_ratios_multiply_samples(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear", "mean"),
            missing_ratio=(0.1, 0.25),
            random_state=0,
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        assert len(corpus) == 2 * len(small_climate_dataset)

    def test_ratio_values_respected(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear",), missing_ratio=(0.1, 0.3), random_state=0
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        ratios = sorted({round(s.missing_ratio, 1) for s in corpus.series})
        assert ratios == [0.1, 0.3]

    def test_scalar_ratio_still_works(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear",), missing_ratio=0.2, random_state=0
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        assert len(corpus) == len(small_climate_dataset)
        assert labeler.missing_ratio == 0.2

    def test_invalid_ratio_in_sequence_raises(self):
        with pytest.raises(ValidationError):
            ClusterLabeler(missing_ratio=(0.1, 1.5))


class TestPatterns:
    def test_tip_pattern_produces_tip_blocks(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear", "mean"),
            patterns=("tip",),
            random_state=0,
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        kinds = {detect_missing_pattern(s).kind for s in corpus.series}
        assert kinds == {"tip_block"}

    def test_mixed_patterns_double_samples(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear", "mean"),
            patterns=("block", "tip"),
            random_state=0,
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        assert len(corpus) == 2 * len(small_climate_dataset)
        kinds = {detect_missing_pattern(s).kind for s in corpus.series}
        assert "tip_block" in kinds
        assert kinds - {"tip_block"}  # interior blocks present too

    def test_invalid_pattern_raises(self):
        with pytest.raises(ValidationError):
            ClusterLabeler(patterns=("diagonal",))

    def test_empty_patterns_raise(self):
        with pytest.raises(ValidationError):
            ClusterLabeler(patterns=())


class TestTieHandling:
    def test_negative_epsilon_raises(self):
        with pytest.raises(ValidationError):
            ClusterLabeler(tie_epsilon=-0.1)

    def test_tie_collapses_to_preference_order(self):
        labeler = ClusterLabeler(
            imputer_names=("linear", "knn", "mean"), tie_epsilon=0.5
        )
        ranked = [("knn", 1.00), ("linear", 1.01), ("mean", 9.0)]
        resolved = labeler._resolve_ties(ranked)
        # linear precedes knn in the preference order and is within 50%.
        assert resolved[0] == "linear"
        assert resolved[-1] == "mean"

    def test_no_tie_keeps_ranking(self):
        labeler = ClusterLabeler(
            imputer_names=("linear", "knn"), tie_epsilon=0.05
        )
        ranked = [("knn", 1.0), ("linear", 2.0)]
        assert labeler._resolve_ties(ranked) == ["knn", "linear"]

    def test_zero_epsilon_disables(self):
        labeler = ClusterLabeler(imputer_names=("linear", "knn"), tie_epsilon=0.0)
        ranked = [("knn", 1.0), ("linear", 1.0)]
        assert labeler._resolve_ties(ranked) == ["knn", "linear"]

    def test_infinite_best_score_untouched(self):
        labeler = ClusterLabeler(
            imputer_names=("linear", "knn"), tie_epsilon=0.1
        )
        ranked = [("knn", float("inf")), ("linear", float("inf"))]
        assert labeler._resolve_ties(ranked) == ["knn", "linear"]

    def test_tie_epsilon_reduces_label_entropy(self, small_motion_dataset):
        noisy = ClusterLabeler(
            imputer_names=("linear", "knn", "stmvl"),
            missing_ratio=(0.1, 0.2),
            tie_epsilon=0.0,
            random_state=0,
        ).label_dataset(small_motion_dataset)
        clean = ClusterLabeler(
            imputer_names=("linear", "knn", "stmvl"),
            missing_ratio=(0.1, 0.2),
            tie_epsilon=0.2,
            random_state=0,
        ).label_dataset(small_motion_dataset)

        def entropy(labels):
            _, counts = np.unique(labels, return_counts=True)
            p = counts / counts.sum()
            return float(-(p * np.log(p)).sum())

        assert entropy(clean.labels) <= entropy(noisy.labels) + 1e-9
