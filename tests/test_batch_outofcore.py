"""Out-of-core SeriesBank tests: create/open parity with the in-RAM
bank, mixed-length truncation semantics, format validation, handle
transport, accounting, and the process-backend mmap path surviving a
worker crash."""

import functools
import json
import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.observability.resources import get_accounting
from repro.parallel import ExecutionEngine, ParallelConfig, shm_available
from repro.parallel.shm import attach_mmap_cached, clear_attach_cache, mmap_handle
from repro.timeseries.batch import SeriesBank
from repro.timeseries.series import TimeSeries


@pytest.fixture(autouse=True)
def _reset_accounting():
    get_accounting().reset()
    yield
    get_accounting().reset()


def _corpus(n=12, length=64, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, length)
    return [
        np.sin(t * (1 + i % 3)) + 0.1 * rng.normal(size=length)
        for i in range(n)
    ]


class TestCreateOpenParity:
    def test_disk_bank_matches_in_ram(self, tmp_path):
        series = _corpus()
        ram = SeriesBank.from_series(series)
        disk = SeriesBank.create(tmp_path / "bank", series)
        assert disk.on_disk and not ram.on_disk
        np.testing.assert_array_equal(np.asarray(disk.raw), ram.raw)
        np.testing.assert_array_equal(np.asarray(disk.znorm), ram.znorm)
        np.testing.assert_array_equal(disk.norms, ram.norms)

    def test_kernels_byte_identical(self, tmp_path):
        series = _corpus(n=10, length=96, seed=1)
        ram = SeriesBank.from_series(series)
        disk = SeriesBank.create(tmp_path / "bank", series)
        np.testing.assert_array_equal(disk.corr_matrix(), ram.corr_matrix())
        v_d, s_d = disk.ncc_matrix(return_shifts=True)
        v_r, s_r = ram.ncc_matrix(return_shifts=True)
        np.testing.assert_array_equal(v_d, v_r)
        np.testing.assert_array_equal(s_d, s_r)
        np.testing.assert_array_equal(disk.sbd_matrix(), ram.sbd_matrix())

    def test_tiny_block_bytes_still_exact(self, tmp_path):
        """A pathologically small scratch cap changes chunking, not values."""
        series = _corpus(n=7, length=48, seed=2)
        ram = SeriesBank.from_series(series)
        disk = SeriesBank.create(tmp_path / "bank", series, block_bytes=1)
        np.testing.assert_array_equal(np.asarray(disk.znorm), ram.znorm)
        # Different chunking reorders float accumulation; values agree to
        # ulp-scale, and the default chunking (tested above) is exact.
        np.testing.assert_allclose(
            disk.corr_matrix(block_bytes=256), ram.corr_matrix(),
            rtol=1e-12, atol=1e-14,
        )

    def test_reopen_is_stable(self, tmp_path):
        series = _corpus(n=5, length=32)
        first = SeriesBank.create(tmp_path / "bank", series)
        again = SeriesBank.open(tmp_path / "bank")
        np.testing.assert_array_equal(
            np.asarray(first.raw), np.asarray(again.raw)
        )
        assert (again.n, again.length) == (5, 32)


class TestMixedLengthBoundary:
    def test_truncates_to_common_minimum(self, tmp_path):
        """Heterogeneous lengths truncate exactly like from_series."""
        rng = np.random.default_rng(3)
        series = [rng.normal(size=n) for n in (40, 33, 57, 33, 41)]
        ram = SeriesBank.from_series(series)
        disk = SeriesBank.create(tmp_path / "bank", series)
        assert disk.length == 33 == ram.length
        np.testing.assert_array_equal(np.asarray(disk.raw), ram.raw)

    def test_timeseries_with_nans_cleaned(self, tmp_path):
        values = np.linspace(0.0, 1.0, 30)
        values[10:13] = np.nan
        series = [TimeSeries(values.copy(), name=f"s{i}") for i in range(3)]
        disk = SeriesBank.create(tmp_path / "bank", series)
        assert not np.isnan(np.asarray(disk.raw)).any()

    def test_explicit_length_truncates_single_pass(self, tmp_path):
        rng = np.random.default_rng(4)
        rows = [rng.normal(size=20) for _ in range(4)]
        disk = SeriesBank.create(
            tmp_path / "bank", iter(rows), length=16, n_series=4
        )
        assert (disk.n, disk.length) == (4, 16)
        np.testing.assert_array_equal(
            np.asarray(disk.raw), np.vstack([r[:16] for r in rows])
        )

    def test_single_pass_short_row_is_error(self, tmp_path):
        rows = [np.ones(16), np.ones(8)]
        with pytest.raises(ValidationError, match="shorter"):
            SeriesBank.create(
                tmp_path / "bank", iter(rows), length=16, n_series=2
            )

    def test_single_pass_count_mismatch_is_error(self, tmp_path):
        with pytest.raises(ValidationError, match="expected 3"):
            SeriesBank.create(
                tmp_path / "bank", iter([np.ones(8)]), length=8, n_series=3
            )
        with pytest.raises(ValidationError, match="more than the declared"):
            SeriesBank.create(
                tmp_path / "bank2",
                iter([np.ones(8)] * 3),
                length=8,
                n_series=2,
            )

    def test_empty_corpus_is_error(self, tmp_path):
        with pytest.raises(ValidationError):
            SeriesBank.create(tmp_path / "bank", [])


class TestFormatValidation:
    def test_crash_mid_create_is_rejected(self, tmp_path):
        """Without the final meta.json the directory is not a bank."""
        series = _corpus(n=4, length=16)
        SeriesBank.create(tmp_path / "bank", series)
        (tmp_path / "bank" / "meta.json").unlink()  # simulate the crash
        with pytest.raises(ValidationError, match="missing meta.json"):
            SeriesBank.open(tmp_path / "bank")

    def test_unknown_version_rejected(self, tmp_path):
        SeriesBank.create(tmp_path / "bank", _corpus(n=3, length=16))
        meta = tmp_path / "bank" / "meta.json"
        doc = json.loads(meta.read_text())
        doc["version"] = 99
        meta.write_text(json.dumps(doc))
        with pytest.raises(ValidationError, match="version"):
            SeriesBank.open(tmp_path / "bank")

    def test_geometry_mismatch_rejected(self, tmp_path):
        SeriesBank.create(tmp_path / "bank", _corpus(n=3, length=16))
        meta = tmp_path / "bank" / "meta.json"
        doc = json.loads(meta.read_text())
        doc["n"] = 5
        meta.write_text(json.dumps(doc))
        with pytest.raises(ValidationError, match="disagree"):
            SeriesBank.open(tmp_path / "bank")


class TestHandleTransport:
    def test_handle_attach_roundtrip(self, tmp_path):
        disk = SeriesBank.create(tmp_path / "bank", _corpus(n=4, length=24))
        handle = disk.handle()
        assert handle == ("memmap", str(tmp_path / "bank"))
        assert len(pickle.dumps(handle)) < 512
        clone = SeriesBank.attach(handle)
        assert clone.on_disk
        np.testing.assert_array_equal(
            np.asarray(clone.znorm), np.asarray(disk.znorm)
        )

    def test_in_ram_bank_has_no_handle(self):
        bank = SeriesBank.from_series(_corpus(n=3, length=16))
        with pytest.raises(ValidationError, match="share"):
            bank.handle()

    def test_release_pages_is_safe(self, tmp_path):
        disk = SeriesBank.create(tmp_path / "bank", _corpus(n=4, length=24))
        disk.rfft()  # populate a derived memmap too
        disk.release_pages()
        np.testing.assert_array_equal(
            disk.corr_matrix(),
            SeriesBank.from_series(_corpus(n=4, length=24)).corr_matrix(),
        )
        # In-RAM banks: explicit no-op.
        SeriesBank.from_series(_corpus(n=3, length=16)).release_pages()


class TestAccounting:
    def test_disk_bytes_charged_and_released(self, tmp_path):
        registry = get_accounting()
        disk = SeriesBank.create(tmp_path / "bank", _corpus(n=6, length=32))
        expected = disk.raw.nbytes + disk.znorm.nbytes
        assert registry.account_bytes("series_bank_disk") == expected
        assert registry.account_bytes("series_bank") == disk.norms.nbytes
        disk.rfft()  # derived memmap lands on the disk account
        assert registry.account_bytes("series_bank_disk") > expected
        del disk
        import gc

        gc.collect()
        assert registry.account_bytes("series_bank_disk") == 0

    def test_resource_stamp_reports_disk_bytes(self, tmp_path):
        from repro.observability.resources import resource_stamp

        bank = SeriesBank.create(tmp_path / "bank", _corpus(n=4, length=16))
        stamp = resource_stamp()
        assert stamp["series_bank_disk_bytes"] == (
            bank.raw.nbytes + bank.znorm.nbytes
        )


def _row_sum(index, *, matrix):
    return float(matrix[index].sum())


def _kill_worker_once(index, *, sentinel, matrix):
    """First pool worker to run claims the sentinel and dies uncleanly."""
    if multiprocessing.parent_process() is not None and not os.path.exists(sentinel):
        try:
            with open(sentinel, "x") as fh:
                fh.write("killed")
        except FileExistsError:
            return float(matrix[index].sum())
        os._exit(23)
    return float(matrix[index].sum())


class TestMmapTransport:
    def test_mmap_handle_only_for_whole_file_maps(self, tmp_path):
        disk = SeriesBank.create(tmp_path / "bank", _corpus(n=6, length=32))
        handle = mmap_handle(disk.raw)
        assert handle is not None and handle[0] == "__mmap__"
        assert mmap_handle(disk.raw[1:4]) is None  # slice: wrong region risk
        assert mmap_handle(np.ones((3, 3))) is None  # not a memmap

    def test_attach_mmap_cached_reuses_mapping(self, tmp_path):
        disk = SeriesBank.create(tmp_path / "bank", _corpus(n=4, length=16))
        clear_attach_cache()
        try:
            handle = mmap_handle(disk.znorm)
            first = attach_mmap_cached(handle)
            second = attach_mmap_cached(handle)
            assert first is second
            np.testing.assert_array_equal(first, np.asarray(disk.znorm))
        finally:
            clear_attach_cache()

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_process_map_ships_memmap_not_segment(self, tmp_path):
        """shared= with a disk bank matrix rides the mmap path: results
        match and no shm segment is ever created for it."""
        from repro.parallel import active_segments

        disk = SeriesBank.create(tmp_path / "bank", _corpus(n=8, length=48))
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        if engine._process_pool() is None:
            pytest.skip("process pool unavailable in this environment")
        with engine:
            out = engine.map(
                _row_sum,
                list(range(8)),
                label="mmap-test",
                shared={"matrix": disk.raw},
            )
        expected = [float(np.asarray(disk.raw)[i].sum()) for i in range(8)]
        assert out == expected
        assert active_segments() == ()

    @pytest.mark.skipif(not shm_available(), reason="no shared memory")
    def test_memmap_bank_survives_worker_crash(self, tmp_path):
        """A worker crash mid-batch demotes to threads and the memmap
        bank still serves correct results (no stale-handle fallout)."""
        disk = SeriesBank.create(tmp_path / "crash-bank", _corpus(n=8, length=32))
        engine = ExecutionEngine(ParallelConfig(n_jobs=2, backend="process"))
        if engine._process_pool() is None:
            pytest.skip("process pool unavailable in this environment")
        sentinel = str(tmp_path / "worker-killed")
        fn = functools.partial(_kill_worker_once, sentinel=sentinel)
        with engine:
            out = engine.map(
                fn,
                list(range(8)),
                label="mmap-crash",
                shared={"matrix": disk.znorm},
            )
        expected = [float(np.asarray(disk.znorm)[i].sum()) for i in range(8)]
        assert out == expected
        assert os.path.exists(sentinel), "kill task never ran in a pool worker"
        assert engine.n_demotions == 1
