"""Chaos tests: fault plans against the serving daemon's worker shards.

Every scenario asserts the same contract from the ISSUE: a request is
**resubmitted or shed, never silently dropped** — each submitted request
gets exactly one response; crashes demote the shard (logged + counted);
and the shared-memory segments are unlinked even when a worker died
mid-batch.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.exceptions import AllShardsQuarantinedError, WorkerCrashError
from repro.parallel.shm import active_segments, shm_available
from repro.resilience import FaultInjector
from repro.resilience.breaker import CircuitBreaker
from repro.serving import (
    LoadGenerator,
    ServingDaemon,
    ServingTestClient,
    ShardPool,
)

pytestmark = pytest.mark.chaos

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shm unavailable"
)


def kill_plan(target: str, times: int = 1) -> FaultInjector:
    return FaultInjector(
        [{"site": "serving.shard", "kind": "kill",
          "match": target, "times": times}],
        seed=0,
        name="chaos-kill",
    )


@needs_shm
class TestWorkerCrash:
    def test_killed_shard_resubmits_and_demotes(
        self, serving_engine, caplog
    ):
        """A kill plan on shard-0: no request lost, shard demoted inline."""
        generator = LoadGenerator(seed=21, length=96)
        requests = generator.requests(40)
        with caplog.at_level(logging.WARNING, logger="repro.serving.shards"):
            with ServingDaemon(
                serving_engine,
                n_shards=2,
                shard_backend="process",
                max_batch=8,
                max_delay_s=0.001,
                injector=kill_plan("shard-0"),
            ) as daemon:
                client = ServingTestClient(daemon)
                responses = client.send_many(requests, timeout=300.0)
                pool_stats = daemon.pool.stats()

        # Exactly one response per request, all served (resubmitted).
        assert len(responses) == len(requests)
        assert [r.id for r in responses] == [r.id for r in requests]
        assert all(r.status == 200 for r in responses)

        # The crash demoted shard 0 from process to inline, visibly.
        assert pool_stats["demotions"] == 1
        assert pool_stats["resubmissions"] >= 1
        assert pool_stats["per_shard"]["0"]["backend"] == "inline"
        assert pool_stats["per_shard"]["0"]["demoted"] is True
        assert pool_stats["per_shard"]["1"]["backend"] == "process"
        messages = [r.message for r in caplog.records]
        assert any("resubmitting" in m for m in messages)
        assert any("demoted to inline" in m for m in messages)

        # Segments unlinked even though a worker died mid-batch.
        assert active_segments() == ()

    def test_hung_shard_times_out_and_batch_survives(self, serving_engine):
        """A hang past ``timeout_s`` is treated exactly like a crash."""
        injector = FaultInjector(
            [{"site": "serving.shard", "kind": "hang",
              "match": "shard-1", "times": 1, "duration": 15.0}],
            seed=0,
            name="chaos-hang",
        )
        generator = LoadGenerator(seed=22, length=96)
        requests = generator.requests(24)
        with ServingDaemon(
            serving_engine,
            n_shards=2,
            shard_backend="process",
            max_batch=8,
            max_delay_s=0.001,
            injector=injector,
            timeout_s=2.0,
        ) as daemon:
            client = ServingTestClient(daemon)
            responses = client.send_many(requests, timeout=300.0)
            pool_stats = daemon.pool.stats()
        assert all(r.status == 200 for r in responses)
        assert len(responses) == len(requests)
        assert pool_stats["resubmissions"] >= 1
        assert pool_stats["demotions"] == 1  # timeouts demote too
        assert active_segments() == ()


class TestQuarantineShedding:
    def test_all_shards_down_sheds_typed_503(self, serving_engine):
        """Permanent crashes: requests get 500/503, never hang or drop."""
        injector = FaultInjector(
            [{"site": "serving.shard", "kind": "kill"}],  # every batch
            seed=0,
            name="chaos-kill-all",
        )
        generator = LoadGenerator(seed=23, length=96)
        requests = generator.requests(12)
        with ServingDaemon(
            serving_engine,
            n_shards=1,
            shard_backend="inline",
            max_batch=4,
            max_delay_s=0.001,
            injector=injector,
            breaker=CircuitBreaker(threshold=2, name="chaos"),
        ) as daemon:
            client = ServingTestClient(daemon)
            responses = client.send_many(requests, timeout=120.0)
            stats = daemon.stats()

        # One response per request; every one a typed failure.
        assert len(responses) == len(requests)
        statuses = {r.status for r in responses}
        assert statuses <= {500, 503}
        # Once the breaker opens, later batches shed with 503 + retry.
        assert 503 in statuses
        shed = [r for r in responses if r.status == 503]
        assert all(r.retry_after_ms is not None for r in shed)
        assert all("quarantined" in r.error for r in shed)
        assert stats["shed"] + stats["errors"] == len(requests)
        assert stats["served"] == 0

    def test_pool_raises_typed_errors_directly(self, serving_engine):
        """ShardPool surfaces the taxonomy without the daemon on top."""
        injector = FaultInjector(
            [{"site": "serving.shard", "kind": "kill"}],
            seed=0,
            name="chaos-pool",
        )
        pool = ShardPool(
            serving_engine,
            1,
            backend="inline",
            injector=injector,
            breaker=CircuitBreaker(threshold=1, name="chaos-pool"),
        )
        request = LoadGenerator(seed=24, length=96).request(0)
        with pool:
            with pytest.raises(AllShardsQuarantinedError):
                # First attempt fails (threshold=1 -> open), and with
                # every shard quarantined the retry loop must shed.
                pool.run_batch([request])
            with pytest.raises(AllShardsQuarantinedError):
                pool.run_batch([request])

    def test_inline_kill_degrades_to_worker_crash_error(self):
        """In the parent process a kill plan raises WorkerCrashError."""
        injector = FaultInjector(
            [{"site": "serving.shard", "kind": "kill"}], seed=0
        )
        with pytest.raises(WorkerCrashError):
            injector.check("serving.shard", "shard-0", token=("batch", 1))


@needs_shm
class TestCrashRecoveryEndToEnd:
    def test_post_demotion_results_stay_correct(self, serving_engine):
        """Responses served by the demoted inline runner match the
        library path — demotion changes the backend, not the answer."""
        from repro.timeseries import TimeSeries

        generator = LoadGenerator(seed=25, length=96)
        requests = generator.requests(30)
        with ServingDaemon(
            serving_engine,
            n_shards=1,
            shard_backend="process",
            max_batch=8,
            max_delay_s=0.001,
            injector=kill_plan("shard-0"),
        ) as daemon:
            client = ServingTestClient(daemon)
            responses = client.send_many(requests, timeout=300.0)
            assert daemon.pool.stats()["demotions"] == 1
        assert all(r.status == 200 for r in responses)
        series = [TimeSeries(r.values, name=r.name) for r in requests]
        recommendations = serving_engine.recommend_many(series)
        repaired = serving_engine.repair_many(series, recommendations)
        for response, fixed in zip(responses, repaired):
            assert np.array_equal(
                response.values, fixed.values, equal_nan=True
            )
        assert active_segments() == ()
