"""Unit tests for the imputer base class, registry, and shared helpers."""

import numpy as np
import pytest

from repro.exceptions import ImputationError, RegistryError, ValidationError
from repro.imputation import available_imputers, get_imputer
from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    register_imputer,
)
from repro.timeseries import TimeSeries, TimeSeriesDataset


class TestInterpolateRows:
    def test_interior_gap(self):
        X = np.array([[0.0, np.nan, 2.0]])
        assert interpolate_rows(X).tolist() == [[0.0, 1.0, 2.0]]

    def test_edges_extend(self):
        X = np.array([[np.nan, 5.0, np.nan]])
        assert interpolate_rows(X).tolist() == [[5.0, 5.0, 5.0]]

    def test_fully_missing_row_uses_global_mean(self):
        X = np.array([[np.nan, np.nan], [2.0, 4.0]])
        out = interpolate_rows(X)
        assert out[0].tolist() == [3.0, 3.0]

    def test_input_not_mutated(self):
        X = np.array([[0.0, np.nan, 2.0]])
        interpolate_rows(X)
        assert np.isnan(X[0, 1])


class TestRegistry:
    def test_all_expected_imputers_registered(self):
        expected = {
            "mean", "linear", "knn", "cdrec", "svdimp", "softimpute", "svt",
            "rosl", "grouse", "trmf", "tenmf", "dynammo", "tkcm", "stmvl",
            "iim", "mlp",
        }
        assert expected.issubset(set(available_imputers()))

    def test_get_imputer_unknown_raises(self):
        with pytest.raises(RegistryError):
            get_imputer("nope")

    def test_get_imputer_passes_params(self):
        imp = get_imputer("knn", k=7)
        assert imp.k == 7

    def test_register_duplicate_name_raises(self):
        with pytest.raises(RegistryError):
            @register_imputer
            class Duplicate(BaseImputer):
                name = "mean"

                def _impute(self, X, mask):
                    return X

    def test_register_unnamed_raises(self):
        with pytest.raises(RegistryError):
            @register_imputer
            class Unnamed(BaseImputer):
                def _impute(self, X, mask):
                    return X


class TestBaseContract:
    def test_1d_input_accepted(self):
        out = get_imputer("linear").impute(np.array([0.0, np.nan, 2.0]))
        assert out.shape == (1, 3)
        assert out[0, 1] == pytest.approx(1.0)

    def test_3d_input_raises(self):
        with pytest.raises(ValidationError):
            get_imputer("linear").impute(np.zeros((2, 2, 2)))

    def test_inf_raises(self):
        with pytest.raises(ValidationError):
            get_imputer("linear").impute(np.array([[1.0, np.inf]]))

    def test_all_missing_raises(self):
        with pytest.raises(ImputationError):
            get_imputer("mean").impute(np.full((2, 3), np.nan))

    def test_no_missing_is_identity(self):
        X = np.arange(6, dtype=float).reshape(2, 3)
        out = get_imputer("mean").impute(X)
        assert np.array_equal(out, X)
        assert out is not X  # returns a copy

    def test_observed_entries_never_change(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(4, 50))
        faulty = X.copy()
        faulty[1, 10:20] = np.nan
        out = get_imputer("cdrec").impute(faulty)
        observed = ~np.isnan(faulty)
        assert np.array_equal(out[observed], X[observed])

    def test_impute_series_round_trip(self):
        ts = TimeSeries([0.0, np.nan, 2.0, 3.0], name="x")
        out = get_imputer("linear").impute_series(ts)
        assert out.name == "x"
        assert not out.has_missing

    def test_impute_dataset(self):
        rows = np.vstack([np.linspace(0, 1, 20)] * 3)
        rows[0, 5:8] = np.nan
        ds = TimeSeriesDataset.from_matrix(rows, category="Test")
        out = get_imputer("linear").impute_dataset(ds)
        assert isinstance(out, TimeSeriesDataset)
        assert out.category == "Test"
        assert not any(s.has_missing for s in out)

    def test_misbehaving_imputer_detected(self):
        class Bad(BaseImputer):
            name = "bad_shape_test"

            def _impute(self, X, mask):
                return X[:, :-1]

        with pytest.raises(ImputationError):
            Bad().impute(np.array([[1.0, np.nan, 3.0]]))

    def test_nan_leaking_imputer_detected(self):
        class Leaky(BaseImputer):
            name = "leaky_test"

            def _impute(self, X, mask):
                return X  # leaves the NaN in place

        with pytest.raises(ImputationError):
            Leaky().impute(np.array([[1.0, np.nan, 3.0]]))
