"""Unit tests for the feature scaler zoo."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, RegistryError, ValidationError
from repro.features import (
    available_scalers,
    get_scaler,
    scaler_search_space,
)


@pytest.fixture
def X(rng):
    return rng.normal(loc=3.0, scale=2.0, size=(40, 6))


ALL_SCALERS = sorted(available_scalers())


class TestContract:
    @pytest.mark.parametrize("name", ALL_SCALERS)
    def test_fit_transform_finite(self, name, X):
        Z = get_scaler(name).fit_transform(X)
        assert np.isfinite(Z).all()
        assert Z.shape[0] == X.shape[0]

    @pytest.mark.parametrize("name", ALL_SCALERS)
    def test_transform_before_fit_raises(self, name, X):
        with pytest.raises(NotFittedError):
            get_scaler(name).transform(X)

    @pytest.mark.parametrize("name", ALL_SCALERS)
    def test_handles_constant_column(self, name, X):
        X2 = X.copy()
        X2[:, 0] = 7.0
        Z = get_scaler(name).fit_transform(X2)
        assert np.isfinite(Z).all()

    @pytest.mark.parametrize("name", ALL_SCALERS)
    def test_clone_preserves_params(self, name):
        scaler = get_scaler(name)
        clone = scaler.clone()
        assert type(clone) is type(scaler)
        assert clone.get_params() == scaler.get_params()

    def test_unknown_scaler_raises(self):
        with pytest.raises(RegistryError):
            get_scaler("nope")

    def test_nan_input_rejected(self):
        scaler = get_scaler("standard")
        with pytest.raises(ValidationError):
            scaler.fit(np.array([[1.0, np.nan]]))


class TestSpecificBehaviours:
    def test_standard_zero_mean_unit_var(self, X):
        Z = get_scaler("standard").fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_minmax_range(self, X):
        Z = get_scaler("minmax", feature_range=(-1.0, 1.0)).fit_transform(X)
        assert Z.min() >= -1.0 - 1e-12
        assert Z.max() <= 1.0 + 1e-12

    def test_minmax_invalid_range_raises(self):
        with pytest.raises(ValidationError):
            get_scaler("minmax", feature_range=(1.0, 0.0))

    def test_robust_ignores_outliers(self, X):
        X2 = X.copy()
        X2[0, 0] = 1e6
        Z = get_scaler("robust").fit_transform(X2)
        # All non-outlier values stay in a modest band.
        assert np.abs(Z[1:, 0]).max() < 10

    def test_maxabs_preserves_zero(self):
        X = np.array([[0.0, -2.0], [1.0, 4.0]])
        Z = get_scaler("maxabs").fit_transform(X)
        assert Z[0, 0] == 0.0
        assert np.abs(Z).max() <= 1.0

    def test_normalizer_l2_rows(self, X):
        Z = get_scaler("normalizer", norm="l2").fit_transform(X)
        assert np.allclose(np.sqrt((Z**2).sum(axis=1)), 1.0)

    def test_normalizer_l1_rows(self, X):
        Z = get_scaler("normalizer", norm="l1").fit_transform(X)
        assert np.allclose(np.abs(Z).sum(axis=1), 1.0)

    def test_quantile_uniform_range(self, X):
        Z = get_scaler("quantile", output="uniform").fit_transform(X)
        assert Z.min() >= 0.0
        assert Z.max() <= 1.0

    def test_quantile_normal_shape(self, X):
        Z = get_scaler("quantile", output="normal").fit_transform(X)
        # Probit of the CDF should be roughly standard normal.
        assert abs(Z.mean()) < 0.3

    def test_power_log_compresses(self):
        X = np.array([[1.0], [10.0], [10000.0], [2.0], [5.0]])
        Z = get_scaler("power", method="log").fit_transform(X)
        assert np.isfinite(Z).all()
        assert Z.std() == pytest.approx(1.0, abs=0.01)

    def test_pca_reduces_dimension(self, X):
        Z = get_scaler("pca", n_components=2).fit_transform(X)
        assert Z.shape == (40, 2)

    def test_pca_fraction(self, X):
        Z = get_scaler("pca", n_components=0.5).fit_transform(X)
        assert Z.shape == (40, 3)

    def test_pca_whiten_unit_scale(self, X):
        Z = get_scaler("pca", n_components=3, whiten=True).fit_transform(X)
        assert np.isfinite(Z).all()

    def test_pca_invalid_fraction_raises(self):
        with pytest.raises(ValidationError):
            get_scaler("pca", n_components=0.0)


class TestSearchSpace:
    def test_at_least_sixty_options(self):
        assert len(scaler_search_space()) >= 60

    def test_all_options_instantiable(self, X):
        for name, params in scaler_search_space():
            Z = get_scaler(name, **params).fit_transform(X)
            assert np.isfinite(Z).all(), (name, params)

    def test_options_are_unique(self):
        space = scaler_search_space()
        keys = {
            (name, tuple(sorted((k, str(v)) for k, v in params.items())))
            for name, params in space
        }
        assert len(keys) == len(space)
