"""Tests for the FLAML/Tune/AutoFolio/RAHA-style baseline selectors."""

import numpy as np
import pytest

from repro.baselines import (
    AutoFolioSelector,
    FLAMLSelector,
    RAHASelector,
    TuneSelector,
)
from repro.exceptions import NotFittedError, ValidationError

ALL_BASELINES = [FLAMLSelector, TuneSelector, AutoFolioSelector, RAHASelector]


def _fast(cls):
    """Fast configurations so tests stay quick."""
    if cls is FLAMLSelector:
        return cls(n_rounds=6, families=("knn", "decision_tree"), random_state=0)
    if cls is TuneSelector:
        return cls(family="decision_tree", n_configs=6, random_state=0)
    if cls is AutoFolioSelector:
        return cls(family="knn", n_seeds=2, n_perturbations=2, random_state=0)
    return cls(n_clusters=3, random_state=0)


class TestSharedContract:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_fit_predict(self, cls, labeled_features):
        X, y = labeled_features
        selector = _fast(cls).fit(X, y)
        preds = selector.predict(X)
        assert preds.shape == y.shape
        assert (preds == y).mean() > 0.5

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_predict_before_fit_raises(self, cls, labeled_features):
        X, _ = labeled_features
        with pytest.raises(NotFittedError):
            _fast(cls).predict(X)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_mismatched_shapes_raise(self, cls):
        with pytest.raises(ValidationError):
            _fast(cls).fit(np.zeros((4, 2)), np.zeros(3))

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_invalid_validation_ratio_raises(self, cls):
        with pytest.raises(ValidationError):
            cls(validation_ratio=0.0)


class TestRankingSupport:
    def test_only_raha_supports_ranking(self):
        flags = {cls.name: cls.supports_ranking for cls in ALL_BASELINES}
        assert flags == {
            "FLAML": False, "Tune": False, "AutoFolio": False, "RAHA": True,
        }

    def test_raha_rankings_cover_classes(self, labeled_features):
        X, y = labeled_features
        selector = RAHASelector(n_clusters=3, random_state=0).fit(X, y)
        rankings = selector.predict_rankings(X[:5])
        classes = set(np.unique(y).tolist())
        for ranking in rankings:
            assert set(map(str, ranking)) == classes


class TestSelectionSemantics:
    def test_flaml_single_winner(self, labeled_features):
        X, y = labeled_features
        selector = _fast(FLAMLSelector).fit(X, y)
        # Exactly one winning model survives (not an ensemble).
        assert hasattr(selector._model, "predict")
        assert selector._model.name in ("knn", "decision_tree")

    def test_tune_stays_in_family(self, labeled_features):
        X, y = labeled_features
        selector = TuneSelector(family="knn", n_configs=4, random_state=0).fit(X, y)
        assert selector._model.name == "knn"

    def test_autofolio_stays_in_family(self, labeled_features):
        X, y = labeled_features
        selector = AutoFolioSelector(
            family="ridge", n_seeds=2, n_perturbations=2, random_state=0
        ).fit(X, y)
        assert selector._model.name == "ridge"

    def test_raha_routes_to_clusters(self, labeled_features):
        X, y = labeled_features
        selector = RAHASelector(n_clusters=3, random_state=0).fit(X, y)
        routes = selector._model._route(X)
        assert len(np.unique(routes)) > 1  # multiple clusters actually used

    def test_deterministic_given_seed(self, labeled_features):
        X, y = labeled_features
        p1 = _fast(TuneSelector).fit(X, y).predict(X)
        p2 = _fast(TuneSelector).fit(X, y).predict(X)
        assert (p1 == p2).all()
