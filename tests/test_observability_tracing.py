"""Unit tests for repro.observability.tracing."""

import json
import threading

import pytest

from repro.observability import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _reset_default_tracer():
    yield
    set_tracer(None)


class TestNullTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_span_is_shared_singleton(self):
        """The no-op path allocates nothing: every span is the same object."""
        a = NULL_TRACER.span("x", foo=1)
        b = NULL_TRACER.span("y")
        assert a is b is NULL_SPAN

    def test_null_span_context_and_tags(self):
        with NULL_TRACER.span("noop") as s:
            assert s.set_tag("k", "v") is s

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("noop"):
            pass
        assert NULL_TRACER.finished_spans() == []

    def test_module_level_span_helper_is_noop_by_default(self):
        assert span("anything") is NULL_SPAN

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("boom"):
                raise RuntimeError("boom")


class TestSpanNesting:
    def test_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["outer"].parent_id is None
        assert spans["middle"].parent_id == spans["outer"].span_id
        assert spans["inner"].parent_id == spans["middle"].span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["a"].parent_id == spans["root"].span_id
        assert spans["b"].parent_id == spans["root"].span_id

    def test_timing_and_tags(self):
        tracer = Tracer()
        with tracer.span("work", subsystem="test", n=3) as s:
            s.set_tag("extra", "yes")
        (finished,) = tracer.finished_spans()
        assert finished.wall_time >= 0.0
        assert finished.cpu_time >= 0.0
        assert finished.start_time > 0.0
        assert finished.tags == {"subsystem": "test", "n": 3, "extra": "yes"}

    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("explode"):
                raise ValueError("bad")
        (finished,) = tracer.finished_spans()
        assert "ValueError: bad" == finished.error

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0


class TestExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("outer", subsystem="race"):
            with tracer.span("inner", subsystem="race", k=1):
                pass
        return tracer

    def test_json_round_trip(self, tmp_path):
        tracer = self._traced()
        path = tracer.export_json(tmp_path / "trace_spans.json")
        loaded = json.loads(path.read_text())
        assert len(loaded) == 2
        by_name = {s["name"]: s for s in loaded}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["tags"] == {"subsystem": "race", "k": 1}

    def test_chrome_trace_structure(self, tmp_path):
        tracer = self._traced()
        path = tracer.export_chrome_trace(tmp_path / "chrome.json")
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["cat"] == "race"

    def test_chrome_args_carry_tags(self):
        tracer = self._traced()
        events = tracer.to_chrome_trace()["traceEvents"]
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"]["k"] == 1

    def test_non_jsonable_tags_coerced(self):
        tracer = Tracer()
        with tracer.span("x", key=("a", 1)):
            pass
        document = tracer.to_chrome_trace()
        assert document["traceEvents"][0]["args"]["key"] == "('a', 1)"
        json.dumps(document)  # must serialize cleanly


class TestInstallation:
    def test_set_and_reset(self):
        tracer = Tracer()
        assert set_tracer(tracer) is tracer
        assert get_tracer() is tracer
        assert set_tracer(None) is NULL_TRACER

    def test_use_tracer_scopes_installation(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is NULL_TRACER
        assert len(tracer) == 1

    def test_use_tracer_restores_previous(self):
        first = Tracer()
        second = Tracer()
        with use_tracer(first):
            with use_tracer(second):
                assert get_tracer() is second
            assert get_tracer() is first

    def test_custom_null_tracer_type(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestThreadSafety:
    def test_concurrent_span_recording(self):
        tracer = Tracer()
        n_threads, n_spans = 8, 50
        errors = []

        def worker(tid):
            try:
                with tracer.span(f"thread-{tid}"):
                    for i in range(n_spans):
                        with tracer.span(f"thread-{tid}-span-{i}"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tracer) == n_threads * (n_spans + 1)
        # Nesting stacks are thread-local: each inner span's parent is its
        # own thread's root span.
        spans = tracer.finished_spans()
        roots = {
            s.name: s.span_id for s in spans if s.parent_id is None
        }
        assert len(roots) == n_threads
        for s in spans:
            if s.parent_id is not None:
                prefix = s.name.rsplit("-span-", 1)[0]
                assert s.parent_id == roots[prefix]
