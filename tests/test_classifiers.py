"""Tests for the classifier zoo: shared contract + per-family behaviours."""

import numpy as np
import pytest

from repro.classifiers import (
    available_classifiers,
    default_params,
    get_classifier,
    param_space,
    sample_params,
)
from repro.classifiers.spaces import CLASSIFIER_PARAM_SPACES, total_parameterizations
from repro.exceptions import NotFittedError, RegistryError, ValidationError

ALL_CLASSIFIERS = sorted(available_classifiers())


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated gaussian blobs: every classifier should ace this."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    X = np.vstack([c + rng.normal(size=(30, 2)) for c in centers])
    y = np.repeat(["alpha", "beta", "gamma"], 30)
    return X, y


class TestRegistryAndSpaces:
    def test_twelve_families(self):
        assert len(ALL_CLASSIFIERS) == 12

    def test_unknown_classifier_raises(self):
        with pytest.raises(RegistryError):
            get_classifier("nope")

    def test_every_family_has_a_space(self):
        assert set(CLASSIFIER_PARAM_SPACES) == set(ALL_CLASSIFIERS)

    def test_default_params_valid(self):
        for name in ALL_CLASSIFIERS:
            clf = get_classifier(name, **default_params(name))
            assert clf.name == name

    def test_sample_params_in_grid(self):
        for name in ALL_CLASSIFIERS:
            params = sample_params(name, random_state=3)
            space = param_space(name)
            for key, value in params.items():
                assert value in space[key]

    def test_unknown_space_raises(self):
        with pytest.raises(ValidationError):
            param_space("nope")

    def test_search_space_is_large(self):
        # The paper quotes 1650 parameterizations; ours is the same order.
        assert total_parameterizations() > 500


class TestSharedContract:
    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_fit_predict_separable(self, name, blobs):
        X, y = blobs
        clf = get_classifier(name, **default_params(name))
        clf.fit(X, y)
        acc = (clf.predict(X) == y).mean()
        assert acc > 0.9, f"{name} scored {acc}"

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_proba_rows_sum_to_one(self, name, blobs):
        X, y = blobs
        clf = get_classifier(name).fit(X, y)
        proba = clf.predict_proba(X)
        assert proba.shape == (X.shape[0], 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_predict_before_fit_raises(self, name, blobs):
        X, _ = blobs
        with pytest.raises(NotFittedError):
            get_classifier(name).predict(X)

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_labels_stay_in_class_set(self, name, blobs, rng):
        X, y = blobs
        clf = get_classifier(name).fit(X, y)
        noise = rng.normal(scale=20.0, size=(50, 2))
        preds = clf.predict(noise)
        assert set(preds.tolist()).issubset(set(y.tolist()))

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_single_class_training(self, name):
        X = np.random.default_rng(0).normal(size=(10, 3))
        y = np.array(["only"] * 10)
        clf = get_classifier(name).fit(X, y)
        assert (clf.predict(X) == "only").all()

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_clone_is_unfitted_same_params(self, name):
        clf = get_classifier(name, **default_params(name))
        clone = clf.clone()
        assert clone.get_params() == clf.get_params()
        assert clone.classes_ is None

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_mismatched_shapes_raise(self, name):
        with pytest.raises(ValidationError):
            get_classifier(name).fit(np.zeros((5, 2)), np.zeros(4))

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_nan_features_rejected(self, name):
        X = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(ValidationError):
            get_classifier(name).fit(X, np.array([0, 1]))


class TestFamilySpecifics:
    def test_knn_k1_memorizes(self, blobs):
        X, y = blobs
        clf = get_classifier("knn", k=1)
        clf.fit(X, y)
        assert (clf.predict(X) == y).all()

    def test_knn_invalid_weights_raise(self):
        with pytest.raises(ValidationError):
            get_classifier("knn", weights="bogus")

    def test_tree_depth_limits_complexity(self, blobs):
        X, y = blobs
        shallow = get_classifier("decision_tree", max_depth=1).fit(X, y)
        deep = get_classifier("decision_tree", max_depth=10).fit(X, y)
        acc_shallow = (shallow.predict(X) == y).mean()
        acc_deep = (deep.predict(X) == y).mean()
        assert acc_deep >= acc_shallow

    def test_tree_invalid_criterion_raises(self):
        with pytest.raises(ValidationError):
            get_classifier("decision_tree", criterion="mse")

    def test_forest_more_trees_more_stable(self, blobs):
        X, y = blobs
        probas = []
        for seed in (0, 1):
            clf = get_classifier("random_forest", n_estimators=40, random_state=seed)
            clf.fit(X, y)
            probas.append(clf.predict_proba(X))
        # Two forests with different seeds agree closely when large enough.
        assert np.abs(probas[0] - probas[1]).mean() < 0.1

    def test_forest_max_features_options(self, blobs):
        X, y = blobs
        for mf in ("sqrt", "log2", "all", 1):
            clf = get_classifier("random_forest", n_estimators=5, max_features=mf)
            clf.fit(X, y)

    def test_gradient_boosting_improves_with_rounds(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(150, 5))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)  # XOR-ish, needs depth
        weak = get_classifier("gradient_boosting", n_estimators=2).fit(X, y)
        strong = get_classifier("gradient_boosting", n_estimators=40).fit(X, y)
        acc_weak = (weak.predict(X) == y).mean()
        acc_strong = (strong.predict(X) == y).mean()
        assert acc_strong > acc_weak

    def test_adaboost_handles_degenerate(self):
        X = np.ones((6, 2))
        y = np.array([0, 1, 0, 1, 0, 1])
        clf = get_classifier("adaboost").fit(X, y)
        assert clf.predict(X).shape == (6,)

    def test_mlp_invalid_hidden_raises(self):
        with pytest.raises(ValidationError):
            get_classifier("mlp", hidden=())
        with pytest.raises(ValidationError):
            get_classifier("mlp", hidden=(4, 4, 4))

    def test_nb_var_smoothing_regularizes(self, blobs):
        X, y = blobs
        clf = get_classifier("gaussian_nb", var_smoothing=1e-1).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_centroid_shrink_bounds(self):
        with pytest.raises(ValidationError):
            get_classifier("nearest_centroid", shrink=1.0)

    def test_ridge_alpha_effect(self, blobs):
        X, y = blobs
        low = get_classifier("ridge", alpha=0.01).fit(X, y)
        high = get_classifier("ridge", alpha=1000.0).fit(X, y)
        # Heavy regularization flattens scores but predictions stay valid.
        assert set(high.predict(X)).issubset(set(y))
        assert (low.predict(X) == y).mean() > 0.9
