"""Tests for the SLO engine: quantile sketch + burn-rate tracker."""

import pickle

import numpy as np
import pytest

from repro.observability import RecordingServingObserver
from repro.observability.slo import (
    QuantileSketch,
    SloPolicy,
    SloTracker,
    default_policies,
)

QS = (0.5, 0.95, 0.99)


def _distributions(seed):
    # Positive support throughout (like latencies): relative error is
    # ill-defined where a quantile crosses zero.
    rng = np.random.default_rng(seed)
    return {
        "normal": rng.normal(10.0, 3.0, size=10_000),
        "lognormal": rng.lognormal(0.0, 1.0, size=10_000),
        "uniform": rng.uniform(0.5, 10.5, size=10_000),
        "exponential": rng.exponential(2.0, size=10_000),
    }


def _rel_err(estimate, exact, scale):
    return abs(estimate - exact) / max(abs(exact), 1e-9 * scale)


class TestQuantileSketch:
    def test_exact_below_capacity(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=500)
        sketch = QuantileSketch()
        sketch.extend(data)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert sketch.quantile(q) == pytest.approx(
                np.percentile(data, q * 100), abs=1e-12
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_parity_with_np_percentile(self, seed):
        # Acceptance bar: p50/p95/p99 within 1% relative error of
        # np.percentile on >= 3 distributions at n=10k.
        for name, data in _distributions(seed).items():
            sketch = QuantileSketch()
            sketch.extend(data)
            spread = float(np.ptp(data))
            for q in QS:
                exact = float(np.percentile(data, q * 100))
                err = _rel_err(sketch.quantile(q), exact, spread)
                assert err < 0.01, (
                    f"{name} seed={seed} p{q * 100:g}: rel err {err:.4%}"
                )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merge_of_halves_matches_whole(self, seed):
        for name, data in _distributions(seed).items():
            left, right = QuantileSketch(), QuantileSketch()
            left.extend(data[: len(data) // 2])
            right.extend(data[len(data) // 2:])
            merged = QuantileSketch().merge(left).merge(right)
            assert merged.count == len(data)
            spread = float(np.ptp(data))
            for q in QS:
                exact = float(np.percentile(data, q * 100))
                err = _rel_err(merged.quantile(q), exact, spread)
                assert err < 0.01, (
                    f"merged {name} seed={seed} p{q * 100:g}: {err:.4%}"
                )

    def test_merge_folds_in_place_without_touching_other(self):
        # merge() is an in-place fold: returns self, never mutates other.
        rng = np.random.default_rng(3)
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(rng.normal(size=100))
        b.extend(rng.normal(size=100))
        before_b = b.quantile(0.5)
        merged = a.merge(b)
        assert merged is a
        assert a.count == 200
        assert b.count == 100
        assert b.quantile(0.5) == before_b

    def test_picklable(self):
        rng = np.random.default_rng(4)
        data = rng.lognormal(size=20_000)
        sketch = QuantileSketch()
        sketch.extend(data)
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.count == sketch.count
        for q in QS:
            assert clone.quantile(q) == sketch.quantile(q)
        # The revived sketch keeps accepting updates (fresh lock).
        clone.update(1.0)
        assert clone.count == sketch.count + 1

    def test_fixed_memory(self):
        # Stored items stay bounded while the count grows unbounded.
        sketch = QuantileSketch(k=128)
        rng = np.random.default_rng(5)
        sketch.extend(rng.normal(size=50_000))
        stored = sum(len(level) for level in sketch._levels)
        assert sketch.count == 50_000
        assert stored < 128 * 8

    def test_min_max_exact(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=30_000)
        sketch = QuantileSketch(k=64)
        sketch.extend(data)
        assert sketch.quantile(0.0) == float(data.min())
        assert sketch.quantile(1.0) == float(data.max())

    def test_empty_and_validation(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.summary()["count"] == 0
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(k=2)

    def test_summary_keys(self):
        sketch = QuantileSketch()
        sketch.extend([1.0, 2.0, 3.0])
        summary = sketch.summary()
        assert set(summary) == {
            "count", "mean", "min", "max", "p50", "p95", "p99",
        }
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)


class TestSloPolicy:
    def test_latency_constructor_maps_quantile_to_budget(self):
        policy = SloPolicy.latency("p99", quantile=0.99, threshold_s=0.05)
        assert policy.kind == "latency"
        assert policy.budget == pytest.approx(0.01)
        assert policy.threshold == pytest.approx(0.05)
        assert "p99" in policy.describe()
        assert "50ms" in policy.describe()

    def test_error_rate_constructor(self):
        policy = SloPolicy.error_rate("errors", budget=0.001)
        assert policy.kind == "error_rate"
        assert policy.budget == pytest.approx(0.001)
        assert "0.100%" in policy.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(name="bad", kind="latency", budget=0.0, threshold=1.0)
        with pytest.raises(ValueError):
            SloPolicy(name="bad", kind="nope", budget=0.1, threshold=1.0)

    def test_default_policies_have_unique_names(self):
        names = [p.name for p in default_policies()]
        assert len(names) == len(set(names)) >= 3


class _FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _tracker(policies=None):
    clock = _FakeClock()
    tracker = SloTracker(
        policies
        or [SloPolicy.latency("lat_p99", quantile=0.99, threshold_s=0.1)],
        clock=clock,
    )
    return tracker, clock


class TestSloTracker:
    def test_healthy_traffic_never_alerts(self):
        tracker, clock = _tracker()
        for _ in range(200):
            tracker.record_latency(0.01, check=False)
            clock.advance(1.0)
        assert tracker.evaluate() == []
        assert tracker.n_alerts == 0

    def test_burn_rate_alert_fires_and_rearms_deterministically(self):
        tracker, clock = _tracker()
        observer = RecordingServingObserver()
        tracker.add_observer(observer)

        # Phase 1: sustained badness -> both windows burn -> one alert.
        for _ in range(50):
            tracker.record_latency(0.5, check=False)
            clock.advance(1.0)
        fired = tracker.evaluate()
        assert [a.policy for a in fired] == ["lat_p99"]
        assert fired[0].fast_burn >= tracker.policies[0].fast_burn
        # Alert latches: continued badness does not re-fire.
        tracker.record_latency(0.5, check=False)
        assert tracker.evaluate() == []
        assert tracker.n_alerts == 1

        # Phase 2: recovery — healthy traffic pushes the fast window
        # under its burn threshold, re-arming the policy.
        for _ in range(400):
            tracker.record_latency(0.01, check=False)
            clock.advance(1.0)
        assert tracker.evaluate() == []
        status = tracker.status()["policies"][0]
        assert status["alerting"] is False

        # Phase 3: second excursion fires again.
        for _ in range(50):
            tracker.record_latency(0.5, check=False)
            clock.advance(1.0)
        assert [a.policy for a in tracker.evaluate()] == ["lat_p99"]
        assert tracker.n_alerts == 2
        events = [kind for kind, _ in observer.events]
        assert events.count("slo_alert") == 2

    def test_min_events_guard(self):
        tracker, clock = _tracker()
        for _ in range(5):  # below min_events=10
            tracker.record_latency(9.9, check=False)
            clock.advance(1.0)
        assert tracker.evaluate() == []

    def test_error_rate_policy(self):
        tracker, clock = _tracker([SloPolicy.error_rate("err", budget=0.01)])
        for i in range(100):
            tracker.record_latency(0.01, error=i % 2 == 0, check=False)
            clock.advance(1.0)
        fired = tracker.evaluate()
        assert [a.policy for a in fired] == ["err"]
        assert fired[0].kind == "error_rate"

    def test_slices_track_per_key_scorecards(self):
        tracker, clock = _tracker()
        for i in range(20):
            tracker.record_latency(
                0.5 if i % 2 else 0.01,
                slices=("imputer:cdrec", "cluster:3"),
                check=False,
            )
            clock.advance(1.0)
        slices = tracker.status()["slices"]
        assert set(slices) == {"imputer:cdrec", "cluster:3"}
        row = slices["imputer:cdrec"]
        assert row["n"] == 20
        assert row["bad"]["lat_p99"] == 10

    def test_slice_overflow_folds(self):
        tracker, clock = _tracker()
        tracker.max_slices = 4
        for i in range(10):
            tracker.record_latency(0.01, slices=(f"cluster:{i}",), check=False)
        slices = tracker.status()["slices"]
        assert "overflow" in slices
        assert len(slices) <= 5  # 4 + overflow

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ValueError):
            SloTracker(
                [
                    SloPolicy.latency("x", threshold_s=0.1),
                    SloPolicy.latency("x", threshold_s=0.2),
                ]
            )

    def test_status_document_shape(self):
        tracker, clock = _tracker()
        tracker.record_latency(0.02, check=False)
        status = tracker.status()
        assert set(status) == {
            "n_events", "n_alerts", "latency_sketch", "policies", "slices",
        }
        policy = status["policies"][0]
        for key in (
            "policy", "kind", "objective", "fast_burn", "slow_burn",
            "budget_remaining", "alerting", "n_alerts",
        ):
            assert key in policy


class TestShardFoldPattern:
    """The serving daemon's fold: per-shard sketches merged into one
    fleet view, and one tracker fed by N interleaved shard streams."""

    def test_merged_shard_sketches_match_whole_stream(self):
        rng = np.random.default_rng(7)
        stream = rng.lognormal(mean=-4.0, sigma=0.8, size=20_000)
        whole = QuantileSketch(1024)
        for value in stream:
            whole.update(value)
        # Round-robin the same stream over 4 "shards", then fold.
        shards = [QuantileSketch(1024) for _ in range(4)]
        for i, value in enumerate(stream):
            shards[i % 4].update(value)
        merged = QuantileSketch(1024)
        for sketch in shards:
            merged.merge(sketch)
        assert merged.count == whole.count == len(stream)
        exact = np.quantile(stream, [0.5, 0.9, 0.99])
        scale = float(stream.max() - stream.min())
        for q, truth in zip((0.5, 0.9, 0.99), exact):
            for view in (whole, merged):
                assert _rel_err(view.quantile(q), truth, scale) < 0.02
        # The documented 1% tolerance: the fold equals the whole stream.
        for q in (0.5, 0.9, 0.99):
            assert _rel_err(
                merged.quantile(q), whole.quantile(q), scale
            ) < 0.01

    def test_merge_concurrent_with_updates(self):
        """Folding shard sketches while shards keep writing is safe: no
        lost counts, no crash — the daemon's health() runs live."""
        import threading

        shards = [QuantileSketch(128) for _ in range(4)]
        n_per_shard = 5_000
        stop = threading.Event()
        merge_counts = []

        def writer(sketch, seed):
            rng = np.random.default_rng(seed)
            for value in rng.random(n_per_shard):
                sketch.update(value)

        def folder():
            while not stop.is_set():
                merged = QuantileSketch(128)
                for sketch in shards:
                    merged.merge(sketch)
                merge_counts.append(merged.count)

        threads = [
            threading.Thread(target=writer, args=(s, i))
            for i, s in enumerate(shards)
        ]
        fold_thread = threading.Thread(target=folder)
        fold_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        fold_thread.join()
        final = QuantileSketch(128)
        for sketch in shards:
            final.merge(sketch)
        assert final.count == 4 * n_per_shard
        assert merge_counts == sorted(merge_counts)  # counts only grow

    def test_alerts_identical_one_stream_vs_merged_shards(self):
        """Burn-rate alerts depend on the event multiset per bucket, not
        on which shard delivered each event."""

        def run(order):
            tracker, clock = _tracker(
                [SloPolicy.latency(
                    "p99", quantile=0.99, threshold_s=0.1, min_events=10,
                )]
            )
            fired = []
            for second in range(120):
                clock.advance(1.0)
                for shard in order(second):
                    # Each "shard" contributes one bad event per tick
                    # once the outage starts at t=60.
                    latency = 0.5 if second >= 60 else 0.01
                    tracker.record_latency(
                        latency, slices=(f"shard:{shard}",), check=False
                    )
                fired.extend(a.policy for a in tracker.evaluate())
            return fired, tracker.n_alerts, tracker.status()

        single, n_single, status_single = run(lambda s: [0, 0, 0, 0])
        merged, n_merged, status_merged = run(
            lambda s: [(s + k) % 4 for k in range(4)]
        )
        assert single == merged
        assert n_single == n_merged == 1
        for a, b in zip(
            status_single["policies"], status_merged["policies"]
        ):
            assert a["fast_burn"] == b["fast_burn"]
            assert a["slow_burn"] == b["slow_burn"]
            assert a["n_alerts"] == b["n_alerts"]

    def test_concurrent_record_latency_exact_counts(self):
        """8 threads hammering one tracker lose no events or buckets."""
        import threading

        tracker, clock = _tracker()
        n_threads, n_events = 8, 2_000

        def hammer(seed):
            rng = np.random.default_rng(seed)
            for value in rng.random(n_events):
                tracker.record_latency(
                    0.01 * value, slices=("shard:%d" % (seed % 4),),
                    check=False,
                )

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        status = tracker.status()
        assert tracker.n_events == n_threads * n_events
        assert tracker.sketch.count == n_threads * n_events
        assert sum(
            s["n"] for s in status["slices"].values()
        ) == n_threads * n_events
        for policy in status["policies"]:
            assert policy["slow_events"] == n_threads * n_events
