"""Unit tests for the Pipeline object, scoring, and the synthesizer."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, RegistryError
from repro.pipeline import (
    Pipeline,
    ScoreWeights,
    Synthesizer,
    make_seed_pipelines,
    score_pipeline,
)
from repro.exceptions import ValidationError


class TestPipeline:
    def test_defaults_fill_in(self):
        p = Pipeline("knn")
        assert p.classifier_params  # family defaults applied
        assert p.scaler_name == "identity"

    def test_invalid_classifier_raises_eagerly(self):
        # Default-parameter lookup fails first (ValidationError); both are
        # ReproError subclasses, which is what callers should catch.
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            Pipeline("nope")

    def test_invalid_scaler_raises_eagerly(self):
        with pytest.raises(RegistryError):
            Pipeline("knn", scaler_name="nope")

    def test_equality_and_hash(self):
        a = Pipeline("knn", {"k": 3, "weights": "uniform", "p": 2})
        b = Pipeline("knn", {"p": 2, "weights": "uniform", "k": 3})
        c = Pipeline("knn", {"k": 5, "weights": "uniform", "p": 2})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_fit_predict_round_trip(self, labeled_features):
        X, y = labeled_features
        p = Pipeline("knn", scaler_name="standard").fit(X, y)
        preds = p.predict(X)
        assert (preds == y).mean() > 0.9
        proba = p.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_rankings_best_first(self, labeled_features):
        X, y = labeled_features
        p = Pipeline("decision_tree").fit(X, y)
        rankings = p.predict_rankings(X[:5])
        preds = p.predict(X[:5])
        for pred, ranking in zip(preds, rankings):
            assert ranking[0] == pred

    def test_predict_before_fit_raises(self, labeled_features):
        X, _ = labeled_features
        with pytest.raises(NotFittedError):
            Pipeline("knn").predict(X)

    def test_clone_unfitted(self, labeled_features):
        X, y = labeled_features
        p = Pipeline("knn").fit(X, y)
        clone = p.clone()
        assert clone == p
        with pytest.raises(NotFittedError):
            clone.predict(X)

    def test_scaler_applied(self, labeled_features):
        X, y = labeled_features
        # PCA scaler reduces dimensionality before the classifier.
        p = Pipeline("knn", scaler_name="pca", scaler_params={"n_components": 2})
        p.fit(X, y)
        assert p.predict(X).shape == y.shape


class TestMakeSeedPipelines:
    def test_default_covers_all_families(self):
        seeds = make_seed_pipelines()
        assert len(seeds) == 12
        assert len({p.classifier_name for p in seeds}) == 12

    def test_subset(self):
        seeds = make_seed_pipelines(["knn", "ridge"])
        assert [p.classifier_name for p in seeds] == ["knn", "ridge"]

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            make_seed_pipelines([])


class TestScoring:
    def test_weights_validation(self):
        with pytest.raises(ValidationError):
            ScoreWeights(alpha=-1)
        with pytest.raises(ValidationError):
            ScoreWeights(alpha=0, beta=0, gamma=0)

    def test_combine_formula(self):
        w = ScoreWeights(alpha=0.5, beta=0.25, gamma=0.75)
        value = w.combine(f1=0.8, r3=1.0, norm_time=0.5)
        expected = (0.5 * 0.8 + 0.25 * 1.0 - 0.75 * 0.5) / 1.5
        assert value == pytest.approx(expected)

    def test_score_pipeline_end_to_end(self, labeled_features):
        X, y = labeled_features
        result = score_pipeline(
            Pipeline("knn", scaler_name="standard"),
            X[:80], y[:80], X[80:], y[80:],
        )
        assert 0.0 <= result.f1 <= 1.0
        assert 0.0 <= result.recall_at_3 <= 1.0
        assert result.runtime > 0
        assert np.isfinite(result.score)

    def test_crashing_pipeline_scores_neg_inf(self, labeled_features):
        X, y = labeled_features
        # PCA with more components than samples on a tiny fold still works,
        # so force failure with an absurd configuration instead.
        p = Pipeline("knn")
        p.fit = lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom"))
        result = score_pipeline(p, X[:10], y[:10], X[10:20], y[10:20])
        assert result.score == float("-inf")

    def test_error_field_captures_exception(self, labeled_features):
        """The failure reason survives in ``PipelineScore.error`` and the
        failure counter, instead of vanishing into the -inf score."""
        from repro.observability import MetricsRegistry, use_metrics

        X, y = labeled_features
        p = Pipeline("knn")
        p.fit = lambda *a, **k: (_ for _ in ()).throw(ValueError("bad fold"))
        registry = MetricsRegistry()
        with use_metrics(registry):
            result = score_pipeline(p, X[:10], y[:10], X[10:20], y[10:20])
        assert result.failed
        assert result.error == "ValueError: bad fold"
        assert (
            registry.counter(
                "repro_pipeline_failures_total", labels={"classifier": "knn"}
            ).value
            == 1
        )

    def test_successful_score_has_no_error(self, labeled_features):
        X, y = labeled_features
        result = score_pipeline(Pipeline("knn"), X[:80], y[:80], X[80:], y[80:])
        assert result.error is None
        assert not result.failed

    def test_gamma_penalizes_time(self, labeled_features):
        X, y = labeled_features
        fast_biased = ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0)
        slow_biased = ScoreWeights(alpha=0.5, beta=0.25, gamma=5.0)
        r1 = score_pipeline(
            Pipeline("knn"), X[:80], y[:80], X[80:], y[80:],
            weights=fast_biased, time_scale=1e-6,
        )
        r2 = score_pipeline(
            Pipeline("knn"), X[:80], y[:80], X[80:], y[80:],
            weights=slow_biased, time_scale=1e-6,
        )
        assert r2.score < r1.score


class TestSynthesizer:
    def test_children_differ_by_one_axis(self):
        parent = Pipeline("knn", scaler_name="standard")
        synth = Synthesizer(n_children_per_parent=5, random_state=0)
        children = synth.synthesize([parent])
        assert children
        for child in children:
            classifier_changed = (
                child.classifier_params != parent.classifier_params
            )
            scaler_changed = (
                child.scaler_name != parent.scaler_name
                or child.scaler_params != parent.scaler_params
            )
            assert classifier_changed != scaler_changed  # exactly one axis

    def test_same_family_preserved(self):
        parent = Pipeline("decision_tree")
        children = Synthesizer(random_state=1).synthesize([parent])
        assert all(c.classifier_name == "decision_tree" for c in children)

    def test_no_duplicates_vs_known(self):
        parent = Pipeline("knn")
        synth = Synthesizer(n_children_per_parent=10, random_state=2)
        known = {parent.config_key()}
        children = synth.synthesize([parent], known=known)
        keys = [c.config_key() for c in children]
        assert len(keys) == len(set(keys))
        assert parent.config_key() not in keys

    def test_invalid_fanout_raises(self):
        with pytest.raises(ValidationError):
            Synthesizer(n_children_per_parent=0)

    def test_deterministic_with_seed(self):
        parent = Pipeline("ridge")
        a = Synthesizer(random_state=5).synthesize([parent])
        b = Synthesizer(random_state=5).synthesize([parent])
        assert [p.config_key() for p in a] == [p.config_key() for p in b]
