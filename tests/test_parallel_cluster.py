"""Cluster backend tests: the value codec, the content-addressed blob
store, manifest execution, ``repro worker`` subprocess dispatch, engine
integration (byte-identical with the process backend), and demotion on
infrastructure failure."""

import functools
import io
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.parallel import ExecutionEngine, ParallelConfig
from repro.parallel.cluster import (
    BlobStore,
    ClusterUnavailableError,
    STATUS_ERROR,
    STATUS_OK,
    _raise_task_error,
    decode_value,
    dispatch,
    encode_value,
    run_manifest,
    write_manifest,
)
from repro.timeseries.batch import SeriesBank


@pytest.fixture()
def store(tmp_path):
    return BlobStore(tmp_path / "blobs")


def _roundtrip(value, store):
    return decode_value(json.loads(json.dumps(encode_value(value, store))), store)


class TestCodec:
    @pytest.mark.parametrize(
        "value", [None, True, False, 3, -1.5, "text", [1, 2, "a"], {"k": 1}]
    )
    def test_json_scalars_pass_through(self, value, store):
        assert _roundtrip(value, store) == value

    def test_ndarray_byte_exact(self, store):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=(5, 7))
        arr[0, 0] = np.nan
        out = _roundtrip(arr, store)
        assert out.tobytes() == np.ascontiguousarray(arr).tobytes()
        assert out.dtype == arr.dtype

    def test_numpy_scalar_keeps_dtype(self, store):
        out = _roundtrip(np.float32(1.5), store)
        assert isinstance(out, np.float32) and out == np.float32(1.5)
        out64 = _roundtrip(np.int64(7), store)
        assert isinstance(out64, np.int64) and out64 == 7

    def test_object_array_roundtrips_without_blob(self, store):
        labels = np.array(["cdrec", "knn"], dtype=object)
        encoded = encode_value(labels, store)
        assert "__pickle__" in encoded  # never a blob: workers load
        out = _roundtrip(labels, store)  # blobs with allow_pickle=False
        assert list(out) == list(labels) and out.dtype == object

    def test_nested_tuples_and_maps(self, store):
        value = {"pair": (np.arange(3.0), {"w": (1, 2.5)}), "n": 4}
        out = _roundtrip(value, store)
        assert out["n"] == 4
        np.testing.assert_array_equal(out["pair"][0], np.arange(3.0))
        assert out["pair"][1] == {"w": (1, 2.5)}
        assert isinstance(out["pair"], tuple)

    def test_module_level_callable(self, store):
        assert _roundtrip(np.linalg.norm, store) is np.linalg.norm

    def test_classmethod_callable(self, store):
        assert _roundtrip(SeriesBank.from_series, store)([np.ones(4)]).n == 1

    def test_partial_arrays_become_blobs(self, store):
        matrix = np.arange(20.0).reshape(4, 5)
        task = functools.partial(_norm_of_row, matrix=matrix)
        encoded = encode_value(task, store)
        assert "__partial__" in encoded
        assert "__blob__" in encoded["__partial__"]["keywords"]["matrix"]
        out = _roundtrip(task, store)
        assert out(2) == _norm_of_row(2, matrix=matrix)

    def test_unknown_tag_is_infrastructure_error(self, store):
        with pytest.raises(ClusterUnavailableError):
            decode_value({"__nope__": 1}, store)


class TestBlobStore:
    def test_content_addressing_dedups(self, store):
        arr = np.arange(16.0)
        a = store.put_array(arr)
        b = store.put_array(arr.copy())
        assert a == b
        files = list(store.root.iterdir())
        assert [f.name for f in files] == [f"{a}.npy"]
        np.testing.assert_array_equal(store.get_array(a), arr)

    def test_no_temp_files_left_behind(self, store):
        for seed in range(4):
            store.put_array(np.random.default_rng(seed).normal(size=32))
        assert not list(store.root.glob("*.tmp"))

    def test_missing_blob_is_infrastructure_error(self, store):
        with pytest.raises(ClusterUnavailableError, match="missing blob"):
            store.get_array("0" * 40)


class TestRunManifest:
    def test_results_in_order_with_status(self, tmp_path, store):
        items = [np.full(4, float(i)) for i in range(3)]
        manifest = tmp_path / "m.json"
        write_manifest(manifest, np.linalg.norm, items, [10, 11, 12], store, "t")
        out = io.StringIO()
        failures = run_manifest(manifest, out)
        assert failures == 0
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [l["id"] for l in lines] == [10, 11, 12]
        assert all(l["status"] == STATUS_OK for l in lines)
        results = [decode_value(l["result"], store) for l in lines]
        assert results == [float(np.linalg.norm(v)) for v in items]

    def test_task_exception_is_pickled_with_type(self, tmp_path, store):
        manifest = tmp_path / "m.json"
        # from_series([]) raises ValidationError inside the task.
        write_manifest(
            manifest, SeriesBank.from_series, [[]], [0], store, "t"
        )
        out = io.StringIO()
        assert run_manifest(manifest, out) == 1
        entry = json.loads(out.getvalue().splitlines()[0])
        assert entry["status"] == STATUS_ERROR
        assert "traceback" in entry
        with pytest.raises(ValidationError):
            _raise_task_error(entry)

    def test_unknown_manifest_version_rejected(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({"version": 99, "items": []}))
        with pytest.raises(ClusterUnavailableError, match="version"):
            run_manifest(manifest, io.StringIO())


class TestDispatch:
    def test_results_match_local_execution(self):
        rng = np.random.default_rng(1)
        items = [rng.normal(size=16) for _ in range(6)]
        out = dispatch(np.linalg.norm, items, jobs=2, label="t")
        assert out == [float(np.linalg.norm(v)) for v in items]

    def test_empty_batch(self):
        assert dispatch(np.linalg.norm, [], jobs=2) == []

    def test_task_error_reraised_with_original_type(self):
        with pytest.raises(ValidationError):
            dispatch(SeriesBank.from_series, [[]], jobs=1)

    def test_workdir_cleaned_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            dispatch(np.linalg.norm, [np.ones(4)], jobs=1)
        finally:
            tempfile.tempdir = None
        assert not list(tmp_path.glob("repro-cluster-*"))


def _norm_of_row(index, *, matrix):
    return float(np.linalg.norm(matrix[index]))


class TestEngineIntegration:
    def _engine(self, n_jobs=2):
        return ExecutionEngine(
            ParallelConfig(n_jobs=n_jobs, backend="cluster")
        )

    def test_map_matches_process_backend(self):
        rng = np.random.default_rng(2)
        items = [rng.normal(size=24) for _ in range(8)]
        with self._engine() as engine:
            via_cluster = engine.map(np.linalg.norm, items, label="cluster-t")
        with ExecutionEngine(
            ParallelConfig(n_jobs=2, backend="process")
        ) as engine:
            via_process = engine.map(np.linalg.norm, items, label="cluster-t")
        assert via_cluster == via_process  # exact float equality
        assert engine.n_demotions == 0

    def test_worker_count_recorded(self):
        from repro.parallel import engine_stats, reset_engine_stats

        reset_engine_stats()
        with self._engine(n_jobs=2) as engine:
            engine.map(np.linalg.norm, [np.ones(4)] * 4, label="cluster-w")
        stats = engine_stats()
        assert engine.n_demotions == 0
        assert stats["cluster"]["workers"] == 2
        assert stats["cluster"]["tasks"] == 4

    def test_infrastructure_failure_demotes_to_process(self, monkeypatch):
        from repro.parallel import cluster as cluster_mod

        def _down(*args, **kwargs):
            raise ClusterUnavailableError("simulated outage")

        monkeypatch.setattr(cluster_mod, "dispatch", _down)
        rng = np.random.default_rng(3)
        items = [rng.normal(size=16) for _ in range(6)]
        with self._engine() as engine:
            out = engine.map(np.linalg.norm, items, label="cluster-down")
        assert out == [float(np.linalg.norm(v)) for v in items]
        assert engine.n_demotions == 1

    def test_shared_arrays_flow_through_cluster(self):
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(6, 12))
        with self._engine() as engine:
            out = engine.map(
                _norm_of_row,
                list(range(6)),
                label="cluster-shared",
                shared={"matrix": matrix},
            )
        assert engine.n_demotions == 0
        assert out == [_norm_of_row(i, matrix=matrix) for i in range(6)]


class TestEndToEndParity:
    """The acceptance gate: extraction and race folds run end-to-end
    through ``repro worker`` with byte-identical results."""

    def test_extraction_byte_identical(self):
        from repro.datasets import load_category
        from repro.features import FeatureExtractor

        datasets = load_category("Water", n_series=6, n_datasets=1)
        series = [s for d in datasets for s in d.series]
        reference = FeatureExtractor().extract_many(series)
        cfg = ParallelConfig(n_jobs=2, backend="cluster")
        extractor = FeatureExtractor(parallel=cfg)
        fanned = extractor.extract_many(series)
        assert reference.tobytes() == fanned.tobytes()

    def test_race_folds_identical(self):
        from repro.core.config import ModelRaceConfig
        from repro.core.modelrace import ModelRace
        from repro.pipeline.pipeline import make_seed_pipelines
        from repro.pipeline.scoring import ScoreWeights

        rng = np.random.default_rng(7)
        n, d = 60, 5
        X = rng.normal(size=(n, d))
        y = np.array(["cdrec", "knn"], dtype=object)[rng.integers(0, 2, n)]
        X[y == "cdrec"] += 1.2
        data = (X[20:], y[20:], X[:20], y[:20])

        def _run(parallel):
            config = ModelRaceConfig(
                n_partial_sets=1,
                n_folds=2,
                max_elite=3,
                weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
                random_state=0,
                parallel=parallel or ParallelConfig(),
            )
            seeds = make_seed_pipelines(["knn", "gaussian_nb"])
            return ModelRace(config).run(seeds, *data)

        serial = _run(None)
        clustered = _run(ParallelConfig(n_jobs=2, backend="cluster"))
        assert [p.config_key() for p in serial.elite] == [
            p.config_key() for p in clustered.elite
        ]
        assert serial.scores == clustered.scores  # exact float equality
        assert serial.n_evaluations == clustered.n_evaluations


class TestWorkerCli:
    def _spawn(self, argv):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_worker_writes_results_file(self, tmp_path, store):
        items = [np.full(3, float(i)) for i in range(2)]
        manifest = tmp_path / "m.json"
        write_manifest(manifest, np.linalg.norm, items, [0, 1], store, "cli")
        out_path = tmp_path / "results.jsonl"
        proc = self._spawn(
            ["worker", "--manifest", str(manifest), "--out", str(out_path)]
        )
        assert proc.returncode == 0, proc.stderr
        lines = [json.loads(l) for l in out_path.read_text().splitlines()]
        assert [l["id"] for l in lines] == [0, 1]
        assert all(l["status"] == STATUS_OK for l in lines)

    def test_worker_streams_to_stdout(self, tmp_path, store):
        manifest = tmp_path / "m.json"
        write_manifest(manifest, np.linalg.norm, [np.ones(4)], [5], store, "cli")
        proc = self._spawn(["worker", "--manifest", str(manifest)])
        assert proc.returncode == 0, proc.stderr
        entry = json.loads(proc.stdout.splitlines()[-1])
        assert entry["id"] == 5 and entry["status"] == STATUS_OK

    def test_worker_exit_code_counts_failures(self, tmp_path, store):
        manifest = tmp_path / "m.json"
        write_manifest(
            manifest,
            SeriesBank.from_series,
            [[], [np.ones(4)]],
            [0, 1],
            store,
            "cli",
        )
        out_path = tmp_path / "results.jsonl"
        proc = self._spawn(
            ["worker", "--manifest", str(manifest), "--out", str(out_path)]
        )
        assert proc.returncode == 1
        lines = [json.loads(l) for l in out_path.read_text().splitlines()]
        assert [l["status"] for l in lines] == [STATUS_ERROR, STATUS_OK]
