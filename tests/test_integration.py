"""Cross-module integration tests: the full Fig. 2 path and key claims."""

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.baselines import FLAMLSelector, RAHASelector
from repro.clustering.labeling import ClusterLabeler
from repro.datasets import load_category, holdout_split
from repro.features import FeatureExtractor
from repro.pipeline.metrics import classification_report, f1_weighted
from repro.pipeline.scoring import ScoreWeights


# gamma=0 removes the wall-clock term from race scores so these
# integration assertions are reproducible run to run (with gamma > 0,
# early termination against the fold best is timing-sensitive and
# near-threshold F1 comparisons can flip on a loaded CI machine).
FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=3, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)
FAST_CLASSIFIERS = ["knn", "decision_tree", "gaussian_nb", "ridge"]
SLATE = ("linear", "knn", "svdimp", "mean")


@pytest.fixture(scope="module")
def mixed_corpus():
    """Two contrasting categories so labels diversify."""
    datasets = load_category("Climate", n_series=10, n_datasets=2) + load_category(
        "Motion", n_series=10, n_datasets=2
    )
    labeler = ClusterLabeler(imputer_names=SLATE, random_state=0)
    return labeler.label_corpus(datasets)


class TestFullTrainingPath:
    def test_labels_are_diverse(self, mixed_corpus):
        values = np.unique(mixed_corpus.labels)
        assert len(values) >= 2, "corpus must exercise a real selection problem"

    def test_train_and_recommend(self, mixed_corpus):
        engine = ADarts(config=FAST_CONFIG, classifier_names=FAST_CLASSIFIERS)
        engine.fit_labeled(mixed_corpus)
        rec = engine.recommend(mixed_corpus.series[0])
        assert rec.algorithm in SLATE

    def test_holdout_f1_beats_random_guess(self, mixed_corpus):
        extractor = FeatureExtractor()
        X = extractor.extract_many(mixed_corpus.series)
        y = mixed_corpus.labels
        X_tr, X_te, y_tr, y_te = holdout_split(X, y, test_ratio=0.35, random_state=1)
        engine = ADarts(config=FAST_CONFIG, classifier_names=FAST_CLASSIFIERS)
        engine.fit_features(X_tr, y_tr)
        f1 = f1_weighted(y_te, engine.predict(X_te))
        n_classes = len(np.unique(y))
        assert f1 > 1.5 / n_classes

    def test_report_has_all_metrics(self, mixed_corpus):
        extractor = FeatureExtractor()
        X = extractor.extract_many(mixed_corpus.series)
        y = mixed_corpus.labels
        X_tr, X_te, y_tr, y_te = holdout_split(X, y, test_ratio=0.35, random_state=1)
        engine = ADarts(config=FAST_CONFIG, classifier_names=FAST_CLASSIFIERS)
        engine.fit_features(X_tr, y_tr)
        report = classification_report(
            y_te, engine.predict(X_te), engine.predict_rankings(X_te)
        )
        for key in ("accuracy", "precision", "recall", "f1", "mrr", "recall_at_3"):
            assert 0.0 <= report[key] <= 1.0


class TestSystemComparison:
    def test_adarts_competitive_with_baselines(self, mixed_corpus):
        """On a labeled holdout, A-DARTS should at least match the scoped
        baselines (the paper's headline claim, at miniature scale)."""
        extractor = FeatureExtractor()
        X = extractor.extract_many(mixed_corpus.series)
        y = mixed_corpus.labels
        X_tr, X_te, y_tr, y_te = holdout_split(X, y, test_ratio=0.35, random_state=2)

        engine = ADarts(config=FAST_CONFIG, classifier_names=FAST_CLASSIFIERS)
        engine.fit_features(X_tr, y_tr)
        f1_adarts = f1_weighted(y_te, engine.predict(X_te))

        flaml = FLAMLSelector(
            n_rounds=8, families=("knn", "decision_tree"), random_state=0
        ).fit(X_tr, y_tr)
        f1_flaml = f1_weighted(y_te, flaml.predict(X_te))

        raha = RAHASelector(n_clusters=3, random_state=0).fit(X_tr, y_tr)
        f1_raha = f1_weighted(y_te, raha.predict(X_te))

        assert f1_adarts >= max(f1_flaml, f1_raha) - 0.1

    def test_feature_families_complement(self, mixed_corpus):
        """Either family alone should not beat the combination by much
        (Fig. 9's qualitative claim)."""
        y = mixed_corpus.labels
        scores = {}
        for name, kwargs in (
            ("both", {}),
            ("stat", {"use_topological": False}),
            ("topo", {"use_statistical": False}),
        ):
            extractor = FeatureExtractor(**kwargs)
            X = extractor.extract_many(mixed_corpus.series)
            X_tr, X_te, y_tr, y_te = holdout_split(
                X, y, test_ratio=0.35, random_state=3
            )
            engine = ADarts(
                config=FAST_CONFIG,
                classifier_names=FAST_CLASSIFIERS,
                extractor=extractor,
            )
            engine.fit_features(X_tr, y_tr)
            scores[name] = f1_weighted(y_te, engine.predict(X_te))
        assert scores["both"] >= max(scores["stat"], scores["topo"]) - 0.15


class TestEndToEndRepair:
    def test_repair_improves_over_worst_choice(self, mixed_corpus):
        engine = ADarts(config=FAST_CONFIG, classifier_names=FAST_CLASSIFIERS)
        engine.fit_labeled(mixed_corpus)
        # Build a fresh faulty Climate-like series with known truth.
        t = np.arange(300, dtype=float)
        clean = 10 + 8 * np.sin(2 * np.pi * t / 100.0)
        faulty_vals = clean.copy()
        faulty_vals[120:150] = np.nan
        faulty = TimeSeries(faulty_vals)
        repaired = engine.repair(faulty)
        assert not repaired.has_missing
        rmse = np.sqrt(np.mean((repaired.values[120:150] - clean[120:150]) ** 2))
        # Worst case: filling with the global mean.
        mean_rmse = np.sqrt(
            np.mean((np.nanmean(faulty_vals) - clean[120:150]) ** 2)
        )
        assert rmse <= mean_rmse
