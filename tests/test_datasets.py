"""Unit tests for synthetic dataset generators, catalog, and splits."""

import numpy as np
import pytest

from repro.datasets import (
    CATEGORIES,
    CATEGORY_GENERATORS,
    FORECAST_DATASETS,
    corpus_summary,
    holdout_split,
    load_category,
    load_corpus,
    load_forecast_corpus,
    load_forecast_dataset,
    stratified_kfold,
    train_test_indices,
)
from repro.exceptions import ValidationError
from repro.timeseries import average_pairwise_correlation


class TestGenerators:
    @pytest.mark.parametrize("category", CATEGORIES)
    def test_shape_and_finiteness(self, category):
        ds = CATEGORY_GENERATORS[category](n_series=6, random_state=0)
        assert len(ds) == 6
        assert ds.category == category
        matrix = ds.to_matrix()
        assert np.isfinite(matrix).all()

    @pytest.mark.parametrize("category", CATEGORIES)
    def test_deterministic(self, category):
        gen = CATEGORY_GENERATORS[category]
        a = gen(n_series=4, random_state=5).to_matrix()
        b = gen(n_series=4, random_state=5).to_matrix()
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("category", CATEGORIES)
    def test_seed_changes_data(self, category):
        gen = CATEGORY_GENERATORS[category]
        a = gen(n_series=4, random_state=1).to_matrix()
        b = gen(n_series=4, random_state=2).to_matrix()
        assert not np.array_equal(a, b)

    def test_climate_is_highly_correlated(self):
        ds = CATEGORY_GENERATORS["Climate"](n_series=8, random_state=0)
        assert average_pairwise_correlation(list(ds.series)) > 0.85

    def test_motion_is_weakly_correlated(self):
        ds = CATEGORY_GENERATORS["Motion"](n_series=8, random_state=0)
        assert average_pairwise_correlation(list(ds.series)) < 0.5

    def test_water_has_anomalies(self):
        ds = CATEGORY_GENERATORS["Water"](n_series=8, random_state=0)
        matrix = ds.to_matrix()
        # Spikes should push values beyond 3 robust sigmas on most rows.
        outlier_rows = 0
        for row in matrix:
            med = np.median(row)
            mad = np.median(np.abs(row - med)) + 1e-12
            if np.any(np.abs(row - med) > 5 * mad):
                outlier_rows += 1
        assert outlier_rows >= 6

    def test_medical_is_spiky_periodic(self):
        ds = CATEGORY_GENERATORS["Medical"](n_series=4, random_state=0)
        row = ds.to_matrix()[0]
        # Peak-to-median ratio large (QRS spikes).
        assert row.max() > np.median(row) + 3 * row.std() / 2


class TestCatalog:
    def test_load_category_counts(self):
        datasets = load_category("Power", n_series=10, n_datasets=2)
        assert len(datasets) == 2
        assert all(ds.category == "Power" for ds in datasets)

    def test_unknown_category_raises(self):
        with pytest.raises(ValidationError):
            load_category("Nope")

    def test_too_many_datasets_raises(self):
        with pytest.raises(ValidationError):
            load_category("Power", n_datasets=99)

    def test_load_corpus_covers_all_categories(self):
        corpus = load_corpus(n_series=6, n_datasets=1)
        assert set(corpus) == set(CATEGORIES)

    def test_corpus_summary(self):
        corpus = load_corpus(n_series=6, n_datasets=2)
        summary = corpus_summary(corpus)
        for category in CATEGORIES:
            assert summary[category]["n_datasets"] == 2
            assert summary[category]["n_series"] > 0
            assert summary[category]["min_length"] >= 64


class TestForecastCatalog:
    @pytest.mark.parametrize("name", FORECAST_DATASETS)
    def test_each_dataset_loads(self, name):
        ds = load_forecast_dataset(name, n_series=3, length=96)
        assert len(ds) == 3
        assert np.isfinite(ds.to_matrix()).all()

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError):
            load_forecast_dataset("bogus")

    def test_corpus_loads_all(self):
        corpus = load_forecast_corpus(n_series=2, length=96)
        assert set(corpus) == set(FORECAST_DATASETS)


class TestSplits:
    def test_train_test_indices_partition(self):
        train, test = train_test_indices(20, test_ratio=0.3, random_state=0)
        assert sorted(np.concatenate([train, test]).tolist()) == list(range(20))
        assert len(test) == 6

    def test_train_test_indices_tiny_raises(self):
        with pytest.raises(ValidationError):
            train_test_indices(1)

    def test_holdout_stratified_preserves_classes(self):
        X = np.arange(60, dtype=float).reshape(30, 2)
        y = np.array([0] * 20 + [1] * 10)
        X_tr, X_te, y_tr, y_te = holdout_split(X, y, test_ratio=0.3, random_state=0)
        assert set(np.unique(y_te)) == {0, 1}
        # Proportions roughly preserved.
        assert (y_te == 0).sum() == 6
        assert (y_te == 1).sum() == 3

    def test_holdout_singleton_class_goes_to_train(self):
        X = np.zeros((5, 2))
        y = np.array([0, 0, 0, 0, 1])
        X_tr, X_te, y_tr, y_te = holdout_split(X, y, test_ratio=0.4, random_state=0)
        assert 1 in y_tr
        assert 1 not in y_te

    def test_holdout_mismatched_raises(self):
        with pytest.raises(ValidationError):
            holdout_split(np.zeros((3, 2)), np.zeros(4))

    def test_stratified_kfold_partitions(self):
        y = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
        folds = list(stratified_kfold(y, n_splits=3, random_state=0))
        assert len(folds) == 3
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(9))
        for train, test in folds:
            assert set(train.tolist()).isdisjoint(set(test.tolist()))

    def test_stratified_kfold_balance(self):
        y = np.array([0] * 30 + [1] * 30)
        for train, test in stratified_kfold(y, n_splits=3, random_state=0):
            ratio = (y[test] == 0).mean()
            assert 0.3 < ratio < 0.7

    def test_stratified_kfold_too_few_raises(self):
        with pytest.raises(ValidationError):
            list(stratified_kfold(np.array([0]), n_splits=2))

    def test_stratified_kfold_bad_splits_raises(self):
        with pytest.raises(ValidationError):
            list(stratified_kfold(np.zeros(10), n_splits=1))
