"""Serving-path degradation: member drops, quarantine, and static fallback.

These tests poison ensemble members through the ``ensemble.member`` fault
site and assert the monitored serving path *degrades* — drops the failing
member, eventually quarantines it, or answers from the static fallback —
while the request itself always succeeds and every degradation leaves an
observable trace (counters, observer events, health-snapshot sections).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.core.voting import MEMBER_QUARANTINE_THRESHOLD
from repro.observability import (
    InferenceMonitor,
    MetricsRegistry,
    RecordingServingObserver,
    use_metrics,
)
from repro.pipeline.scoring import ScoreWeights
from repro.resilience import (
    FaultPlan,
    FaultRule,
    reset_resilience_stats,
    use_fault_injector,
)

pytestmark = pytest.mark.chaos

FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_resilience_stats()
    yield
    reset_resilience_stats()


def _make_corpus(rng, n_per_family=12, length=100):
    series, labels = [], []
    t = np.linspace(0, 4 * np.pi, length)
    for i in range(n_per_family):
        values = np.sin(t * (1 + 0.05 * i)) + 0.05 * rng.normal(size=length)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(n_per_family):
        values = 0.5 * np.cumsum(rng.normal(size=length))
        series.append(TimeSeries(values, name=f"walk{i}"))
        labels.append("mean")
    return series, np.array(labels)


@pytest.fixture(scope="module")
def fitted_engine():
    rng = np.random.default_rng(11)
    series, labels = _make_corpus(rng)
    engine = ADarts(
        config=FAST_CONFIG, classifier_names=["knn", "decision_tree"]
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, labels)
    return engine, series


@pytest.fixture
def engine_and_series(fitted_engine):
    """Per-test deep copy so breaker state never leaks between tests."""
    engine, series = fitted_engine
    return copy.deepcopy(engine), series


def _poison(match=None, **kwargs):
    return FaultPlan(
        [FaultRule(site="ensemble.member", match=match, **kwargs)], seed=0
    )


class TestMemberDegradation:
    def test_failing_member_is_dropped_not_fatal(self, engine_and_series):
        engine, series = engine_and_series
        observer = RecordingServingObserver()
        monitor = InferenceMonitor(engine, observer=observer)
        with use_fault_injector(_poison(match="#0").injector()):
            recs = monitor.recommend_many(series[:3])
        assert len(recs) == 3
        assert all(rec.degraded for rec in recs)
        assert monitor.n_degraded == 1
        assert monitor.n_fallback == 0
        detail = engine.last_vote_detail_
        assert detail is not None and detail.degraded
        assert any(name.endswith("#0") for name in detail.failed_members)
        assert detail.used_members  # the healthy member still voted
        degraded = observer.of_type("degraded")
        assert len(degraded) == 1
        assert degraded[0]["detail"] is detail

    def test_degradation_counters_recorded(self, engine_and_series):
        engine, series = engine_and_series
        registry = MetricsRegistry()
        with use_metrics(registry):
            monitor = InferenceMonitor(engine)
            with use_fault_injector(_poison(match="#0").injector()):
                monitor.recommend_many(series[:2])
        text = registry.to_prometheus()
        assert "repro_serving_degraded_total 1" in text
        assert "repro_ensemble_member_failures_total" in text

    def test_repeated_failures_quarantine_member_once(self, engine_and_series):
        engine, series = engine_and_series
        observer = RecordingServingObserver()
        monitor = InferenceMonitor(engine, observer=observer)
        with use_fault_injector(_poison(match="#0").injector()):
            for _ in range(MEMBER_QUARANTINE_THRESHOLD + 2):
                monitor.recommend_many(series[:2])
        quarantined = engine._ensemble.quarantined_members
        assert any(name.endswith("#0") for name in quarantined)
        announcements = observer.of_type("member_quarantined")
        assert len(announcements) == 1  # announced exactly once
        assert announcements[0]["member"].endswith("#0")
        # Post-quarantine requests skip the member but still answer.
        recs = monitor.recommend_many(series[:2])
        assert len(recs) == 2
        assert all(rec.degraded for rec in recs)

    def test_full_ensemble_failure_serves_static_fallback(
        self, engine_and_series
    ):
        engine, series = engine_and_series
        observer = RecordingServingObserver()
        monitor = InferenceMonitor(engine, observer=observer)
        with use_fault_injector(_poison().injector()):  # every member
            recs = monitor.recommend_many(series[:4])
        assert len(recs) == 4
        assert all(rec.degraded for rec in recs)
        # The documented fallback preference: "linear" when trained on it.
        assert {rec.algorithm for rec in recs} == {"linear"}
        assert monitor.n_fallback == 1
        assert engine.last_vote_detail_ is None
        degraded = observer.of_type("degraded")
        assert len(degraded) == 1 and degraded[0]["detail"] is None

    def test_healthy_requests_are_not_flagged(self, engine_and_series):
        engine, series = engine_and_series
        monitor = InferenceMonitor(engine)
        recs = monitor.recommend_many(series[:3])
        assert len(recs) == 3
        assert not any(rec.degraded for rec in recs)
        assert monitor.n_degraded == 0
        assert monitor.n_fallback == 0


class TestHealthSnapshotResilience:
    def _degraded_monitor(self, engine, series):
        monitor = InferenceMonitor(engine)
        with use_fault_injector(_poison(match="#0").injector()):
            for _ in range(MEMBER_QUARANTINE_THRESHOLD):
                monitor.recommend_many(series[:2])
        return monitor

    def test_snapshot_reports_degradation(self, engine_and_series):
        engine, series = engine_and_series
        monitor = self._degraded_monitor(engine, series)
        snapshot = monitor.snapshot()
        resilience = snapshot.resilience
        assert resilience["degraded_requests"] == MEMBER_QUARANTINE_THRESHOLD
        assert resilience["fallback_requests"] == 0
        assert any(m.endswith("#0") for m in resilience["quarantined_members"])
        assert "member_failures" in resilience["process"]
        alerts = snapshot.alerts
        assert alerts["degraded_requests"] == MEMBER_QUARANTINE_THRESHOLD
        assert alerts["quarantined_members"] >= 1
        document = snapshot.as_dict()
        assert document["resilience"] == resilience

    def test_snapshot_prometheus_exposition(self, engine_and_series):
        engine, series = engine_and_series
        monitor = self._degraded_monitor(engine, series)
        text = monitor.snapshot().to_prometheus()
        assert "repro_serving_degraded_total" in text
        assert "repro_serving_fallback_total" in text
        assert "repro_serving_quarantined_members 1" in text
        assert 'repro_resilience_events_total{event="member_failures"}' in text

    def test_clean_monitor_reports_zeroes(self, engine_and_series):
        engine, series = engine_and_series
        monitor = InferenceMonitor(engine)
        monitor.recommend_many(series[:2])
        snapshot = monitor.snapshot()
        assert snapshot.resilience["degraded_requests"] == 0
        assert snapshot.resilience["fallback_requests"] == 0
        assert snapshot.resilience["quarantined_members"] == []
