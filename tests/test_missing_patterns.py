"""Tests for missing-pattern detection (the future-work extension)."""

import numpy as np
import pytest

from repro.features import FeatureExtractor
from repro.timeseries import TimeSeries, inject_mcar, inject_missing_blocks, inject_tip_block
from repro.timeseries.patterns import (
    MISSING_PATTERN_FEATURE_NAMES,
    PATTERN_NAMES,
    detect_missing_pattern,
    missing_pattern_features,
)


@pytest.fixture
def base():
    return TimeSeries(np.sin(np.linspace(0, 12.56, 200)))


class TestDetection:
    def test_complete(self, base):
        pattern = detect_missing_pattern(base)
        assert pattern.kind == "complete"
        assert pattern.n_blocks == 0
        assert pattern.missing_ratio == 0.0

    def test_single_block(self, base):
        values = base.values.copy()
        values[50:80] = np.nan
        pattern = detect_missing_pattern(base.with_values(values))
        assert pattern.kind == "single_block"
        assert pattern.n_blocks == 1
        assert pattern.missing_ratio == pytest.approx(0.15)
        assert pattern.max_block_ratio == pytest.approx(0.15)
        assert 0.2 < pattern.relative_position < 0.45

    def test_tip_block(self, base):
        faulty, _ = inject_tip_block(base, ratio=0.2)
        assert detect_missing_pattern(faulty).kind == "tip_block"

    def test_head_block(self, base):
        values = base.values.copy()
        values[:30] = np.nan
        assert detect_missing_pattern(base.with_values(values)).kind == "head_block"

    def test_multi_block(self, base):
        faulty, _ = inject_missing_blocks(base, n_blocks=3, ratio=0.2, random_state=0)
        pattern = detect_missing_pattern(faulty)
        assert pattern.kind == "multi_block"
        assert pattern.n_blocks == 3

    def test_scattered(self, base):
        faulty, _ = inject_mcar(base, ratio=0.1, random_state=0)
        pattern = detect_missing_pattern(faulty)
        assert pattern.kind == "scattered"
        assert pattern.mean_block_length <= 2.0

    def test_relative_position_tracks_gap(self, base):
        early = base.values.copy()
        early[10:30] = np.nan
        late = base.values.copy()
        late[160:180] = np.nan
        pos_early = detect_missing_pattern(base.with_values(early)).relative_position
        pos_late = detect_missing_pattern(base.with_values(late)).relative_position
        assert pos_early < 0.5 < pos_late


class TestFeatures:
    def test_names_stable(self):
        assert len(MISSING_PATTERN_FEATURE_NAMES) == len(PATTERN_NAMES) + 5

    def test_one_hot_exactly_one(self, base):
        values = base.values.copy()
        values[50:70] = np.nan
        feats = missing_pattern_features(base.with_values(values))
        onehots = [feats[f"miss_is_{name}"] for name in PATTERN_NAMES]
        assert sum(onehots) == 1.0

    def test_accepts_raw_arrays(self):
        feats = missing_pattern_features(np.array([1.0, np.nan, 3.0]))
        assert feats["miss_ratio"] == pytest.approx(1 / 3)

    def test_all_finite(self, base):
        for make in (
            lambda: base,
            lambda: inject_tip_block(base, 0.3)[0],
            lambda: inject_mcar(base, 0.2, random_state=1)[0],
        ):
            feats = missing_pattern_features(make())
            assert all(np.isfinite(v) for v in feats.values())


class TestExtractorIntegration:
    def test_extractor_appends_pattern_features(self, base):
        fe = FeatureExtractor(use_missing_pattern=True)
        assert fe.n_features == 56 + len(MISSING_PATTERN_FEATURE_NAMES)
        values = base.values.copy()
        values[40:60] = np.nan
        vector = fe.extract(base.with_values(values))
        assert np.isfinite(vector).all()

    def test_pattern_only_extractor(self, base):
        fe = FeatureExtractor(
            use_statistical=False, use_topological=False, use_missing_pattern=True
        )
        assert fe.n_features == len(MISSING_PATTERN_FEATURE_NAMES)

    def test_pattern_features_distinguish_block_kinds(self, base):
        fe = FeatureExtractor(
            use_statistical=False, use_topological=False, use_missing_pattern=True
        )
        tip, _ = inject_tip_block(base, ratio=0.2)
        scattered, _ = inject_mcar(base, ratio=0.2, random_state=0)
        assert not np.allclose(fe.extract(tip), fe.extract(scattered))
