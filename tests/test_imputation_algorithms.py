"""Behavioural tests for every imputation algorithm.

Each algorithm is checked on a correlated low-rank matrix with injected
blocks: it must (a) return finite values, (b) beat the trivial mean
imputation, and family-specific behaviours are verified individually.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imputation import available_imputers, get_imputer
from repro.imputation.evaluation import imputation_rmse
from repro.imputation.matrix.cdrec import centroid_decomposition

ALL_IMPUTERS = sorted(available_imputers())


def _impute_score(name, truth, mask, **params):
    faulty = truth.copy()
    faulty[mask] = np.nan
    completed = get_imputer(name, **params).impute(faulty)
    return imputation_rmse(truth, completed, mask), completed


class TestEveryImputer:
    @pytest.mark.parametrize("name", ALL_IMPUTERS)
    def test_output_finite_and_complete(self, name, correlated_matrix, block_mask):
        _, completed = _impute_score(name, correlated_matrix, block_mask)
        assert np.isfinite(completed).all()

    # tkcm is excluded: pattern matching only helps on series whose history
    # repeats (see its dedicated periodic test) — on generic mixtures a
    # high-similarity anchor can precede a divergent continuation.  That
    # weakness is exactly why imputation-algorithm *selection* matters.
    @pytest.mark.parametrize(
        "name",
        [n for n in ALL_IMPUTERS if n not in ("mean", "tkcm")],
    )
    def test_beats_mean_on_correlated_data(self, name, correlated_matrix, block_mask):
        score, _ = _impute_score(name, correlated_matrix, block_mask)
        mean_score, _ = _impute_score("mean", correlated_matrix, block_mask)
        assert score < mean_score

    @pytest.mark.parametrize("name", ALL_IMPUTERS)
    def test_deterministic(self, name, correlated_matrix, block_mask):
        s1, c1 = _impute_score(name, correlated_matrix, block_mask)
        s2, c2 = _impute_score(name, correlated_matrix, block_mask)
        assert np.allclose(c1, c2)

    @pytest.mark.parametrize("name", ALL_IMPUTERS)
    def test_single_series_does_not_crash(self, name):
        t = np.linspace(0, 6 * np.pi, 120)
        truth = np.sin(t)[None, :]
        mask = np.zeros_like(truth, dtype=bool)
        mask[0, 40:55] = True
        score, completed = _impute_score(name, truth, mask)
        assert np.isfinite(completed).all()


class TestSimpleImputers:
    def test_mean_fills_row_mean(self):
        truth = np.array([[1.0, 2.0, 3.0, 4.0]])
        mask = np.array([[False, True, False, False]])
        _, completed = _impute_score("mean", truth, mask)
        assert completed[0, 1] == pytest.approx((1.0 + 3.0 + 4.0) / 3)

    def test_linear_exact_on_lines(self):
        truth = np.arange(20, dtype=float)[None, :]
        mask = np.zeros_like(truth, dtype=bool)
        mask[0, 5:15] = True
        score, _ = _impute_score("linear", truth, mask)
        assert score == pytest.approx(0.0, abs=1e-12)

    def test_knn_uses_neighbours(self, correlated_matrix, block_mask):
        score_knn, _ = _impute_score("knn", correlated_matrix, block_mask, k=3)
        score_lin, _ = _impute_score("linear", correlated_matrix, block_mask)
        assert score_knn < score_lin  # cross-series info beats interpolation

    def test_knn_invalid_k_raises(self):
        with pytest.raises(ValidationError):
            get_imputer("knn", k=0)


class TestMatrixImputers:
    def test_centroid_decomposition_reconstructs(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(6, 4)) @ rng.normal(size=(4, 30))
        L, R = centroid_decomposition(X)
        assert np.allclose(L @ R.T, X, atol=1e-8)

    def test_centroid_decomposition_truncation(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(8, 40))
        L, R = centroid_decomposition(X, k=3)
        assert L.shape == (8, 3)
        assert R.shape == (40, 3)

    @pytest.mark.parametrize("name", ["cdrec", "svdimp"])
    def test_low_rank_methods_near_exact_on_rank2(self, name, correlated_matrix, block_mask):
        score, _ = _impute_score(name, correlated_matrix, block_mask, rank=2)
        spread = correlated_matrix.std()
        assert score < 0.15 * spread

    def test_softimpute_adapts_rank(self, correlated_matrix, block_mask):
        score, _ = _impute_score("softimpute", correlated_matrix, block_mask, lam=0.05)
        mean_score, _ = _impute_score("mean", correlated_matrix, block_mask)
        assert score < 0.5 * mean_score

    def test_rosl_ignores_outliers(self):
        rng = np.random.default_rng(3)
        t = np.linspace(0, 4 * np.pi, 200)
        truth = np.vstack([np.sin(t) * g for g in rng.uniform(0.8, 1.2, 8)])
        corrupted = truth.copy()
        # Sparse outliers outside the gap.
        corrupted[2, 150] += 30.0
        corrupted[5, 20] -= 25.0
        mask = np.zeros_like(truth, dtype=bool)
        mask[0, 80:110] = True
        faulty = corrupted.copy()
        faulty[mask] = np.nan
        completed = get_imputer("rosl", rank=2).impute(faulty)
        rmse = imputation_rmse(truth, completed, mask)
        assert rmse < 0.2

    def test_svt_invalid_params_ok_fallback(self, correlated_matrix, block_mask):
        # A huge tau collapses SVT to zero rank; it must fall back gracefully.
        score, completed = _impute_score(
            "svt", correlated_matrix, block_mask, tau=1e12
        )
        assert np.isfinite(completed).all()

    def test_grouse_tracks_subspace(self, correlated_matrix, block_mask):
        score, _ = _impute_score("grouse", correlated_matrix, block_mask, rank=2)
        mean_score, _ = _impute_score("mean", correlated_matrix, block_mask)
        assert score < 0.3 * mean_score


class TestFactorizationImputers:
    def test_trmf_handles_long_gap(self):
        t = np.linspace(0, 6 * np.pi, 240)
        rng = np.random.default_rng(1)
        truth = np.vstack([np.sin(t + p) for p in rng.uniform(0, 0.3, 6)])
        mask = np.zeros_like(truth, dtype=bool)
        mask[0, 100:160] = True  # 25% gap
        score, _ = _impute_score("trmf", truth, mask, rank=2)
        assert score < 0.35

    def test_tenmf_nonnegative_domain(self):
        rng = np.random.default_rng(2)
        t = np.linspace(0, 4 * np.pi, 200)
        truth = np.vstack([2 + np.sin(t) * g for g in rng.uniform(0.5, 1.5, 6)])
        mask = np.zeros_like(truth, dtype=bool)
        mask[1, 60:90] = True
        score, _ = _impute_score("tenmf", truth, mask, rank=3)
        lin, _ = _impute_score("mean", truth, mask)
        assert score < lin

    def test_trmf_invalid_lags_raise(self):
        with pytest.raises(ValidationError):
            get_imputer("trmf", lags=(0,))


class TestPatternImputers:
    def test_tkcm_on_periodic_signal(self):
        # Strictly periodic: the historical pattern predicts the gap.
        t = np.arange(300, dtype=float)
        truth = np.sin(2 * np.pi * t / 25.0)[None, :]
        mask = np.zeros_like(truth, dtype=bool)
        mask[0, 200:225] = True  # exactly one period missing
        score, _ = _impute_score("tkcm", truth, mask, k=1)
        lin_score, _ = _impute_score("linear", truth, mask)
        assert score < 0.5 * lin_score

    def test_tkcm_no_anchor_falls_back(self):
        truth = np.sin(np.arange(100.0))[None, :]
        mask = np.zeros_like(truth, dtype=bool)
        mask[0, 0:10] = True  # gap at the very start: no anchor window
        _, completed = _impute_score("tkcm", truth, mask)
        assert np.isfinite(completed).all()

    def test_stmvl_blends_views(self, correlated_matrix, block_mask):
        score, _ = _impute_score("stmvl", correlated_matrix, block_mask)
        mean_score, _ = _impute_score("mean", correlated_matrix, block_mask)
        assert score < mean_score

    def test_iim_learns_per_series_model(self, correlated_matrix, block_mask):
        score, _ = _impute_score("iim", correlated_matrix, block_mask)
        mean_score, _ = _impute_score("mean", correlated_matrix, block_mask)
        assert score < mean_score


class TestNeuralImputer:
    def test_mlp_beats_mean_on_scattered_missing(self):
        # Bidirectional-context models shine on scattered missing points,
        # where each prediction has clean context on both sides.
        t = np.linspace(0, 8 * np.pi, 400)
        truth = np.sin(t)[None, :] ** 3
        mask = np.zeros_like(truth, dtype=bool)
        rng = np.random.default_rng(0)
        mask[0, rng.choice(np.arange(10, 390), size=40, replace=False)] = True
        score, _ = _impute_score("mlp", truth, mask)
        mean_score, _ = _impute_score("mean", truth, mask)
        assert score < mean_score

    def test_mlp_tiny_input_falls_back(self):
        truth = np.arange(12, dtype=float)[None, :]
        mask = np.zeros_like(truth, dtype=bool)
        mask[0, 5:7] = True
        _, completed = _impute_score("mlp", truth, mask, context=4)
        assert np.isfinite(completed).all()
