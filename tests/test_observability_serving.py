"""Unit tests for the serving-side observability layer."""

import json

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.exceptions import NotFittedError
from repro.observability import (
    DriftDetector,
    DriftReport,
    FeatureBaseline,
    HealthSnapshot,
    InferenceMonitor,
    MetricsRegistry,
    RecordingServingObserver,
    RollingWindow,
    use_metrics,
)
from repro.observability.serving import (
    _bucket_proportions,
    ks_statistic,
    psi_statistic,
    vote_disagreement,
    vote_entropy,
)
from repro.pipeline.scoring import ScoreWeights

FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)


@pytest.fixture
def rng():
    """Shadow the session-scoped conftest ``rng``.

    The drift assertions here are statistical; a *shared* generator
    would make them depend on how many draws earlier tests consumed.
    A fresh fixed-seed generator per test keeps them order-independent.
    """
    return np.random.default_rng(20240806)


def _make_corpus(rng, n_per_family=15, length=120):
    """Two contrasting series families with imputer-name labels."""
    series, labels = [], []
    t = np.linspace(0, 4 * np.pi, length)
    for i in range(n_per_family):
        values = np.sin(t * (1 + 0.05 * i)) + 0.05 * rng.normal(size=length)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(n_per_family):
        values = 0.5 * np.cumsum(rng.normal(size=length))
        series.append(TimeSeries(values, name=f"walk{i}"))
        labels.append("mean")
    return series, np.array(labels)


@pytest.fixture(scope="module")
def served_engine():
    """A small fitted engine plus the series it was trained on."""
    rng = np.random.default_rng(7)
    series, labels = _make_corpus(rng)
    engine = ADarts(
        config=FAST_CONFIG, classifier_names=["knn", "decision_tree"]
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, labels)
    return engine, series


def _shifted_series(rng, n, length=120):
    """Series far outside the training families (big offset + variance)."""
    return [
        TimeSeries(200.0 + 50.0 * rng.normal(size=length), name=f"shift{i}")
        for i in range(n)
    ]


class TestRollingWindow:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RollingWindow(0)

    def test_push_len_total(self):
        window = RollingWindow(4)
        for v in (1.0, 2.0, 3.0):
            window.push(v)
        assert len(window) == 3
        assert window.total == 3
        assert np.allclose(window.values(), [1.0, 2.0, 3.0])

    def test_wraparound_keeps_latest_oldest_first(self):
        window = RollingWindow(3)
        window.extend([1, 2, 3, 4, 5])
        assert len(window) == 3
        assert window.total == 5
        assert np.allclose(window.values(), [3.0, 4.0, 5.0])

    def test_nonfinite_dropped(self):
        window = RollingWindow(8)
        window.extend([1.0, np.nan, np.inf, 2.0])
        assert len(window) == 2
        assert window.total == 2

    def test_summary_fields(self):
        window = RollingWindow(100)
        window.extend(np.arange(100, dtype=float))
        summary = window.summary()
        assert summary["count"] == 100
        assert summary["min"] == 0.0
        assert summary["max"] == 99.0
        assert summary["p50"] == pytest.approx(49.5)
        assert summary["p95"] >= summary["p50"]
        assert summary["p99"] >= summary["p95"]

    def test_empty_summary_zeroed(self):
        summary = RollingWindow(4).summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0


class TestFeatureBaseline:
    def test_from_matrix_shapes(self, rng):
        X = rng.normal(size=(200, 5))
        baseline = FeatureBaseline.from_matrix(X)
        assert baseline.n_features == 5
        assert baseline.feature_names == ("f0", "f1", "f2", "f3", "f4")
        assert baseline.n_samples == 200
        assert baseline.edges.shape == (5, baseline.n_bins - 1)
        assert baseline.expected.shape == (5, baseline.n_bins)
        assert np.allclose(baseline.expected.sum(axis=1), 1.0)
        assert baseline.sketch_values.shape == (5, 21)

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            FeatureBaseline.from_matrix(np.arange(10.0))
        with pytest.raises(ValueError):
            FeatureBaseline.from_matrix(np.ones((1, 4)))

    def test_custom_names_and_mismatch_fallback(self, rng):
        X = rng.normal(size=(50, 3))
        named = FeatureBaseline.from_matrix(X, feature_names=["a", "b", "c"])
        assert named.feature_names == ("a", "b", "c")
        fallback = FeatureBaseline.from_matrix(X, feature_names=["a"])
        assert fallback.feature_names == ("f0", "f1", "f2")

    def test_dict_round_trip(self, rng):
        X = rng.normal(size=(80, 4))
        baseline = FeatureBaseline.from_matrix(X, feature_names=list("wxyz"))
        restored = FeatureBaseline.from_dict(
            json.loads(json.dumps(baseline.as_dict()))
        )
        assert restored.feature_names == baseline.feature_names
        assert restored.n_samples == baseline.n_samples
        assert np.allclose(restored.mean, baseline.mean)
        assert np.allclose(restored.edges, baseline.edges)
        assert np.allclose(restored.expected, baseline.expected)
        assert np.allclose(restored.sketch_values, baseline.sketch_values)


class TestDriftStatistics:
    def test_bucket_proportions_sum_to_one(self, rng):
        values = rng.normal(size=500)
        edges = np.percentile(values, [25, 50, 75])
        proportions = _bucket_proportions(values, edges)
        assert proportions.shape == (4,)
        assert proportions.sum() == pytest.approx(1.0)

    def test_psi_identical_near_zero(self):
        p = np.array([0.25, 0.25, 0.25, 0.25])
        assert psi_statistic(p, p) == pytest.approx(0.0)

    def test_psi_shift_is_large_and_finite(self):
        expected = np.array([0.5, 0.5, 0.0, 0.0])
        actual = np.array([0.0, 0.0, 0.5, 0.5])
        value = psi_statistic(expected, actual)
        assert np.isfinite(value)
        assert value > 1.0

    def test_ks_bounds(self, rng):
        a = rng.normal(size=400)
        assert ks_statistic(a, a) == pytest.approx(0.0)
        assert ks_statistic(a, a + 100.0) == pytest.approx(1.0)
        assert ks_statistic(np.zeros(50), np.zeros(50)) == pytest.approx(0.0)

    def test_ks_empty_sample(self):
        assert ks_statistic(np.array([]), np.arange(5.0)) == 0.0


class TestDriftDetector:
    @pytest.fixture
    def baseline(self, rng):
        return FeatureBaseline.from_matrix(
            rng.normal(size=(400, 3)), feature_names=["a", "b", "c"]
        )

    def test_warmup_returns_none(self, baseline, rng):
        detector = DriftDetector(baseline, window_size=64, min_samples=32)
        report = detector.update(rng.normal(size=(10, 3)))
        assert report is None

    def test_healthy_traffic_not_triggered(self, baseline, rng):
        detector = DriftDetector(baseline, window_size=128, min_samples=64)
        report = detector.update(rng.normal(size=(128, 3)))
        assert isinstance(report, DriftReport)
        assert not report.triggered
        assert detector.n_alerts == 0

    def test_shift_triggers_once_then_rearms(self, baseline, rng):
        observer = RecordingServingObserver()
        detector = DriftDetector(baseline, window_size=128, min_samples=64)
        detector.add_observer(observer)
        # Sustained shift: one alert, not one per update.
        for _ in range(5):
            report = detector.update(8.0 + rng.normal(size=(128, 3)))
        assert report.triggered
        assert report.max_psi > detector.psi_threshold
        assert detector.n_alerts == 1
        assert len(observer.of_type("drift_alert")) == 1
        # Recovery flushes the window and re-arms the alert.
        recovered = detector.update(rng.normal(size=(128, 3)))
        assert not recovered.triggered
        detector.update(8.0 + rng.normal(size=(128, 3)))
        assert detector.n_alerts == 2

    def test_report_shape_and_worst_feature(self, baseline, rng):
        detector = DriftDetector(baseline, window_size=128, min_samples=64)
        window = rng.normal(size=(128, 3))
        window[:, 1] += 10.0  # only feature "b" drifts
        report = detector.update(window)
        assert set(report.psi) == {"a", "b", "c"}
        assert report.worst_feature == "b"
        assert report.as_dict()["triggered"] is True

    def test_feature_count_mismatch_rejected(self, baseline, rng):
        detector = DriftDetector(baseline)
        with pytest.raises(ValueError):
            detector.update(rng.normal(size=(4, 5)))


class TestVoteDisagreement:
    def test_uniform_entropy(self):
        entropy = vote_entropy(np.full((2, 4), 0.25))
        assert np.allclose(entropy, np.log(4))

    def test_identical_members_zero(self):
        member = np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])
        stacked = np.stack([member, member, member])
        assert np.allclose(vote_disagreement(stacked), 0.0)

    def test_disagreeing_members_positive(self):
        confident_a = np.array([[0.98, 0.01, 0.01]])
        confident_b = np.array([[0.01, 0.98, 0.01]])
        value = vote_disagreement(np.stack([confident_a, confident_b]))
        assert value.shape == (1,)
        assert value[0] > 0.3

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            vote_disagreement(np.ones((2, 3)))


class TestInferenceMonitor:
    def test_unfitted_engine_rejected(self):
        with pytest.raises(NotFittedError):
            InferenceMonitor(ADarts())

    def test_recommend_matches_engine(self, served_engine):
        engine, series = served_engine
        monitor = InferenceMonitor(engine)
        direct = engine.recommend(series[0])
        monitored = monitor.recommend(series[0])
        assert monitored.algorithm == direct.algorithm
        assert monitored.ranking == direct.ranking

    def test_windows_and_mix_accumulate(self, served_engine):
        engine, series = served_engine
        monitor = InferenceMonitor(engine, window=64)
        monitor.recommend_many(series[:10])
        monitor.recommend(series[0])
        assert monitor.n_requests == 2
        assert monitor.n_series == 11
        assert len(monitor.latency) == 2
        assert len(monitor.series_latency) == 11
        assert len(monitor.confidence) == 11
        assert len(monitor.disagreement) == 11
        assert sum(monitor.recommendation_mix.values()) == 11
        fractions = monitor.mix_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        confidence = monitor.confidence.values()
        assert np.all(confidence > 0.0) and np.all(confidence <= 1.0)

    def test_drift_detector_autobuilt(self, served_engine):
        engine, _ = served_engine
        monitor = InferenceMonitor(engine, drift_min_samples=8)
        assert monitor.drift_detector is not None
        assert monitor.drift_detector.baseline is engine.feature_baseline_

    def test_observer_receives_requests(self, served_engine):
        engine, series = served_engine
        observer = RecordingServingObserver()
        monitor = InferenceMonitor(engine, observer=observer)
        monitor.recommend_many(series[:3])
        requests = observer.of_type("request")
        assert len(requests) == 1
        assert requests[0]["n_series"] == 3
        assert len(requests[0]["recommendations"]) == 3

    def test_metrics_recorded_when_installed(self, served_engine):
        engine, series = served_engine
        registry = MetricsRegistry()
        with use_metrics(registry):
            InferenceMonitor(engine).recommend_many(series[:4])
        text = registry.to_prometheus()
        assert "repro_serving_requests_total 1" in text
        assert "repro_serving_series_total 4" in text
        assert "repro_serving_recommendations_total" in text


class TestHealthSnapshot:
    @pytest.fixture
    def snapshot(self, served_engine):
        engine, series = served_engine
        monitor = InferenceMonitor(engine, drift_min_samples=8)
        for item in series[:12]:
            monitor.recommend(item)
        return monitor.snapshot()

    def test_document_keys(self, snapshot):
        document = snapshot.as_dict()
        for key in (
            "generated_at", "uptime_s", "n_requests", "n_series",
            "latency", "series_latency", "confidence", "disagreement",
            "recommendation_mix", "drift", "caches", "backends", "alerts",
        ):
            assert key in document
        assert document["n_requests"] == 12
        for stat in ("p50", "p95", "p99", "mean"):
            assert stat in document["latency"]
        assert document["drift"]["enabled"] is True
        assert document["drift"]["report"] is not None

    def test_json_round_trip(self, snapshot):
        document = json.loads(snapshot.to_json())
        assert document["n_series"] == 12
        mix = document["recommendation_mix"]
        assert sum(mix["counts"].values()) == 12

    def test_prometheus_rendering(self, snapshot):
        text = snapshot.to_prometheus()
        assert "repro_serving_requests_total 12" in text
        assert 'repro_serving_latency_seconds{stat="p95"}' in text
        assert "repro_drift_psi_max" in text
        assert "repro_serving_recommendations_total" in text

    def test_export_by_extension(self, snapshot, tmp_path):
        json_path = snapshot.export(tmp_path / "health.json")
        prom_path = snapshot.export(tmp_path / "health.prom")
        assert json.loads(json_path.read_text())["n_requests"] == 12
        assert "# TYPE" in prom_path.read_text()

    def test_collect_with_explicit_caches(self, served_engine):
        from repro.parallel import FeatureCache, ScoreMemo

        engine, series = served_engine
        cache, memo = FeatureCache(), ScoreMemo()
        cache.put("k", np.ones(3))
        cache.get("k")
        monitor = InferenceMonitor(engine)
        monitor.recommend(series[0])
        snapshot = HealthSnapshot.collect(
            monitor, feature_cache=cache, score_memo=memo
        )
        assert snapshot.caches["feature_cache"]["hits"] == 1
        assert snapshot.caches["score_memo"]["entries"] == 0
