"""Unit and integration tests for the ADarts facade."""

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig
from repro.clustering.labeling import ClusterLabeler, LabeledCorpus
from repro.exceptions import NotFittedError, ValidationError


FAST = dict(
    config=ModelRaceConfig(n_partial_sets=2, n_folds=2, max_elite=3, random_state=0),
    classifier_names=["knn", "decision_tree", "gaussian_nb"],
)


class TestConstruction:
    def test_invalid_voting_raises(self):
        with pytest.raises(ValidationError):
            ADarts(voting="plurality")

    def test_not_fitted_guards(self, sine_series):
        engine = ADarts(**FAST)
        assert not engine.is_fitted
        with pytest.raises(NotFittedError):
            engine.recommend(sine_series)
        with pytest.raises(NotFittedError):
            engine.winning_pipelines
        with pytest.raises(NotFittedError):
            engine.race_result

    def test_labeled_corpus_initialized_to_none(self):
        """Regression: ``_labeled_corpus`` used to be set only inside
        ``fit_datasets``, so attribute access after ``__init__`` (or after
        ``fit_features``/``fit_labeled``, which skip the labeling stage)
        raised ``AttributeError`` instead of returning ``None``."""
        engine = ADarts(**FAST)
        assert engine._labeled_corpus is None

    def test_labeled_corpus_still_none_after_fit_features(
        self, labeled_features
    ):
        X, y = labeled_features
        engine = ADarts(**FAST).fit_features(X, y)
        assert engine._labeled_corpus is None  # no labeling stage ran


class TestFitFeatures:
    def test_fit_and_predict(self, labeled_features):
        X, y = labeled_features
        engine = ADarts(**FAST).fit_features(X, y)
        assert engine.is_fitted
        preds = engine.predict(X)
        assert (preds == y).mean() > 0.8

    def test_winning_pipelines_nonempty(self, labeled_features):
        X, y = labeled_features
        engine = ADarts(**FAST).fit_features(X, y)
        assert 1 <= len(engine.winning_pipelines) <= 3

    def test_rankings_cover_classes(self, labeled_features):
        X, y = labeled_features
        engine = ADarts(**FAST).fit_features(X, y)
        rankings = engine.predict_rankings(X[:4])
        for ranking in rankings:
            assert set(map(str, ranking)) == set(np.unique(y).tolist())

    def test_race_result_exposed(self, labeled_features):
        X, y = labeled_features
        engine = ADarts(**FAST).fit_features(X, y)
        assert engine.race_result.n_evaluations > 0

    def test_majority_voting_variant(self, labeled_features):
        X, y = labeled_features
        engine = ADarts(voting="majority", **FAST).fit_features(X, y)
        assert (engine.predict(X) == y).mean() > 0.7


class TestFitLabeledAndRecommend:
    @pytest.fixture(scope="class")
    def trained(self, small_climate_dataset, small_motion_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear", "knn", "svdimp", "mean"),
            random_state=0,
        )
        engine = ADarts(labeler=labeler, **FAST)
        engine.fit_datasets([small_climate_dataset, small_motion_dataset])
        return engine

    def test_recommendation_structure(self, trained, faulty_series):
        rec = trained.recommend(faulty_series)
        assert rec.algorithm in ("linear", "knn", "svdimp", "mean")
        assert rec.ranking[0] == rec.algorithm
        assert set(rec.probabilities) == set(rec.ranking)
        total = sum(rec.probabilities.values())
        assert total == pytest.approx(1.0)

    def test_probabilities_sorted_with_ranking(self, trained, faulty_series):
        rec = trained.recommend(faulty_series)
        probs = [rec.probabilities[name] for name in rec.ranking]
        assert probs == sorted(probs, reverse=True)

    def test_recommend_many(self, trained, faulty_series, sine_series):
        recs = trained.recommend_many([faulty_series, sine_series])
        assert len(recs) == 2

    def test_repair_fills_gaps(self, trained, faulty_series):
        repaired = trained.repair(faulty_series)
        assert not repaired.has_missing
        assert len(repaired) == len(faulty_series)

    def test_repair_many_matches_per_series_path(
        self, trained, faulty_series, sine_series
    ):
        batch = [faulty_series, sine_series, faulty_series]
        recs = trained.recommend_many(batch)
        repaired = trained.repair_many(batch, recs)
        assert len(repaired) == len(batch)
        # Complete series pass through untouched (same object).
        assert repaired[1] is sine_series
        for series, rec, out in zip(batch, recs, repaired):
            assert not out.has_missing
            expected = rec.impute(series) if series.has_missing else series
            np.testing.assert_allclose(
                out.values, expected.values, rtol=1e-9, atol=1e-9
            )

    def test_repair_many_recommends_when_not_given(self, trained, faulty_series):
        out = trained.repair_many([faulty_series])
        assert len(out) == 1
        assert not out[0].has_missing

    def test_repair_many_length_mismatch(self, trained, faulty_series):
        recs = trained.recommend_many([faulty_series])
        with pytest.raises(ValidationError):
            trained.repair_many([faulty_series, faulty_series], recs)

    def test_recommendation_impute_method(self, trained, faulty_series):
        rec = trained.recommend(faulty_series)
        out = rec.impute(faulty_series)
        assert not out.has_missing

    def test_labeled_corpus_retained_after_fit_datasets(self, trained):
        assert trained._labeled_corpus is not None
        assert len(trained._labeled_corpus) > 0


class TestFitLabeledCorpusDirect:
    def test_fit_labeled(self, small_climate_dataset):
        labeler = ClusterLabeler(
            imputer_names=("linear", "mean"), random_state=0
        )
        corpus = labeler.label_dataset(small_climate_dataset)
        engine = ADarts(**FAST).fit_labeled(corpus)
        assert engine.is_fitted
