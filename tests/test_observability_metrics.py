"""Unit tests for repro.observability.metrics."""

import json
import threading

import numpy as np
import pytest

from repro.observability import (
    MetricsRegistry,
    NULL_METRICS,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.observability.metrics import (
    NULL_INSTRUMENT,
    sanitize_metric_name,
)


@pytest.fixture(autouse=True)
def _reset_default_metrics():
    yield
    set_metrics(None)


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total")
        b = registry.counter("repro_x_total")
        assert a is b

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("repro_x_total").inc(-1)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(ValueError):
            registry.gauge("repro_x")

    def test_labels_partition_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", labels={"algo": "knn"}).inc()
        registry.counter("repro_runs_total", labels={"algo": "cdrec"}).inc(4)
        text = registry.to_prometheus()
        assert 'repro_runs_total{algo="knn"} 1.0' in text
        assert 'repro_runs_total{algo="cdrec"} 4.0' in text


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_active")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_percentiles_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds")
        for v in np.linspace(0.0, 1.0, 101):  # 0.00, 0.01, ..., 1.00
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 101
        assert summary["p50"] == pytest.approx(0.5, abs=1e-9)
        assert summary["p95"] == pytest.approx(0.95, abs=1e-9)
        assert summary["p99"] == pytest.approx(0.99, abs=1e-9)
        assert summary["min"] == 0.0
        assert summary["max"] == 1.0
        assert summary["mean"] == pytest.approx(0.5)
        assert summary["sum"] == pytest.approx(50.5)

    def test_empty_summary_is_zeroed(self):
        registry = MetricsRegistry()
        summary = registry.histogram("repro_empty").summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_nonfinite_observations_dropped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h")
        hist.observe(float("nan"))
        hist.observe(float("inf"))
        hist.observe(1.0)
        assert hist.count == 1

    def test_buffer_growth(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_big")
        for i in range(1000):  # crosses several buffer doublings
            hist.observe(float(i))
        assert hist.count == 1000
        assert hist.summary()["max"] == 999.0

    def test_time_context_manager(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_timed_seconds")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.values()[0] >= 0.0

    def test_thread_safe_observe(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_mt")
        counter = registry.counter("repro_mt_total")

        def worker():
            for i in range(500):
                hist.observe(float(i))
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 8 * 500
        assert counter.value == 8 * 500


class TestExport:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_evals_total", "Evaluations").inc(42)
        registry.gauge("repro_ratio", "A ratio").set(0.85)
        hist = registry.histogram("repro_lat_seconds", "Latency")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        return registry

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        assert "# HELP repro_evals_total Evaluations" in text
        assert "# TYPE repro_evals_total counter" in text
        assert "repro_evals_total 42.0" in text
        assert "# TYPE repro_lat_seconds summary" in text
        assert 'repro_lat_seconds{quantile="0.5"} 0.2' in text
        assert "repro_lat_seconds_count 3" in text
        assert "repro_lat_seconds_sum" in text
        assert text.endswith("\n")

    def test_json_round_trip(self):
        document = json.loads(self._populated().to_json())
        assert document["repro_evals_total"]["_"]["value"] == 42
        assert document["repro_lat_seconds"]["_"]["count"] == 3

    def test_export_by_extension(self, tmp_path):
        registry = self._populated()
        prom = registry.export(tmp_path / "metrics.prom")
        assert "# TYPE" in prom.read_text()
        js = registry.export(tmp_path / "metrics.json")
        json.loads(js.read_text())

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("a b-c.d") == "a_b_c_d"
        assert sanitize_metric_name("9lives")[0] == "_"


class TestNullRegistry:
    def test_default_is_null(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().enabled

    def test_null_instruments_are_shared_noops(self):
        c = NULL_METRICS.counter("x")
        h = NULL_METRICS.histogram("y")
        assert c is h is NULL_INSTRUMENT
        c.inc()
        h.observe(1.0)
        with h.time():
            pass
        assert NULL_METRICS.as_dict() == {}

    def test_use_metrics_scopes_installation(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert get_metrics() is registry
            get_metrics().counter("repro_in_scope_total").inc()
        assert get_metrics() is NULL_METRICS
        assert registry.counter("repro_in_scope_total").value == 1


class TestLabelCardinalityCap:
    def test_cap_folds_into_overflow_instrument(self, caplog):
        registry = MetricsRegistry(max_label_sets=3)
        for i in range(3):
            registry.counter("repro_req_total", labels={"id": str(i)}).inc()
        with caplog.at_level("WARNING", logger="repro"):
            over_a = registry.counter(
                "repro_req_total", labels={"id": "overflow-a"}
            )
            over_b = registry.counter(
                "repro_req_total", labels={"id": "overflow-b"}
            )
        # Both excess combinations share one instrument.
        assert over_a is over_b
        over_a.inc(2)
        assert registry.overflowed_metrics() == {"repro_req_total"}
        text = registry.to_prometheus()
        assert 'repro_req_total{overflow="true"} 2' in text
        # Warned exactly once despite two overflowing label sets.
        warnings = [
            record for record in caplog.records
            if "exceeded 3 label sets" in record.getMessage()
        ]
        assert len(warnings) == 1

    def test_existing_label_sets_unaffected_by_cap(self):
        registry = MetricsRegistry(max_label_sets=2)
        a = registry.counter("repro_x_total", labels={"k": "a"})
        b = registry.counter("repro_x_total", labels={"k": "b"})
        registry.counter("repro_x_total", labels={"k": "c"}).inc()  # folded
        # Pre-cap instruments keep their identity on re-request.
        assert registry.counter("repro_x_total", labels={"k": "a"}) is a
        assert registry.counter("repro_x_total", labels={"k": "b"}) is b

    def test_unlabeled_metrics_never_fold(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.counter("repro_a_total", labels={"k": "a"})
        registry.counter("repro_plain_total").inc()
        assert registry.overflowed_metrics() == set()

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_label_sets=0)

    def test_clear_resets_overflow_state(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.counter("repro_y_total", labels={"k": "a"})
        registry.counter("repro_y_total", labels={"k": "b"})
        assert registry.overflowed_metrics()
        registry.clear()
        assert registry.overflowed_metrics() == set()
        # Cap counting starts over after clear.
        registry.counter("repro_y_total", labels={"k": "c"})
        assert registry.overflowed_metrics() == set()


class TestNativeHistograms:
    def _registry_with_observations(self, **kwargs):
        registry = MetricsRegistry(**kwargs)
        hist = registry.histogram(
            "repro_latency_seconds", "latency", labels={"op": "map"}
        )
        for value in (0.002, 0.004, 0.02, 0.2, 2.0):
            hist.observe(value)
        return registry

    def test_bucket_counts_cumulative_and_end_with_inf(self):
        registry = self._registry_with_observations()
        hist = registry.histogram(
            "repro_latency_seconds", labels={"op": "map"}
        )
        pairs = hist.bucket_counts(buckets=(0.001, 0.01, 0.1, 1.0))
        assert pairs == [
            (0.001, 0),
            (0.01, 2),
            (0.1, 3),
            (1.0, 4),
            (float("inf"), 5),
        ]
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)

    def test_summary_exposition_is_default(self):
        text = self._registry_with_observations().to_prometheus()
        assert "# TYPE repro_latency_seconds summary" in text
        assert 'quantile="0.5"' in text
        assert "_bucket" not in text

    def test_native_exposition_via_flag(self):
        text = self._registry_with_observations(
            native_histograms=True
        ).to_prometheus()
        assert "# TYPE repro_latency_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_latency_seconds_bucket{" in text
        assert "repro_latency_seconds_sum" in text
        assert "repro_latency_seconds_count" in text
        assert "quantile=" not in text

    def test_per_render_override_beats_registry_flag(self):
        registry = self._registry_with_observations(native_histograms=True)
        summary_text = registry.to_prometheus(native_histograms=False)
        assert "# TYPE repro_latency_seconds summary" in summary_text
        native_text = registry.to_prometheus(native_histograms=True)
        assert "# TYPE repro_latency_seconds histogram" in native_text

    def test_native_buckets_preserve_original_labels(self):
        text = self._registry_with_observations(
            native_histograms=True
        ).to_prometheus()
        inf_lines = [
            line for line in text.splitlines() if 'le="+Inf"' in line
        ]
        assert inf_lines and all('op="map"' in line for line in inf_lines)
        assert inf_lines[-1].endswith(" 5")
