"""Unit tests for the FeatureExtractor facade."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import FeatureExtractor, extract_features_matrix


class TestFeatureExtractor:
    def test_default_includes_both_families(self):
        fe = FeatureExtractor()
        names = fe.feature_names
        assert any(n.startswith("canon_") for n in names)
        assert any(n.startswith("topo_") for n in names)
        assert fe.n_features == len(names) == 56

    def test_statistical_only(self):
        fe = FeatureExtractor(use_topological=False)
        assert fe.n_features == 40
        assert all(not n.startswith("topo_") for n in fe.feature_names)

    def test_topological_only(self):
        fe = FeatureExtractor(use_statistical=False)
        assert fe.n_features == 16
        assert all(n.startswith("topo_") for n in fe.feature_names)

    def test_neither_family_raises(self):
        with pytest.raises(ValidationError):
            FeatureExtractor(use_statistical=False, use_topological=False)

    def test_extract_vector_order_stable(self, sine_series):
        fe = FeatureExtractor()
        v1 = fe.extract(sine_series)
        v2 = fe.extract(sine_series)
        assert np.array_equal(v1, v2)
        assert v1.shape == (fe.n_features,)

    def test_extract_handles_missing(self, faulty_series):
        v = FeatureExtractor().extract(faulty_series)
        assert np.isfinite(v).all()

    def test_extract_many_shape(self, tiny_dataset):
        fe = FeatureExtractor()
        M = fe.extract_many(list(tiny_dataset))
        assert M.shape == (5, fe.n_features)

    def test_extract_many_empty_raises(self):
        with pytest.raises(ValidationError):
            FeatureExtractor().extract_many([])

    def test_accepts_raw_arrays(self):
        v = FeatureExtractor().extract(np.sin(np.linspace(0, 6.28, 100)))
        assert np.isfinite(v).all()

    def test_convenience_wrapper(self, tiny_dataset):
        M = extract_features_matrix(list(tiny_dataset))
        assert M.shape[0] == 5

    def test_different_series_different_features(self):
        fe = FeatureExtractor()
        a = fe.extract(np.sin(np.linspace(0, 12.56, 128)))
        b = fe.extract(np.random.default_rng(0).normal(size=128))
        assert not np.allclose(a, b)

    def test_embedding_params_affect_topo_features(self, sine_series):
        a = FeatureExtractor(embedding_dimension=2, embedding_delay=1).extract(
            sine_series
        )
        b = FeatureExtractor(embedding_dimension=4, embedding_delay=4).extract(
            sine_series
        )
        assert not np.allclose(a, b)
