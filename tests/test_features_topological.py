"""Unit tests for the topological (persistence) feature extractor."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features import (
    TOPOLOGICAL_FEATURE_NAMES,
    delay_embedding,
    persistence_diagram,
    topological_features,
)


@pytest.fixture
def sine():
    return np.sin(np.linspace(0, 8 * np.pi, 256))


class TestDelayEmbedding:
    def test_shape(self, sine):
        cloud = delay_embedding(sine, dimension=3, delay=2)
        assert cloud.shape == (256 - 4, 3)

    def test_content(self):
        x = np.arange(10, dtype=float)
        cloud = delay_embedding(x, dimension=2, delay=3)
        assert cloud[0].tolist() == [0.0, 3.0]
        assert cloud[-1].tolist() == [6.0, 9.0]

    def test_too_short_raises(self):
        with pytest.raises(ValidationError):
            delay_embedding(np.arange(4, dtype=float), dimension=3, delay=2)

    def test_invalid_params_raise(self, sine):
        with pytest.raises(ValidationError):
            delay_embedding(sine, dimension=0)
        with pytest.raises(ValidationError):
            delay_embedding(sine, delay=0)


class TestSublevelPersistence:
    def test_single_minimum_no_pairs(self):
        # A V-shape has one minimum: only the essential component (excluded).
        x = np.abs(np.linspace(-1, 1, 51))
        diagram = persistence_diagram(x, kind="sublevel")
        assert diagram.shape[0] == 0

    def test_two_minima_one_pair(self):
        # W-shape: two valleys; the shallower dies when they merge.
        t = np.linspace(0, 2 * np.pi, 101)
        x = np.cos(2 * t) + 0.3 * np.cos(t)
        diagram = persistence_diagram(x, kind="sublevel")
        assert diagram.shape[0] == 1
        birth, death = diagram[0]
        assert death > birth

    def test_n_periods_give_n_minus_1_pairs(self):
        # k full periods of a cosine have k interior minima (the endpoints
        # are maxima, so no boundary minimum) -> k-1 finite pairs.
        x = np.cos(np.linspace(0, 6 * 2 * np.pi, 600))
        diagram = persistence_diagram(x, kind="sublevel")
        assert diagram.shape[0] == 5

    def test_births_below_deaths(self, sine):
        diagram = persistence_diagram(sine, kind="sublevel")
        assert (diagram[:, 1] >= diagram[:, 0]).all()

    def test_order_sensitivity(self):
        # Permuting values changes the sublevel diagram — the property that
        # makes topological features complement time-agnostic statistics.
        rng = np.random.default_rng(0)
        x = np.sin(np.linspace(0, 8 * np.pi, 128))
        shuffled = rng.permutation(x)
        d1 = persistence_diagram(x, kind="sublevel")
        d2 = persistence_diagram(shuffled, kind="sublevel")
        assert d1.shape != d2.shape or not np.allclose(d1, d2)


class TestRipsPersistence:
    def test_births_are_zero(self, sine):
        diagram = persistence_diagram(sine, kind="rips")
        assert (diagram[:, 0] == 0).all()
        assert (diagram[:, 1] >= 0).all()

    def test_pair_count_is_points_minus_one(self):
        x = np.sin(np.linspace(0, 4 * np.pi, 60))
        diagram = persistence_diagram(x, kind="rips", dimension=2, delay=1)
        n_points = 60 - 1
        assert diagram.shape[0] == n_points - 1

    def test_subsampling_cap(self, sine):
        diagram = persistence_diagram(sine, kind="rips", max_points=32)
        assert diagram.shape[0] == 31

    def test_unknown_kind_raises(self, sine):
        with pytest.raises(ValidationError):
            persistence_diagram(sine, kind="nope")


class TestTopologicalFeatures:
    def test_names_and_count(self, sine):
        feats = topological_features(sine)
        assert tuple(feats.keys()) == TOPOLOGICAL_FEATURE_NAMES
        assert len(feats) == 16

    def test_finiteness_on_degenerate_input(self):
        feats = topological_features(np.full(8, 2.0))
        assert all(np.isfinite(v) for v in feats.values())

    def test_periodic_vs_noise_differ(self, sine):
        noise = np.random.default_rng(0).normal(size=256)
        f_sine = topological_features(sine)
        f_noise = topological_features(noise)
        assert f_sine["topo_sub_count"] < f_noise["topo_sub_count"]

    def test_scale_invariance(self, sine):
        # Features are computed on the z-normalized series.
        f1 = topological_features(sine)
        f2 = topological_features(100.0 + 50.0 * sine)
        for key in f1:
            assert f1[key] == pytest.approx(f2[key], abs=1e-9)
