"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, read_series_csv, write_series_csv
from repro.exceptions import ValidationError
from repro.imputation import available_imputers
from repro.timeseries import TimeSeries


class TestCsvIO:
    def test_round_trip(self, tmp_path):
        series = [
            TimeSeries([1.0, np.nan, 3.0], name="a"),
            TimeSeries([4.0, 5.0, np.nan], name="b"),
        ]
        path = tmp_path / "data.csv"
        write_series_csv(path, series)
        loaded = read_series_csv(path)
        assert len(loaded) == 2
        assert loaded[0].n_missing == 1
        assert loaded[0].values[0] == 1.0
        assert np.isnan(loaded[1].values[2])

    def test_nan_token_accepted(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,nan,3.0\n")
        loaded = read_series_csv(path)
        assert np.isnan(loaded[0].values[1])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,2.0\n\n3.0,4.0\n")
        assert len(read_series_csv(path)) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            read_series_csv(tmp_path / "nope.csv")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("\n")
        with pytest.raises(ValidationError):
            read_series_csv(path)


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["train", "--out", "x.json"],
            ["recommend", "--engine", "e.json", "--data", "d.csv"],
            ["repair", "--engine", "e.json", "--data", "d.csv", "--out", "o.csv"],
            ["list-imputers"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_imputers(self, capsys):
        assert main(["list-imputers"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == available_imputers()

    def test_recommend_with_bad_engine_path_errors(self, tmp_path, capsys):
        code = main(
            [
                "recommend",
                "--engine", str(tmp_path / "missing.json"),
                "--data", str(tmp_path / "missing.csv"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.slow
    def test_full_train_recommend_repair_cycle(self, tmp_path, capsys):
        engine_path = tmp_path / "engine.json"
        code = main(
            [
                "train",
                "--categories", "Climate",
                "--out", str(engine_path),
                "--series-per-dataset", "8",
                "--datasets-per-category", "1",
                "--partial-sets", "2",
            ]
        )
        assert code == 0
        assert engine_path.exists()

        data_path = tmp_path / "faulty.csv"
        t = np.arange(120, dtype=float)
        values = 10 + 5 * np.sin(2 * np.pi * t / 30.0)
        values[40:55] = np.nan
        write_series_csv(data_path, [TimeSeries(values)])

        code = main(
            ["recommend", "--engine", str(engine_path), "--data", str(data_path)]
        )
        assert code == 0
        line = capsys.readouterr().out.strip()
        assert "\t" in line  # name \t algorithm \t ranking

        out_path = tmp_path / "repaired.csv"
        code = main(
            [
                "repair",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--out", str(out_path),
            ]
        )
        assert code == 0
        repaired = read_series_csv(out_path)
        assert not repaired[0].has_missing

    def test_train_unknown_category_errors(self, tmp_path, capsys):
        code = main(
            ["train", "--categories", "Bogus", "--out", str(tmp_path / "e.json")]
        )
        assert code == 2


class TestServingParser:
    def test_monitor_and_profile_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["monitor", "--engine", "e.json", "--data", "d.csv"]
        )
        assert callable(args.func)
        assert args.format == "json"
        assert args.drift_window == 256
        assert args.psi_threshold == 0.25
        args = parser.parse_args(
            [
                "profile", "--engine", "e.json", "--data", "d.csv",
                "--out", "p.txt",
            ]
        )
        assert callable(args.func)
        assert args.mode == "thread"
        assert args.interval == 5.0

    def test_profile_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--engine", "e.json", "--data", "d.csv"]
            )

    def test_monitor_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "monitor", "--engine", "e.json", "--data", "d.csv",
                    "--format", "xml",
                ]
            )


@pytest.fixture(scope="module")
def serving_artifacts(tmp_path_factory):
    """A small trained engine JSON plus a faulty-series CSV."""
    from repro import ADarts, ModelRaceConfig
    from repro.core import save_engine
    from repro.pipeline.scoring import ScoreWeights

    rng = np.random.default_rng(11)
    t = np.linspace(0, 4 * np.pi, 96)
    series, labels = [], []
    for i in range(8):
        series.append(
            TimeSeries(
                np.sin(t * (1 + 0.1 * i)) + 0.05 * rng.normal(size=96),
                name=f"sine{i}",
            )
        )
        labels.append("linear")
    for i in range(8):
        series.append(
            TimeSeries(0.5 * np.cumsum(rng.normal(size=96)), name=f"walk{i}")
        )
        labels.append("mean")
    engine = ADarts(
        config=ModelRaceConfig(
            n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
            weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
        ),
        classifier_names=["knn", "decision_tree"],
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, np.array(labels))

    root = tmp_path_factory.mktemp("serving")
    engine_path = root / "engine.json"
    save_engine(engine, engine_path)
    data_path = root / "data.csv"
    write_series_csv(data_path, series)
    return engine_path, data_path


class TestServingCommands:
    def test_monitor_json_document(self, serving_artifacts, tmp_path, capsys):
        import json

        engine_path, data_path = serving_artifacts
        out_path = tmp_path / "health.json"
        prom_path = tmp_path / "health.prom"
        code = main(
            [
                "monitor",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--repeat", "2",
                "--drift-min-samples", "16",
                "--out", str(out_path),
                "--prom-out", str(prom_path),
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["n_series"] == 32
        assert document["latency"]["count"] > 0
        assert document["drift"]["enabled"] is True
        assert json.loads(out_path.read_text())["n_series"] == 32
        assert "repro_serving_requests_total" in prom_path.read_text()

    def test_monitor_prometheus_stdout(self, serving_artifacts, capsys):
        engine_path, data_path = serving_artifacts
        code = main(
            [
                "monitor",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--format", "prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serving_requests_total counter" in out
        assert "repro_serving_latency_seconds" in out

    def test_monitor_bad_engine_errors(self, tmp_path, capsys):
        code = main(
            [
                "monitor",
                "--engine", str(tmp_path / "missing.json"),
                "--data", str(tmp_path / "missing.csv"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_writes_collapsed_stacks(
        self, serving_artifacts, tmp_path, capsys
    ):
        from repro.observability import parse_collapsed

        engine_path, data_path = serving_artifacts
        out_path = tmp_path / "profile.collapsed"
        code = main(
            [
                "profile",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--out", str(out_path),
                "--repeat", "3",
                "--interval", "2.0",
            ]
        )
        assert code == 0
        counts = parse_collapsed(out_path.read_text())
        assert counts, "profiler collected no samples"
        assert any("repro" in stack for stack in counts)
        assert "samples" in capsys.readouterr().out
