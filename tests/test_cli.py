"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main, read_series_csv, write_series_csv
from repro.exceptions import ValidationError
from repro.imputation import available_imputers
from repro.timeseries import TimeSeries


class TestCsvIO:
    def test_round_trip(self, tmp_path):
        series = [
            TimeSeries([1.0, np.nan, 3.0], name="a"),
            TimeSeries([4.0, 5.0, np.nan], name="b"),
        ]
        path = tmp_path / "data.csv"
        write_series_csv(path, series)
        loaded = read_series_csv(path)
        assert len(loaded) == 2
        assert loaded[0].n_missing == 1
        assert loaded[0].values[0] == 1.0
        assert np.isnan(loaded[1].values[2])

    def test_nan_token_accepted(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,nan,3.0\n")
        loaded = read_series_csv(path)
        assert np.isnan(loaded[0].values[1])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1.0,2.0\n\n3.0,4.0\n")
        assert len(read_series_csv(path)) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            read_series_csv(tmp_path / "nope.csv")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("\n")
        with pytest.raises(ValidationError):
            read_series_csv(path)

    def test_malformed_value_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\n3.0,oops,5.0\n")
        with pytest.raises(ValidationError, match="line 2"):
            read_series_csv(path)


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["train", "--out", "x.json"],
            ["recommend", "--engine", "e.json", "--data", "d.csv"],
            ["repair", "--engine", "e.json", "--data", "d.csv", "--out", "o.csv"],
            ["list-imputers"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_imputers(self, capsys):
        assert main(["list-imputers"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == available_imputers()

    def test_recommend_with_bad_engine_path_errors(self, tmp_path, capsys):
        code = main(
            [
                "recommend",
                "--engine", str(tmp_path / "missing.json"),
                "--data", str(tmp_path / "missing.csv"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.slow
    def test_full_train_recommend_repair_cycle(self, tmp_path, capsys):
        engine_path = tmp_path / "engine.json"
        code = main(
            [
                "train",
                "--categories", "Climate",
                "--out", str(engine_path),
                "--series-per-dataset", "8",
                "--datasets-per-category", "1",
                "--partial-sets", "2",
            ]
        )
        assert code == 0
        assert engine_path.exists()

        data_path = tmp_path / "faulty.csv"
        t = np.arange(120, dtype=float)
        values = 10 + 5 * np.sin(2 * np.pi * t / 30.0)
        values[40:55] = np.nan
        write_series_csv(data_path, [TimeSeries(values)])

        code = main(
            ["recommend", "--engine", str(engine_path), "--data", str(data_path)]
        )
        assert code == 0
        line = capsys.readouterr().out.strip()
        assert "\t" in line  # name \t algorithm \t ranking

        out_path = tmp_path / "repaired.csv"
        code = main(
            [
                "repair",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--out", str(out_path),
            ]
        )
        assert code == 0
        repaired = read_series_csv(out_path)
        assert not repaired[0].has_missing

    def test_train_unknown_category_errors(self, tmp_path, capsys):
        code = main(
            ["train", "--categories", "Bogus", "--out", str(tmp_path / "e.json")]
        )
        assert code == 2


class TestServingParser:
    def test_monitor_and_profile_registered(self):
        parser = build_parser()
        args = parser.parse_args(
            ["monitor", "--engine", "e.json", "--data", "d.csv"]
        )
        assert callable(args.func)
        assert args.format == "json"
        assert args.drift_window == 256
        assert args.psi_threshold == 0.25
        args = parser.parse_args(
            [
                "profile", "--engine", "e.json", "--data", "d.csv",
                "--out", "p.txt",
            ]
        )
        assert callable(args.func)
        assert args.mode == "thread"
        assert args.interval == 5.0

    def test_profile_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--engine", "e.json", "--data", "d.csv"]
            )

    def test_monitor_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "monitor", "--engine", "e.json", "--data", "d.csv",
                    "--format", "xml",
                ]
            )


@pytest.fixture(scope="module")
def serving_artifacts(tmp_path_factory):
    """A small trained engine JSON plus a faulty-series CSV."""
    from repro import ADarts, ModelRaceConfig
    from repro.core import save_engine
    from repro.pipeline.scoring import ScoreWeights

    rng = np.random.default_rng(11)
    t = np.linspace(0, 4 * np.pi, 96)
    series, labels = [], []
    for i in range(8):
        series.append(
            TimeSeries(
                np.sin(t * (1 + 0.1 * i)) + 0.05 * rng.normal(size=96),
                name=f"sine{i}",
            )
        )
        labels.append("linear")
    for i in range(8):
        series.append(
            TimeSeries(0.5 * np.cumsum(rng.normal(size=96)), name=f"walk{i}")
        )
        labels.append("mean")
    engine = ADarts(
        config=ModelRaceConfig(
            n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
            weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
        ),
        classifier_names=["knn", "decision_tree"],
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, np.array(labels))

    root = tmp_path_factory.mktemp("serving")
    engine_path = root / "engine.json"
    save_engine(engine, engine_path)
    data_path = root / "data.csv"
    write_series_csv(data_path, series)
    return engine_path, data_path


class TestServingCommands:
    def test_monitor_json_document(self, serving_artifacts, tmp_path, capsys):
        import json

        engine_path, data_path = serving_artifacts
        out_path = tmp_path / "health.json"
        prom_path = tmp_path / "health.prom"
        code = main(
            [
                "monitor",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--repeat", "2",
                "--drift-min-samples", "16",
                "--out", str(out_path),
                "--prom-out", str(prom_path),
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["n_series"] == 32
        assert document["latency"]["count"] > 0
        assert document["drift"]["enabled"] is True
        assert json.loads(out_path.read_text())["n_series"] == 32
        assert "repro_serving_requests_total" in prom_path.read_text()

    def test_monitor_prometheus_stdout(self, serving_artifacts, capsys):
        engine_path, data_path = serving_artifacts
        code = main(
            [
                "monitor",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--format", "prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serving_requests_total counter" in out
        assert "repro_serving_latency_seconds" in out

    def test_monitor_bad_engine_errors(self, tmp_path, capsys):
        code = main(
            [
                "monitor",
                "--engine", str(tmp_path / "missing.json"),
                "--data", str(tmp_path / "missing.csv"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_monitor_malformed_metrics_input_errors(self, tmp_path, capsys):
        from repro.observability.report import load_metrics

        bad = tmp_path / "metrics.json"
        bad.write_text('[1, 2, 3]')
        with pytest.raises(ValidationError, match="unrecognized metrics"):
            load_metrics(bad)

    def test_profile_writes_collapsed_stacks(
        self, serving_artifacts, tmp_path, capsys
    ):
        from repro.observability import parse_collapsed

        engine_path, data_path = serving_artifacts
        out_path = tmp_path / "profile.collapsed"
        code = main(
            [
                "profile",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--out", str(out_path),
                "--repeat", "3",
                "--interval", "2.0",
            ]
        )
        assert code == 0
        counts = parse_collapsed(out_path.read_text())
        assert counts, "profiler collected no samples"
        assert any("repro" in stack for stack in counts)
        assert "samples" in capsys.readouterr().out


class TestLedgerParser:
    def test_audit_and_explain_registered(self):
        parser = build_parser()
        args = parser.parse_args(["audit", "--ledger", "l.jsonl", "--summary"])
        assert callable(args.func)
        assert args.summary is True
        args = parser.parse_args(
            [
                "audit", "--ledger", "l.jsonl", "--kind", "repair",
                "--algorithm", "linear", "--degraded-only", "--tail", "5",
            ]
        )
        assert args.kind == "repair"
        assert args.tail == 5
        args = parser.parse_args(
            ["explain", "rep_abc", "--ledger", "l.jsonl", "--engine", "e.json"]
        )
        assert callable(args.func)
        assert args.repair_id == "rep_abc"

    def test_audit_kind_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["audit", "--ledger", "l.jsonl", "--kind", "bogus"]
            )

    def test_repair_accepts_ledger_out(self):
        args = build_parser().parse_args(
            [
                "repair", "--engine", "e.json", "--data", "d.csv",
                "--out", "o.csv", "--ledger-out", "l.jsonl",
            ]
        )
        assert args.ledger_out == "l.jsonl"


@pytest.fixture(scope="module")
def ledgered_repair(serving_artifacts, tmp_path_factory):
    """Run ``repro repair --ledger-out`` once; share the resulting ledger."""
    engine_path, data_path = serving_artifacts
    root = tmp_path_factory.mktemp("ledgered")
    faulty_path = root / "faulty.csv"
    t = np.linspace(0, 4 * np.pi, 96)
    values = np.sin(t)
    values[30:50] = np.nan
    write_series_csv(faulty_path, [TimeSeries(values, name="gap")])
    ledger_path = root / "ledger.jsonl"
    code = main(
        [
            "repair",
            "--engine", str(engine_path),
            "--data", str(faulty_path),
            "--out", str(root / "repaired.csv"),
            "--ledger-out", str(ledger_path),
        ]
    )
    assert code == 0
    return engine_path, ledger_path


class TestLedgerCommands:
    def test_repair_writes_ledger(self, ledgered_repair):
        import json

        _engine_path, ledger_path = ledgered_repair
        rows = [
            json.loads(line)
            for line in ledger_path.read_text().splitlines()
        ]
        kinds = {row["kind"] for row in rows}
        assert "repair" in kinds
        assert "impute" in kinds

    def test_audit_summary(self, ledgered_repair, capsys):
        _engine_path, ledger_path = ledgered_repair
        assert main(["audit", "--ledger", str(ledger_path), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "repair ledger summary" in out
        assert "per-imputer scorecard" in out

    def test_audit_line_and_json_modes(self, ledgered_repair, capsys):
        import json

        _engine_path, ledger_path = ledgered_repair
        assert main(["audit", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "repair" in out
        assert (
            main(
                [
                    "audit", "--ledger", str(ledger_path),
                    "--kind", "repair", "--json",
                ]
            )
            == 0
        )
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert rows and all(r["kind"] == "repair" for r in rows)

    def test_explain_reconstructs_repair(
        self, ledgered_repair, capsys
    ):
        import json

        engine_path, ledger_path = ledgered_repair
        rows = [
            json.loads(line)
            for line in ledger_path.read_text().splitlines()
        ]
        repair_id = next(r["id"] for r in rows if r["kind"] == "repair")
        code = main(
            [
                "explain", repair_id,
                "--ledger", str(ledger_path),
                "--engine", str(engine_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert repair_id in out
        assert "decision" in out

    def test_audit_missing_ledger_errors(self, tmp_path, capsys):
        code = main(["audit", "--ledger", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_audit_malformed_ledger_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        code = main(["audit", "--ledger", str(bad)])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_explain_unknown_id_errors(self, ledgered_repair, capsys):
        _engine_path, ledger_path = ledgered_repair
        code = main(["explain", "rep_nope", "--ledger", str(ledger_path)])
        assert code == 2
        assert "no repair record" in capsys.readouterr().err


class TestTopCommand:
    def test_top_registered(self):
        parser = build_parser()
        args = parser.parse_args(["top", "--snapshot", "h.json", "--once"])
        assert callable(args.func)
        assert args.once is True

    def test_top_once_live_engine(self, serving_artifacts, capsys):
        engine_path, data_path = serving_artifacts
        code = main(
            [
                "top",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--once", "--no-color",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "SLO" in out
        assert "RESOURCES" in out
        assert "\x1b[2J" not in out  # --once never clears the screen

    def test_top_once_from_snapshot_file(
        self, serving_artifacts, tmp_path, capsys
    ):
        engine_path, data_path = serving_artifacts
        out_path = tmp_path / "health.json"
        assert main(
            [
                "monitor",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--out", str(out_path),
            ]
        ) == 0
        capsys.readouterr()
        code = main(["top", "--snapshot", str(out_path), "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "latency_p99" in out

    def test_top_without_source_errors(self, capsys):
        code = main(["top", "--once"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_top_loop_exits_cleanly_on_interrupt(
        self, serving_artifacts, monkeypatch, capsys
    ):
        import time as _time

        engine_path, data_path = serving_artifacts

        def _interrupt(_seconds):
            raise KeyboardInterrupt

        monkeypatch.setattr(_time, "sleep", _interrupt)
        code = main(
            ["top", "--engine", str(engine_path), "--data", str(data_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "\x1b[2J" in captured.out  # at least one frame was drawn
        assert "top stopped" in captured.err


class TestServeCommand:
    def test_serve_registered_with_defaults(self):
        args = build_parser().parse_args(["serve", "--engine", "e.json"])
        assert args.command == "serve"
        assert args.shards == 2
        assert args.shard_backend == "auto"
        assert args.max_batch == 16
        assert args.max_delay_ms == 5.0
        assert args.max_pending == 1024
        assert args.selfcheck is None

    def test_serve_backend_choices_enforced(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--engine", "e.json", "--shard-backend", "bogus"]
            )
        assert "--shard-backend" in capsys.readouterr().err

    def test_serve_requires_engine(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
        assert "--engine" in capsys.readouterr().err

    def test_serve_selfcheck_roundtrip(
        self, serving_artifacts, tmp_path, capsys
    ):
        """The CI lane: seeded requests through the real socket, exit 0,
        snapshot exported — and a second run is reproducible."""
        import json

        engine_path, _ = serving_artifacts
        snapshot_path = tmp_path / "serve_health.json"
        code = main(
            ["serve", "--engine", str(engine_path),
             "--shards", "2", "--shard-backend", "inline",
             "--max-batch", "8", "--max-delay-ms", "1",
             "--selfcheck", "12", "--seed", "5",
             "--snapshot-out", str(snapshot_path)]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "selfcheck OK" in captured.out
        assert "12/12 responses" in captured.out
        assert "statuses {200: 12}" in captured.out
        assert "2 inline shard(s)" in captured.err

        doc = json.loads(snapshot_path.read_text())
        assert doc["n_requests"] >= 1
        assert doc["n_series"] == 12
        assert doc["scorecards"]["batching"]["items"] == 12

    def test_serve_selfcheck_bad_engine_errors(self, tmp_path, capsys):
        code = main(
            ["serve", "--engine", str(tmp_path / "nope.json"),
             "--selfcheck", "3"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMonitorWatch:
    def test_watch_flag_registered(self):
        args = build_parser().parse_args(
            ["monitor", "--engine", "e.json", "--data", "d.csv",
             "--watch", "2.5"]
        )
        assert args.watch == 2.5

    def test_watch_loop_renders_and_exits_on_interrupt(
        self, serving_artifacts, monkeypatch, capsys
    ):
        import time as _time

        engine_path, data_path = serving_artifacts
        calls = []

        def _interrupt(seconds):
            calls.append(seconds)
            if len(calls) >= 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(_time, "sleep", _interrupt)
        code = main(
            [
                "monitor",
                "--engine", str(engine_path),
                "--data", str(data_path),
                "--watch", "1.0",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.count("\x1b[2J") == 2  # one clear per frame
        assert "monitor stopped" in captured.err
        assert len(calls) == 2


class TestBenchTrendCommand:
    def test_bench_trend_registered(self):
        args = build_parser().parse_args(["bench", "trend"])
        assert callable(args.func)

    def test_bench_trend_renders_table(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"race": {"serial_s": 1.0}, "other": {"serial_s": 1.0}}
        ))
        fresh = tmp_path / "BENCH_race.json"
        fresh.write_text(json.dumps({"race": {"serial_s": 2.0}}))
        out_path = tmp_path / "trend.txt"
        code = main(
            [
                "bench", "trend",
                "--baseline", str(baseline),
                "--fresh", str(fresh),
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "1 regression(s)" in out
        assert "baseline-only" in out
        assert "REGRESSED" in out_path.read_text()

    def test_bench_trend_glob_and_missing_fresh(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"a": {"serial_s": 1.0}}))
        for name, doc in (
            ("BENCH_one.json", {"a": {"serial_s": 1.1}}),
            ("BENCH_two.json", {"b": {"serial_s": 0.5}}),
        ):
            (tmp_path / name).write_text(json.dumps(doc))
        code = main(
            [
                "bench", "trend",
                "--baseline", str(baseline),
                "--fresh", str(tmp_path / "BENCH_*.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_bench_trend_no_fresh_errors(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"a": {"serial_s": 1.0}}))
        code = main(
            [
                "bench", "trend",
                "--baseline", str(baseline),
                "--fresh", str(tmp_path / "BENCH_none.json"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_trend_missing_baseline_errors(self, tmp_path, capsys):
        code = main(
            ["bench", "trend", "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
