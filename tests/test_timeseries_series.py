"""Unit tests for TimeSeries and TimeSeriesDataset containers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.timeseries import TimeSeries, TimeSeriesDataset


class TestTimeSeries:
    def test_basic_construction(self):
        ts = TimeSeries([1.0, 2.0, 3.0], name="abc")
        assert len(ts) == 3
        assert ts.name == "abc"
        assert list(ts) == [1.0, 2.0, 3.0]

    def test_values_are_immutable(self):
        ts = TimeSeries([1.0, 2.0])
        with pytest.raises((ValueError, RuntimeError)):
            ts.values[0] = 9.0

    def test_construction_copies_input(self):
        arr = np.array([1.0, 2.0, 3.0])
        ts = TimeSeries(arr)
        arr[0] = 99.0
        assert ts.values[0] == 1.0

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            TimeSeries(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            TimeSeries([])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            TimeSeries([1.0, np.inf])

    def test_missing_accounting(self):
        ts = TimeSeries([1.0, np.nan, 3.0, np.nan, np.nan])
        assert ts.n_missing == 3
        assert ts.has_missing
        assert ts.missing_ratio == pytest.approx(0.6)
        assert ts.mask.tolist() == [False, True, False, True, True]

    def test_missing_blocks_detection(self):
        ts = TimeSeries([np.nan, 1.0, np.nan, np.nan, 2.0, np.nan])
        assert ts.missing_blocks() == [(0, 1), (2, 2), (5, 1)]

    def test_missing_blocks_empty_when_complete(self):
        assert TimeSeries([1.0, 2.0]).missing_blocks() == []

    def test_equality_with_nan(self):
        a = TimeSeries([1.0, np.nan, 2.0])
        b = TimeSeries([1.0, np.nan, 2.0])
        c = TimeSeries([1.0, 0.0, 2.0])
        assert a == b
        assert a != c

    def test_hashable(self):
        a = TimeSeries([1.0, 2.0], name="x")
        assert isinstance(hash(a), int)

    def test_filled_replaces_only_missing(self):
        ts = TimeSeries([1.0, np.nan, 3.0])
        out = ts.filled([9.0, 9.0, 9.0])
        assert out.values.tolist() == [1.0, 9.0, 3.0]

    def test_filled_wrong_length_raises(self):
        with pytest.raises(ValidationError):
            TimeSeries([1.0, np.nan]).filled([1.0])

    def test_interpolated_interior(self):
        ts = TimeSeries([0.0, np.nan, 2.0])
        assert ts.interpolated().values.tolist() == [0.0, 1.0, 2.0]

    def test_interpolated_edges_extend(self):
        ts = TimeSeries([np.nan, 5.0, np.nan])
        assert ts.interpolated().values.tolist() == [5.0, 5.0, 5.0]

    def test_interpolated_fully_missing_raises(self):
        with pytest.raises(ValidationError):
            TimeSeries([np.nan, np.nan]).interpolated()

    def test_zscore_mean_std(self):
        ts = TimeSeries(np.arange(10, dtype=float)).zscore()
        assert ts.values.mean() == pytest.approx(0.0, abs=1e-12)
        assert ts.values.std() == pytest.approx(1.0)

    def test_zscore_constant_is_zeros(self):
        assert TimeSeries([5.0, 5.0, 5.0]).zscore().values.tolist() == [0, 0, 0]

    def test_zscore_preserves_nan(self):
        out = TimeSeries([1.0, np.nan, 3.0]).zscore()
        assert np.isnan(out.values[1])

    def test_slice(self):
        ts = TimeSeries(np.arange(10, dtype=float))
        sub = ts.slice(2, 5)
        assert sub.values.tolist() == [2.0, 3.0, 4.0]

    def test_slice_invalid_raises(self):
        with pytest.raises(ValidationError):
            TimeSeries([1.0, 2.0]).slice(1, 1)

    def test_observed_values(self):
        ts = TimeSeries([1.0, np.nan, 3.0])
        assert ts.observed_values().tolist() == [1.0, 3.0]


class TestTimeSeriesDataset:
    def test_construction_and_iteration(self, tiny_dataset):
        assert len(tiny_dataset) == 5
        assert all(isinstance(s, TimeSeries) for s in tiny_dataset)

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            TimeSeriesDataset([])

    def test_non_series_raises(self):
        with pytest.raises(ValidationError):
            TimeSeriesDataset([np.zeros(3)])

    def test_indexing_and_slicing(self, tiny_dataset):
        assert isinstance(tiny_dataset[0], TimeSeries)
        sub = tiny_dataset[1:3]
        assert isinstance(sub, TimeSeriesDataset)
        assert len(sub) == 2

    def test_to_matrix_round_trip(self, tiny_dataset):
        matrix = tiny_dataset.to_matrix()
        assert matrix.shape == (5, 64)
        rebuilt = TimeSeriesDataset.from_matrix(matrix, category="Test")
        assert np.allclose(rebuilt.to_matrix(), matrix)

    def test_to_matrix_unequal_lengths_raises(self):
        ds = TimeSeriesDataset(
            [TimeSeries([1.0, 2.0]), TimeSeries([1.0, 2.0, 3.0])]
        )
        with pytest.raises(ValidationError):
            ds.to_matrix()

    def test_subset(self, tiny_dataset):
        sub = tiny_dataset.subset([0, 4])
        assert len(sub) == 2
        assert sub[1] == tiny_dataset[4]

    def test_map(self, tiny_dataset):
        doubled = tiny_dataset.map(lambda s: s.with_values(s.values * 2))
        assert np.allclose(doubled.to_matrix(), 2 * tiny_dataset.to_matrix())

    def test_lengths(self, tiny_dataset):
        assert (tiny_dataset.lengths == 64).all()

    def test_category_preserved_through_ops(self, tiny_dataset):
        assert tiny_dataset.subset([0]).category == "Test"
        assert tiny_dataset[0:2].category == "Test"
