"""Unit tests for correlation and shape-based distance measures."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.timeseries import (
    TimeSeries,
    average_pairwise_correlation,
    cross_correlation,
    max_cross_correlation,
    pairwise_correlation_matrix,
    sbd_distance_matrix,
    shape_based_distance,
)


@pytest.fixture
def sine():
    return np.sin(np.linspace(0, 8 * np.pi, 256))


class TestCrossCorrelation:
    def test_self_correlation_is_one(self, sine):
        assert cross_correlation(sine, sine) == pytest.approx(1.0)

    def test_negated_is_minus_one(self, sine):
        assert cross_correlation(sine, -sine) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=500), rng.normal(size=500)
        assert abs(cross_correlation(a, b)) < 0.15

    def test_constant_series_is_zero(self, sine):
        assert cross_correlation(np.ones(256), sine) == 0.0

    def test_different_lengths_truncate(self, sine):
        assert cross_correlation(sine, sine[:128]) == pytest.approx(1.0)

    def test_accepts_timeseries_with_nan(self, sine):
        vals = sine.copy()
        vals[10:20] = np.nan
        value = cross_correlation(TimeSeries(vals), sine)
        assert value > 0.95


class TestMaxCrossCorrelation:
    def test_shift_invariance(self, sine):
        shifted = np.roll(sine, 13)
        plain = cross_correlation(sine, shifted)
        aligned = max_cross_correlation(sine, shifted)
        assert aligned > plain - 1e-9
        # Zero-padded (non-circular) alignment can't hit exactly 1.0 on a
        # rolled signal; it must still recover most of the correlation.
        assert aligned == pytest.approx(1.0, abs=0.05)

    def test_bounded_by_one(self, sine):
        rng = np.random.default_rng(1)
        for _ in range(5):
            other = rng.normal(size=256)
            assert max_cross_correlation(sine, other) <= 1.0 + 1e-9

    def test_max_shift_restricts(self, sine):
        shifted = np.roll(sine, 40)
        narrow = max_cross_correlation(sine, shifted, max_shift=5)
        wide = max_cross_correlation(sine, shifted, max_shift=64)
        assert wide >= narrow


class TestShapeBasedDistance:
    def test_identical_is_zero(self, sine):
        assert shape_based_distance(sine, sine) == pytest.approx(0.0, abs=1e-9)

    def test_range(self, sine):
        assert 0.0 <= shape_based_distance(sine, -sine) <= 2.0


class TestMatrices:
    def test_pairwise_matrix_symmetric_unit_diag(self, sine):
        series = [sine, np.roll(sine, 5), -sine]
        corr = pairwise_correlation_matrix(series)
        assert corr.shape == (3, 3)
        assert np.allclose(corr, corr.T)
        assert np.allclose(np.diag(corr), 1.0)

    def test_average_pairwise_singleton_is_one(self, sine):
        assert average_pairwise_correlation([sine]) == 1.0

    def test_average_pairwise_empty_raises(self):
        with pytest.raises(ValidationError):
            average_pairwise_correlation([])

    def test_average_of_identical_is_one(self, sine):
        assert average_pairwise_correlation([sine, sine.copy()]) == pytest.approx(1.0)

    def test_sbd_matrix_zero_diag(self, sine):
        dist = sbd_distance_matrix([sine, np.roll(sine, 3)])
        assert np.allclose(np.diag(dist), 0.0, atol=1e-9)
        assert np.allclose(dist, dist.T)
