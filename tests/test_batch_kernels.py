"""Parity + property tests for the batched similarity kernels.

The scalar per-pair functions in ``repro.timeseries.correlation`` are the
semantics-defining reference; everything in ``repro.timeseries.batch``
must match them to <= 1e-9 (values) / exactly (argmax shifts, cluster
labels).  The clustering snapshot fixtures in
``tests/data/clustering_snapshots.json`` were generated with the
pre-batched code, so these tests certify the refactor end to end.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.clustering.incremental import IncrementalClustering, _RefineSums
from repro.clustering.kshape import KShape, _ncc_shift
from repro.exceptions import ValidationError
from repro.features.topological import persistence_diagram
from repro.parallel import (
    AUTO_MIN_BATCH_SECONDS,
    AUTO_PROCESS_MIN_SECONDS,
    AUTO_PROCESS_MIN_TASKS,
    ExecutionEngine,
    ParallelConfig,
)
from repro.timeseries import TimeSeries
from repro.timeseries.batch import SeriesBank, ncc_cross, ncc_rowwise, znorm_rows
from repro.timeseries.correlation import (
    average_pairwise_correlation,
    cross_correlation,
    max_cross_correlation,
    pairwise_correlation_matrix,
    pairwise_correlation_matrix_reference,
    sbd_distance_matrix,
    sbd_distance_matrix_reference,
)

TOL = 1e-9

SNAPSHOT_PATH = (
    pathlib.Path(__file__).parent / "data" / "clustering_snapshots.json"
)
SNAPSHOTS = json.loads(SNAPSHOT_PATH.read_text())


# ---------------------------------------------------------------------------
# Corpora.  make_groups / make_walks MUST stay in sync with the script that
# generated clustering_snapshots.json (pre-refactor code): same seeds, same
# rng call order.
# ---------------------------------------------------------------------------

def make_groups(seed=0, n_per=6, length=120):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, length)
    groups = [np.sin(t), np.sign(np.sin(3 * t)), t / t.max() * 2 - 1]
    series = []
    for g, base in enumerate(groups):
        for i in range(n_per):
            noisy = base * rng.uniform(0.9, 1.1) + rng.normal(0, 0.05, length)
            series.append(TimeSeries(noisy, name=f"g{g}_{i}"))
    return series


def make_walks(seed=7, n=24, length=96):
    rng = np.random.default_rng(seed)
    return [
        TimeSeries(rng.normal(size=length).cumsum(), name=f"w{i}")
        for i in range(n)
    ]


def random_matrix(seed=0, n=12, length=64):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, length)).cumsum(axis=1)


# ---------------------------------------------------------------------------
# ncc_cross / ncc_rowwise vs. the scalar _ncc_shift reference.
# ---------------------------------------------------------------------------

class TestNccCrossParity:
    def test_values_and_shifts_match_scalar(self):
        X = znorm_rows(random_matrix(seed=1, n=8, length=50))
        Y = znorm_rows(random_matrix(seed=2, n=6, length=50))
        values, shifts = ncc_cross(X, Y)
        for i in range(X.shape[0]):
            for j in range(Y.shape[0]):
                ref_val, ref_shift = _ncc_shift(X[i], Y[j])
                assert abs(values[i, j] - ref_val) <= TOL
                assert int(shifts[i, j]) == ref_shift

    def test_rowwise_matches_scalar(self):
        X = znorm_rows(random_matrix(seed=3, n=7, length=40))
        Y = znorm_rows(random_matrix(seed=4, n=7, length=40))
        values, shifts = ncc_rowwise(X, Y, return_shifts=True)
        for i in range(X.shape[0]):
            ref_val, ref_shift = _ncc_shift(X[i], Y[i])
            assert abs(values[i] - ref_val) <= TOL
            assert int(shifts[i]) == ref_shift

    def test_max_shift_window_matches_scalar(self):
        series = [row for row in random_matrix(seed=5, n=5, length=48)]
        X = znorm_rows(np.vstack(series))
        for window in (0, 1, 5, 47, 200):
            values, _ = ncc_cross(X, X, max_shift=window)
            for i in range(len(series)):
                for j in range(len(series)):
                    ref = max_cross_correlation(
                        series[i], series[j], max_shift=window
                    )
                    assert abs(values[i, j] - ref) <= TOL

    def test_zero_norm_rows_yield_zero(self):
        X = np.vstack([np.zeros(16), np.arange(16.0)])
        values, shifts = ncc_cross(znorm_rows(X), znorm_rows(X))
        assert values[0, 0] == 0.0 and values[0, 1] == 0.0
        assert values[1, 0] == 0.0
        assert shifts[0, 1] == 0 and shifts[1, 0] == 0
        assert abs(values[1, 1] - 1.0) <= TOL

    def test_block_size_does_not_change_results(self):
        X = znorm_rows(random_matrix(seed=6, n=10, length=32))
        full_v, full_s = ncc_cross(X, X)
        # Tiny cap forces one row per spectral block.
        tiny_v, tiny_s = ncc_cross(X, X, block_bytes=1)
        np.testing.assert_array_equal(full_v, tiny_v)
        np.testing.assert_array_equal(full_s, tiny_s)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            ncc_cross(np.zeros((2, 8)), np.zeros((2, 9)))
        with pytest.raises(ValidationError):
            ncc_rowwise(np.zeros((2, 8)), np.zeros((3, 8)))


# ---------------------------------------------------------------------------
# SeriesBank matrices vs. the per-pair reference loops.
# ---------------------------------------------------------------------------

class TestSeriesBankParity:
    def test_corr_matrix_matches_reference(self):
        series = make_walks(seed=11, n=10, length=70)
        bank = SeriesBank.from_series(series)
        ref = pairwise_correlation_matrix_reference(series)
        assert np.abs(bank.corr_matrix() - ref).max() <= TOL

    def test_ncc_matrix_matches_reference(self):
        series = make_walks(seed=12, n=9, length=60)
        bank = SeriesBank.from_series(series)
        ref = pairwise_correlation_matrix_reference(series, shifted=True)
        assert np.abs(bank.ncc_matrix() - ref).max() <= TOL

    def test_sbd_matrix_matches_reference(self):
        series = make_walks(seed=13, n=9, length=60)
        bank = SeriesBank.from_series(series)
        ref = sbd_distance_matrix_reference(series)
        assert np.abs(bank.sbd_matrix() - ref).max() <= TOL
        assert np.all(np.diag(bank.sbd_matrix()) == 0.0)

    def test_public_dispatch_equals_reference(self):
        series = make_walks(seed=14, n=8, length=50)
        for shifted in (False, True):
            batched = pairwise_correlation_matrix(series, shifted=shifted)
            ref = pairwise_correlation_matrix_reference(series, shifted=shifted)
            assert np.abs(batched - ref).max() <= TOL
        assert (
            np.abs(
                sbd_distance_matrix(series)
                - sbd_distance_matrix_reference(series)
            ).max()
            <= TOL
        )

    def test_exact_symmetry_and_unit_diagonal(self):
        bank = SeriesBank(random_matrix(seed=15, n=12, length=48))
        for mat in (bank.corr_matrix(), bank.ncc_matrix()):
            np.testing.assert_array_equal(mat, mat.T)  # exact, not approx
            assert np.all(np.diag(mat) == 1.0)
        _, shifts = bank.ncc_matrix(return_shifts=True)
        np.testing.assert_array_equal(shifts, -shifts.T)

    def test_constant_series_correlate_zero(self):
        matrix = random_matrix(seed=16, n=5, length=40)
        matrix[2, :] = 3.14  # constant row
        bank = SeriesBank(matrix)
        corr = bank.corr_matrix()
        off_diag = np.delete(corr[2], 2)
        assert np.all(off_diag == 0.0)
        assert corr[2, 2] == 1.0  # diagonal convention

    def test_nan_series_are_interpolated_like_reference(self):
        series = make_walks(seed=17, n=6, length=40)
        holey = []
        for i, s in enumerate(series):
            values = s.values.copy()
            values[5 + i : 9 + i] = np.nan
            holey.append(TimeSeries(values, name=s.name))
        batched = pairwise_correlation_matrix(holey)
        ref = pairwise_correlation_matrix_reference(holey)
        assert np.abs(batched - ref).max() <= TOL

    def test_unequal_lengths_fall_back_to_reference(self):
        rng = np.random.default_rng(18)
        series = [
            TimeSeries(rng.normal(size=n).cumsum())
            for n in (40, 52, 64, 48)
        ]
        for shifted in (False, True):
            np.testing.assert_array_equal(
                pairwise_correlation_matrix(series, shifted=shifted),
                pairwise_correlation_matrix_reference(series, shifted=shifted),
            )

    def test_average_correlation_matches_scalar(self):
        series = make_walks(seed=19, n=7, length=45)
        bank = SeriesBank.from_series(series)
        assert (
            abs(bank.average_correlation() - average_pairwise_correlation(series))
            <= TOL
        )
        single = SeriesBank.from_series(series[:1])
        assert single.average_correlation() == 1.0

    def test_from_series_truncates_to_min_length(self):
        rng = np.random.default_rng(20)
        series = [rng.normal(size=n) for n in (30, 25, 40)]
        bank = SeriesBank.from_series(series)
        assert bank.raw.shape == (3, 25)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SeriesBank(np.zeros(8))  # 1-D
        with pytest.raises(ValidationError):
            SeriesBank(np.full((2, 4), np.nan))
        with pytest.raises(ValidationError):
            SeriesBank.from_series([])


# ---------------------------------------------------------------------------
# max_cross_correlation truncation-order regression (satellite fix).
# ---------------------------------------------------------------------------

class TestMaxCrossCorrelationTruncation:
    def test_self_prefix_is_perfectly_correlated(self):
        # Historically the series were z-normed BEFORE truncation, so the
        # discarded tail leaked into the mean/std and x vs. x[:n] scored
        # below 1.  After the fix both windows z-norm identically.
        rng = np.random.default_rng(21)
        x = rng.normal(size=80).cumsum() + 10.0
        assert abs(max_cross_correlation(x, x[:50]) - 1.0) <= 1e-12
        assert abs(max_cross_correlation(x[:50], x) - 1.0) <= 1e-12

    def test_truncation_order_matches_cross_correlation(self):
        # max over shifts can never be below the zero-lag correlation of
        # the same (truncate -> z-norm) windows.
        rng = np.random.default_rng(22)
        a = rng.normal(size=70).cumsum()
        b = rng.normal(size=55).cumsum() * 3.0 + 5.0
        assert max_cross_correlation(a, b) >= cross_correlation(a, b) - 1e-12

    def test_symmetry_on_unequal_lengths(self):
        rng = np.random.default_rng(23)
        a = rng.normal(size=64).cumsum()
        b = rng.normal(size=47).cumsum()
        assert abs(
            max_cross_correlation(a, b) - max_cross_correlation(b, a)
        ) <= TOL


# ---------------------------------------------------------------------------
# Clustering snapshots (fixtures generated with the pre-batched code).
# ---------------------------------------------------------------------------

def _incremental_model(key: str) -> IncrementalClustering:
    return {
        "incremental_groups_d08": IncrementalClustering(
            delta=0.8, random_state=0
        ),
        "incremental_groups_default": IncrementalClustering(random_state=0),
        "incremental_walks_d06": IncrementalClustering(
            delta=0.6, min_cluster_size=4, random_state=3
        ),
        "incremental_walks_d04": IncrementalClustering(
            delta=0.4, min_cluster_size=6, random_state=1
        ),
    }[key]


class TestClusteringSnapshots:
    @pytest.mark.parametrize(
        "key",
        [
            "incremental_groups_d08",
            "incremental_groups_default",
            "incremental_walks_d06",
            "incremental_walks_d04",
        ],
    )
    @pytest.mark.parametrize("incremental", [True, False])
    def test_incremental_clustering_labels(self, key, incremental):
        corpus = make_groups() if "groups" in key else make_walks()
        model = _incremental_model(key)
        model.incremental = incremental
        labels = model.fit(corpus).labels_.tolist()
        assert labels == SNAPSHOTS[key]

    @pytest.mark.parametrize(
        "key, n_clusters, seed",
        [
            ("kshape_groups_k3", 3, 0),
            ("kshape_groups_k5", 5, 1),
            ("kshape_walks_k4", 4, 2),
        ],
    )
    def test_kshape_labels(self, key, n_clusters, seed):
        corpus = make_groups() if "groups" in key else make_walks()
        model = KShape(n_clusters=n_clusters, random_state=seed)
        labels = model.fit(corpus).labels_.tolist()
        assert labels == SNAPSHOTS[key]

    @pytest.mark.parametrize("seed", [1, 5, 9, 13])
    def test_incremental_equals_legacy_refinement(self, seed):
        corpus = make_walks(seed=seed, n=20, length=64)
        fast = IncrementalClustering(
            delta=0.5, min_cluster_size=4, random_state=0, incremental=True
        ).fit(corpus)
        slow = IncrementalClustering(
            delta=0.5, min_cluster_size=4, random_state=0, incremental=False
        ).fit(corpus)
        np.testing.assert_array_equal(fast.labels_, slow.labels_)


class TestRefineSums:
    @staticmethod
    def _random_state(seed=0, n=14, ncl=4):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(-1, 1, size=(n, n))
        corr = (raw + raw.T) / 2.0
        np.fill_diagonal(corr, 1.0)
        owner = rng.integers(0, ncl, size=n)
        owner[:ncl] = np.arange(ncl)  # no empty clusters
        clusters = [list(np.flatnonzero(owner == c)) for c in range(ncl)]
        return corr, clusters

    @staticmethod
    def _rho_direct(corr, members):
        if len(members) <= 1:
            return 1.0
        idx = np.asarray(members)
        sub = corr[np.ix_(idx, idx)]
        iu = np.triu_indices(len(members), k=1)
        return float(sub[iu].mean())

    def test_rho_matches_direct_computation(self):
        corr, clusters = self._random_state(seed=1)
        sums = _RefineSums(corr, clusters)
        for c, members in enumerate(clusters):
            assert abs(sums.rho(c) - self._rho_direct(corr, members)) <= TOL

    def test_rho_merge_and_move_match_direct(self):
        corr, clusters = self._random_state(seed=2)
        sums = _RefineSums(corr, clusters)
        rho01, _ = sums.rho_merge(0, 1, np.asarray(clusters[0]))
        assert (
            abs(rho01 - self._rho_direct(corr, clusters[0] + clusters[1]))
            <= TOL
        )
        x = clusters[0][0]
        assert (
            abs(sums.rho_move(x, 1) - self._rho_direct(corr, clusters[1] + [x]))
            <= TOL
        )

    def test_apply_move_keeps_sums_consistent(self):
        corr, clusters = self._random_state(seed=3)
        sums = _RefineSums(corr, clusters)
        x = clusters[0][0]
        sums.apply_move(x, 0, 1)
        clusters[0].remove(x)
        clusters[1].append(x)
        rebuilt = _RefineSums(corr, clusters)
        np.testing.assert_allclose(sums.internal, rebuilt.internal, atol=TOL)
        np.testing.assert_allclose(sums.col, rebuilt.col, atol=TOL)
        np.testing.assert_array_equal(sums.sizes, rebuilt.sizes)

    def test_apply_merge_keeps_sums_consistent(self):
        corr, clusters = self._random_state(seed=4)
        sums = _RefineSums(corr, clusters)
        _, cross = sums.rho_merge(0, 1, np.asarray(clusters[0]))
        sums.apply_merge(0, 1, cross)
        merged = [
            [],
            clusters[1] + clusters[0],
            clusters[2],
            clusters[3],
        ]
        rebuilt = _RefineSums(corr, merged)
        np.testing.assert_allclose(sums.internal, rebuilt.internal, atol=TOL)
        np.testing.assert_allclose(sums.col, rebuilt.col, atol=TOL)
        np.testing.assert_array_equal(sums.sizes, rebuilt.sizes)


# ---------------------------------------------------------------------------
# Sublevel persistence: list-based union-find vs. an inline numpy reference.
# ---------------------------------------------------------------------------

def _sublevel_reference(x: np.ndarray) -> np.ndarray:
    """Plain numpy union-find sublevel persistence (pre-speedup semantics)."""
    n = x.shape[0]
    parent = np.arange(n)
    birth = np.full(n, np.inf)
    active = np.zeros(n, dtype=bool)

    def find(i):
        while parent[i] != i:
            i = parent[i]
        return i

    pairs = []
    for idx in np.argsort(x, kind="stable"):
        value = x[idx]
        birth[idx] = value
        active[idx] = True
        for nb in (idx - 1, idx + 1):
            if 0 <= nb < n and active[nb]:
                ri, rj = find(idx), find(nb)
                if ri == rj:
                    continue
                if birth[ri] > birth[rj]:
                    ri, rj = rj, ri
                if value > birth[rj]:
                    pairs.append((birth[rj], value))
                parent[rj] = ri
    if not pairs:
        return np.empty((0, 2))
    return np.asarray(pairs, dtype=float)


class TestSublevelPersistenceParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_series_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=200).cumsum()
        np.testing.assert_array_equal(
            persistence_diagram(x, kind="sublevel"), _sublevel_reference(x)
        )

    def test_edge_cases_match_reference(self):
        cases = [
            np.zeros(16),                      # constant -> empty diagram
            np.array([0.0, 1.0]),              # minimal length
            np.sin(np.linspace(0, 20, 101)),   # many equal-height peaks
            np.repeat([1.0, 0.0, 1.0, 0.0], 8),  # ties everywhere
        ]
        for x in cases:
            np.testing.assert_array_equal(
                persistence_diagram(x, kind="sublevel"),
                _sublevel_reference(x),
            )

    def test_nan_input_interpolated(self):
        x = np.array([0.0, 1.0, np.nan, 3.0, 1.0, np.nan, 2.0, 0.5])
        diagram = persistence_diagram(x, kind="sublevel")
        assert not np.isnan(diagram).any()


# ---------------------------------------------------------------------------
# Cost-aware auto backend selection (ExecutionEngine probe + EWMA).
# ---------------------------------------------------------------------------

class TestCostAwareAutoSelection:
    def test_resolve_backend_with_cost_estimate(self):
        cfg = ParallelConfig(n_jobs=4, backend="auto")
        tiny = AUTO_MIN_BATCH_SECONDS / 20
        # 10 tasks x tiny cost: total work under the serial floor.
        assert cfg.resolve_backend(10, est_task_seconds=tiny) == "serial"
        # Total work in the thread band.
        assert cfg.resolve_backend(10, est_task_seconds=0.02) == "thread"
        # Enough work for process, but too few tasks to amortize forks.
        assert cfg.resolve_backend(10, est_task_seconds=0.1) == "thread"
        assert (
            cfg.resolve_backend(
                AUTO_PROCESS_MIN_TASKS, est_task_seconds=0.1
            )
            == "process"
        )
        assert AUTO_MIN_BATCH_SECONDS < AUTO_PROCESS_MIN_SECONDS

    def test_explicit_backend_ignores_estimate(self):
        cfg = ParallelConfig(n_jobs=4, backend="process")
        assert cfg.resolve_backend(5, est_task_seconds=1e-9) == "process"

    def test_resolve_chunk_size_folds_tiny_tasks(self):
        cfg = ParallelConfig(n_jobs=4)
        base = cfg.resolve_chunk_size(100)
        assert base == 7  # ceil(100 / (4 * 4))
        # Sub-microsecond tasks collapse into one chunk per batch.
        assert cfg.resolve_chunk_size(100, est_task_seconds=1e-7) == 100
        # Expensive tasks keep the load-balancing floor.
        assert cfg.resolve_chunk_size(100, est_task_seconds=0.5) == base
        # Explicit chunk_size always wins.
        assert (
            ParallelConfig(n_jobs=4, chunk_size=3).resolve_chunk_size(
                100, est_task_seconds=1e-7
            )
            == 3
        )

    def test_engine_probe_records_cost_estimate(self):
        with ExecutionEngine(ParallelConfig(n_jobs=4, backend="auto")) as eng:
            assert eng.task_cost_estimate("batch.test") is None
            out = eng.map(lambda v: v * v, list(range(20)), label="batch.test")
            assert out == [v * v for v in range(20)]
            est = eng.task_cost_estimate("batch.test")
            assert est is not None and est >= 0.0
            # Second batch refines the EWMA rather than forgetting it.
            eng.map(lambda v: v + 1, list(range(8)), label="batch.test")
            assert eng.task_cost_estimate("batch.test") is not None

    def test_engine_keeps_cheap_auto_batches_serial(self):
        from repro.parallel import engine_stats, reset_engine_stats

        reset_engine_stats()
        with ExecutionEngine(ParallelConfig(n_jobs=4, backend="auto")) as eng:
            eng.map(lambda v: v, list(range(30)), label="batch.cheap")
        stats = engine_stats()
        assert stats.get("process", {}).get("tasks", 0) == 0
