"""End-to-end serving observability: train, serve, drift, health document.

The acceptance scenario for the serving layer: train A-DARTS on a
synthetic corpus, push >= 200 recommendations through an
:class:`InferenceMonitor`, verify that in-distribution traffic does NOT
trigger the drift detector, then inject feature-shifted series and
verify that it DOES — and that the resulting health document renders in
both JSON and Prometheus forms.

When ``REPRO_HEALTH_SNAPSHOT_OUT`` is set (CI does this), the final
health snapshot is also written there so the workflow can upload it as
an artifact; ``REPRO_LEDGER_OUT`` does the same for the serving-time
repair provenance ledger.
"""

import json
import os
import pathlib
import shutil

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.observability import (
    ClusterAtlas,
    InferenceMonitor,
    RecordingServingObserver,
    RepairLedger,
    Tracer,
    read_ledger,
    use_ledger,
    use_tracer,
)
from repro.pipeline.scoring import ScoreWeights

FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)
LENGTH = 120


def _training_corpus(rng, n_per_family=20):
    series, labels = [], []
    t = np.linspace(0, 4 * np.pi, LENGTH)
    for i in range(n_per_family):
        values = np.sin(t * (1 + 0.04 * i)) + 0.05 * rng.normal(size=LENGTH)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(n_per_family):
        values = 0.5 * np.cumsum(rng.normal(size=LENGTH))
        series.append(TimeSeries(values, name=f"walk{i}"))
        labels.append("mean")
    return series, np.array(labels)


def _in_distribution_series(rng, n, corpus):
    """Lightly perturbed resamples of the training corpus.

    A 40-series corpus cannot characterise a whole random-walk family,
    so "healthy" traffic is the corpus itself under small measurement
    noise — exactly the regime the drift detector must stay quiet in.
    """
    out = []
    for i in range(n):
        source = corpus[i % len(corpus)]
        scale = 0.01 * (np.std(source.values) or 1.0)
        values = source.values + scale * rng.normal(size=len(source.values))
        out.append(TimeSeries(values, name=f"live{i}"))
    return out


def _shifted_series(rng, n):
    """Traffic far outside the training envelope (offset + variance)."""
    return [
        TimeSeries(
            300.0 + 80.0 * rng.normal(size=LENGTH), name=f"shift{i}"
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def trained_engine():
    rng = np.random.default_rng(42)
    series, labels = _training_corpus(rng)
    engine = ADarts(
        config=FAST_CONFIG, classifier_names=["knn", "decision_tree"]
    )
    X = engine.extractor.extract_many(series)
    engine.fit_features(X, labels)
    assert engine.feature_baseline_ is not None
    return engine, series


class TestServingEndToEnd:
    def test_monitor_drift_and_health_document(self, trained_engine, tmp_path):
        engine, corpus = trained_engine
        rng = np.random.default_rng(99)
        observer = RecordingServingObserver()
        monitor = InferenceMonitor(
            engine,
            window=512,
            drift_window=128,
            drift_min_samples=64,
            observer=observer,
        )

        # -- phase 1: >= 200 in-distribution recommendations --------------
        live = _in_distribution_series(rng, 200, corpus)
        for start in range(0, len(live), 8):
            monitor.recommend_many(live[start : start + 8])
        assert monitor.n_series >= 200
        assert monitor.n_requests == 25
        detector = monitor.drift_detector
        assert detector is not None
        assert detector.last_report is not None, "drift window warmed up"
        assert not detector.last_report.triggered, (
            f"in-distribution traffic must not trigger drift "
            f"(max PSI {detector.last_report.max_psi:.3f})"
        )
        assert detector.n_alerts == 0
        assert observer.of_type("drift_alert") == []
        assert len(observer.of_type("request")) == 25

        # Confidence/disagreement windows carry plausible values.
        confidence = monitor.confidence.values()
        assert np.all((confidence > 0.0) & (confidence <= 1.0))
        assert np.all(monitor.disagreement.values() >= 0.0)
        assert sum(monitor.recommendation_mix.values()) == monitor.n_series
        assert set(monitor.recommendation_mix) <= {"linear", "mean"}

        # -- phase 2: feature-shifted traffic triggers the detector --------
        shifted = _shifted_series(rng, 160)
        for start in range(0, len(shifted), 8):
            monitor.recommend_many(shifted[start : start + 8])
        assert detector.last_report.triggered, (
            f"shifted traffic must trigger drift "
            f"(max PSI {detector.last_report.max_psi:.3f})"
        )
        assert detector.n_alerts >= 1
        alerts = observer.of_type("drift_alert")
        assert len(alerts) == detector.n_alerts
        assert alerts[0]["report"].max_psi > detector.psi_threshold

        # -- phase 3: the health document, both renderings -----------------
        snapshot = monitor.snapshot()
        document = json.loads(snapshot.to_json())
        assert document["n_series"] == 360
        assert document["latency"]["count"] > 0
        assert document["latency"]["p95"] >= document["latency"]["p50"] >= 0
        assert document["confidence"]["count"] > 0
        assert document["drift"]["enabled"] is True
        assert document["drift"]["n_alerts"] >= 1
        assert document["drift"]["report"]["triggered"] is True
        assert document["caches"]["feature_cache"] is None or (
            "hit_rate" in document["caches"]["feature_cache"]
        )

        prometheus = snapshot.to_prometheus()
        assert "repro_serving_requests_total" in prometheus
        assert 'repro_serving_latency_seconds{stat="p99"}' in prometheus
        assert "repro_drift_psi_max" in prometheus
        assert "repro_drift_triggered 1" in prometheus
        assert "repro_drift_alerts_total" in prometheus

        # -- round trip through export -------------------------------------
        json_path = snapshot.export(tmp_path / "health.json")
        prom_path = snapshot.export(tmp_path / "health.prom")
        assert json.loads(json_path.read_text())["n_series"] == 360
        assert "repro_drift_psi_max" in prom_path.read_text()

        # -- CI artifact hook ----------------------------------------------
        out = os.environ.get("REPRO_HEALTH_SNAPSHOT_OUT")
        if out:
            snapshot.export(pathlib.Path(out))

    def test_monitored_results_identical_to_bare_engine(self, trained_engine):
        engine, corpus = trained_engine
        rng = np.random.default_rng(5)
        series = _in_distribution_series(rng, 10, corpus)
        monitor = InferenceMonitor(engine)
        monitored = monitor.recommend_many(series)
        bare = engine.recommend_many(series)
        for a, b in zip(monitored, bare):
            assert a.algorithm == b.algorithm
            assert a.ranking == b.ranking
            assert np.allclose(
                sorted(a.probabilities.values()),
                sorted(b.probabilities.values()),
            )

    def test_ledger_and_scorecards_during_serving(
        self, trained_engine, tmp_path
    ):
        engine, corpus = trained_engine
        # fit_features has no clustering phase, so register the two
        # training families as atlas representatives by hand.
        t = np.linspace(0, 4 * np.pi, LENGTH)
        atlas = ClusterAtlas()
        atlas.add("corpus:c0", "linear", np.sin(t))
        atlas.add(
            "corpus:c1",
            "mean",
            np.mean([s.values for s in corpus[20:]], axis=0),
        )
        engine.cluster_atlas_ = atlas

        ledger_path = tmp_path / "serving_ledger.jsonl"
        ledger = RepairLedger(ledger_path)
        monitor = InferenceMonitor(engine, drift_min_samples=8)
        rng = np.random.default_rng(7)
        live = _in_distribution_series(rng, 24, corpus)
        with use_tracer(Tracer()), use_ledger(ledger):
            recommendations = monitor.recommend_many(live)
        ledger.close()

        # Every served series produced a repair row with full lineage.
        rows = read_ledger(ledger_path)
        repairs = [r for r in rows if r["kind"] == "repair"]
        assert len(repairs) == 24
        assert all(r["data"]["source"] == "monitor" for r in repairs)
        assert all(r["trace_id"] for r in repairs), (
            "monitor spans must stamp trace ids onto ledger rows"
        )
        assert all(r["data"]["cluster"]["cluster"] for r in repairs)
        assert all(rec.repair_id for rec in recommendations)

        # Scorecards accumulate per imputer and per cluster.
        cards = monitor.scorecard_summary()
        assert set(cards["per_imputer"]) <= {"linear", "mean"}
        assert sum(c["n"] for c in cards["per_imputer"].values()) == 24
        for card in cards["per_imputer"].values():
            assert 0.0 < card["mean_confidence"] <= 1.0
        assert cards["per_cluster"]
        assert sum(c["n"] for c in cards["per_cluster"].values()) == 24
        for card in cards["per_cluster"].values():
            assert -1.0 <= card["mean_ncc"] <= 1.0

        # Both health-document renderings surface the scorecards.
        snapshot = monitor.snapshot()
        document = snapshot.as_dict()
        assert document["scorecards"]["per_imputer"] == cards["per_imputer"]
        prometheus = snapshot.to_prometheus()
        assert "repro_serving_imputer_series_total" in prometheus
        assert "repro_serving_imputer_confidence_mean" in prometheus
        assert "repro_serving_cluster_ncc_mean" in prometheus

        # -- CI artifact hook ----------------------------------------------
        out = os.environ.get("REPRO_LEDGER_OUT")
        if out:
            shutil.copyfile(ledger_path, pathlib.Path(out))

    def test_serving_without_ledger_unchanged(self, trained_engine):
        engine, corpus = trained_engine
        rng = np.random.default_rng(13)
        series = _in_distribution_series(rng, 6, corpus)
        monitor = InferenceMonitor(engine)
        recommendations = monitor.recommend_many(series)
        # No ledger installed: no repair ids, but scorecards still work.
        assert all(rec.repair_id is None for rec in recommendations)
        cards = monitor.scorecard_summary()
        assert sum(c["n"] for c in cards["per_imputer"].values()) == 6

    def test_baseline_survives_save_load(self, trained_engine, tmp_path):
        from repro.core.serialization import load_engine, save_engine

        engine, corpus = trained_engine
        path = save_engine(engine, tmp_path / "engine.json")
        restored = load_engine(path)
        assert restored.feature_baseline_ is not None
        monitor = InferenceMonitor(restored, drift_min_samples=8)
        assert monitor.drift_detector is not None
        rng = np.random.default_rng(3)
        recs = monitor.recommend_many(
            _in_distribution_series(rng, 8, corpus)
        )
        assert len(recs) == 8
        assert monitor.drift_detector.last_report is not None
