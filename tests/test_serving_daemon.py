"""End-to-end tests of the sharded serving daemon.

The acceptance scenario: four process shards serve a seeded 500-request
load whose responses must be identical to the library path
(``ADarts.repair_many``), with zero per-request engine pickling —
asserted through the :class:`AccountingRegistry` shared-memory counters
(the engine's two segments are published once at startup and never
again).  Around it: admission-control shedding, the JSON-lines socket
front-end, and the HealthSnapshot/Prometheus surface.
"""

from __future__ import annotations

import json
import socket as socket_mod
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ValidationError
from repro.observability.resources import get_accounting
from repro.parallel.shm import active_segments, shm_available
from repro.serving import (
    LoadGenerator,
    RepairRequest,
    ServingDaemon,
    ServingTestClient,
    SocketServer,
    decode_response,
    encode_request,
)
from repro.timeseries import TimeSeries


def library_repairs(engine, requests):
    """The non-daemon reference path for the same inputs."""
    series = [TimeSeries(r.values, name=r.name) for r in requests]
    recommendations = engine.recommend_many(series)
    return (
        recommendations,
        engine.repair_many(series, recommendations),
    )


class SlowEngine:
    """Engine stub with a controllable per-batch service time."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s

    def recommend_many(self, series_list):
        class Rec:
            algorithm = "stub"
            ranking = ("stub",)
            probabilities = {"stub": 1.0}
            degraded = False

        if self.delay_s:
            time.sleep(self.delay_s)
        return [Rec() for _ in series_list]

    def repair_many(self, series_list, recommendations=None):
        return [
            s.with_values(np.nan_to_num(s.values)) for s in series_list
        ]


# ---------------------------------------------------------------------------
# The acceptance E2E
# ---------------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestFourShardAcceptance:
    N_REQUESTS = 500

    def test_500_requests_parity_and_zero_pickling(self, serving_engine):
        generator = LoadGenerator(seed=9, length=96)
        requests = generator.requests(self.N_REQUESTS)

        accounting = get_accounting()
        before_start = accounting.snapshot()
        with ServingDaemon(
            serving_engine,
            n_shards=4,
            shard_backend="process",
            max_batch=16,
            max_delay_s=0.002,
        ) as daemon:
            after_start = accounting.snapshot()
            client = ServingTestClient(daemon)
            responses = client.send_many(requests, timeout=600.0)
            after_load = accounting.snapshot()
            stats = daemon.stats()

        def shm_counters(snapshot):
            account = snapshot["accounts"].get("shared_memory", {})
            kernel = snapshot["kernels"].get("shm_create", {})
            return (
                account.get("allocations", 0),
                kernel.get("calls", 0),
            )

        # Startup publishes exactly two segments (engine doc + matrix)...
        start_allocs, start_creates = (
            np.subtract(shm_counters(after_start), shm_counters(before_start))
        )
        assert start_allocs == 2
        assert start_creates == 2
        # ...and 500 requests publish nothing further: the engine is
        # never pickled or re-exported per request.
        load_allocs, load_creates = (
            np.subtract(shm_counters(after_load), shm_counters(after_start))
        )
        assert load_allocs == 0
        assert load_creates == 0

        # Nothing dropped, nothing shed, responses in request order.
        assert len(responses) == self.N_REQUESTS
        assert [r.id for r in responses] == [r.id for r in requests]
        assert all(r.status == 200 for r in responses)
        assert stats["shed"] == 0 and stats["errors"] == 0
        assert {r.shard for r in responses} == {0, 1, 2, 3}

        # Byte-identical to the library path.
        recommendations, repaired = library_repairs(serving_engine, requests)
        for response, rec, fixed in zip(responses, recommendations, repaired):
            assert response.algorithm == rec.algorithm
            assert list(response.ranking) == list(rec.ranking)
            assert np.array_equal(
                response.values, fixed.values, equal_nan=True
            )

        # Engine segments are gone once the daemon stops.
        assert active_segments() == ()


# ---------------------------------------------------------------------------
# Daemon behaviour on the stub engine (fast)
# ---------------------------------------------------------------------------
class TestDaemonCore:
    def make_daemon(self, **kwargs):
        kwargs.setdefault("n_shards", 1)
        kwargs.setdefault("shard_backend", "inline")
        kwargs.setdefault("max_batch", 4)
        kwargs.setdefault("max_delay_s", 0.001)
        return ServingDaemon(SlowEngine(), **kwargs)

    def test_submit_type_checked(self):
        with self.make_daemon() as daemon:
            with pytest.raises(ProtocolError):
                daemon.submit({"id": "x", "values": [1.0]})

    def test_submit_before_start_sheds(self):
        daemon = self.make_daemon()
        response = daemon.submit(
            RepairRequest(id="r", values=np.ones(8))
        ).result(timeout=5)
        assert response.status == 503
        assert response.retry_after_ms is not None

    def test_max_pending_sheds_with_typed_503(self):
        with self.make_daemon(
            max_pending=4, shard_backend="inline",
            max_batch=64, max_delay_s=0.2,
        ) as daemon:
            daemon.engine.delay_s = 0.2
            futures = [
                daemon.submit(
                    RepairRequest(id=f"r{i}", values=np.ones(8))
                )
                for i in range(32)
            ]
            responses = [f.result(timeout=30) for f in futures]
        statuses = {r.status for r in responses}
        shed = [r for r in responses if r.status == 503]
        assert statuses <= {200, 503}
        assert shed, "admission control never engaged"
        assert all(r.retry_after_ms is not None for r in shed)
        assert all(
            "overloaded" in r.error or "not accepting" in r.error
            for r in shed
        )
        # Every admitted request was served: nothing dropped.
        assert len(responses) == 32

    def test_bad_series_gets_400_without_failing_batch(self, serving_engine):
        with ServingDaemon(
            serving_engine, n_shards=1, shard_backend="inline",
            max_batch=4, max_delay_s=0.001,
        ) as daemon:
            client = ServingTestClient(daemon)
            good = LoadGenerator(seed=1, length=96).request(0)
            bad = RepairRequest(id="bad", values=np.full(4, np.nan))
            responses = client.send_many([good, bad, good])
        assert [r.status for r in responses] == [200, 400, 200]
        assert "invalid series" in responses[1].error

    def test_validation(self):
        with pytest.raises(ValidationError):
            ServingDaemon(SlowEngine(), max_pending=0)
        with pytest.raises(ValidationError):
            ServingDaemon(SlowEngine(), n_shards=0)
        with pytest.raises(ValidationError):
            ServingDaemon(SlowEngine(), shard_backend="quantum")

    def test_health_snapshot_renders(self, serving_engine):
        with ServingDaemon(
            serving_engine, n_shards=2, shard_backend="inline",
            max_batch=8, max_delay_s=0.001,
        ) as daemon:
            client = ServingTestClient(daemon)
            client.send_many(LoadGenerator(seed=2, length=96).requests(12))
            snapshot = daemon.health()
        document = json.loads(snapshot.to_json())
        assert document["n_requests"] == 12
        assert set(document["scorecards"]["per_shard"]) == {"0", "1"}
        assert document["scorecards"]["batching"]["items"] == 12
        assert document["slo"]["n_events"] == 12
        assert document["alerts"]["shed_requests"] == 0
        prom = snapshot.to_prometheus()
        assert "repro_serving_requests_total 12" in prom
        assert "repro_slo_burn_rate_fast" in prom

    def test_health_snapshot_feeds_dashboard(self, serving_engine):
        from repro.observability.dashboard import render_top

        with ServingDaemon(
            serving_engine, n_shards=1, shard_backend="inline",
            max_batch=4, max_delay_s=0.001,
        ) as daemon:
            client = ServingTestClient(daemon)
            client.send_many(LoadGenerator(seed=3, length=96).requests(4))
            frame = render_top(daemon.health().as_dict(), color=False)
        assert "SLO" in frame or "latency" in frame.lower()

    def test_merged_shard_sketch_matches_fleet_view(self, serving_engine):
        with ServingDaemon(
            serving_engine, n_shards=2, shard_backend="inline",
            max_batch=4, max_delay_s=0.001,
        ) as daemon:
            client = ServingTestClient(daemon)
            client.send_many(LoadGenerator(seed=4, length=96).requests(16))
            merged = daemon.pool.merged_sketch()
            per_shard = [s.sketch for s in daemon.pool._shards]
        assert merged.count == sum(s.count for s in per_shard)
        assert merged.count == 16


# ---------------------------------------------------------------------------
# Socket front-end
# ---------------------------------------------------------------------------
class TestSocketServer:
    def test_roundtrip_and_malformed_lines(self, serving_engine):
        generator = LoadGenerator(seed=5, length=96)
        requests = generator.requests(6)
        with ServingDaemon(
            serving_engine, n_shards=1, shard_backend="inline",
            max_batch=4, max_delay_s=0.001,
        ) as daemon:
            with SocketServer(daemon, port=0) as server:
                with socket_mod.create_connection(server.address) as conn:
                    stream = conn.makefile("rwb")
                    for request in requests:
                        stream.write(encode_request(request) + b"\n")
                    stream.write(b"this is not json\n")
                    stream.flush()
                    responses = [
                        decode_response(stream.readline())
                        for _ in range(len(requests) + 1)
                    ]
        by_id = {r.id: r for r in responses}
        for request in requests:
            assert by_id[request.id].status == 200
        garbage = by_id[""]
        assert garbage.status == 400
        assert "JSON" in garbage.error

    def test_concurrent_clients(self, serving_engine):
        generator = LoadGenerator(seed=6, length=96)
        with ServingDaemon(
            serving_engine, n_shards=2, shard_backend="inline",
            max_batch=8, max_delay_s=0.001,
        ) as daemon:
            with SocketServer(daemon, port=0) as server:
                results = {}

                def client(offset):
                    requests = generator.requests(8, start=offset)
                    with socket_mod.create_connection(
                        server.address
                    ) as conn:
                        stream = conn.makefile("rwb")
                        for request in requests:
                            stream.write(encode_request(request) + b"\n")
                        stream.flush()
                        got = [
                            decode_response(stream.readline())
                            for _ in requests
                        ]
                    results[offset] = (requests, got)

                threads = [
                    threading.Thread(target=client, args=(k,))
                    for k in (0, 100, 200)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
        assert set(results) == {0, 100, 200}
        for requests, got in results.values():
            assert {r.id for r in got} == {r.id for r in requests}
            assert all(r.status == 200 for r in got)
