"""Unit tests for imputation evaluation and ranking."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imputation import get_imputer
from repro.imputation.base import BaseImputer
from repro.imputation.evaluation import (
    evaluate_imputer,
    imputation_mae,
    imputation_rmse,
    rank_imputers,
)


@pytest.fixture
def truth():
    return np.vstack([np.linspace(0, 1, 50)] * 4)


@pytest.fixture
def mask(truth):
    m = np.zeros_like(truth, dtype=bool)
    m[0, 10:20] = True
    return m


class TestErrorMetrics:
    def test_rmse_zero_for_perfect(self, truth, mask):
        assert imputation_rmse(truth, truth, mask) == 0.0

    def test_rmse_known_value(self):
        truth = np.array([[1.0, 2.0]])
        imputed = np.array([[1.0, 4.0]])
        mask = np.array([[False, True]])
        assert imputation_rmse(truth, imputed, mask) == pytest.approx(2.0)

    def test_mae_known_value(self):
        truth = np.array([[0.0, 0.0]])
        imputed = np.array([[3.0, -1.0]])
        mask = np.array([[True, True]])
        assert imputation_mae(truth, imputed, mask) == pytest.approx(2.0)

    def test_only_masked_entries_count(self):
        truth = np.array([[1.0, 2.0]])
        imputed = np.array([[999.0, 2.0]])
        mask = np.array([[False, True]])
        assert imputation_rmse(truth, imputed, mask) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            imputation_rmse(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2), bool))

    def test_empty_mask_raises(self, truth):
        with pytest.raises(ValidationError):
            imputation_rmse(truth, truth, np.zeros_like(truth, dtype=bool))


class TestEvaluateImputer:
    def test_linear_on_linear_is_exact(self, truth, mask):
        assert evaluate_imputer(get_imputer("linear"), truth, mask) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_mae_metric(self, truth, mask):
        value = evaluate_imputer(get_imputer("mean"), truth, mask, metric="mae")
        assert value > 0

    def test_unknown_metric_raises(self, truth, mask):
        with pytest.raises(ValidationError):
            evaluate_imputer(get_imputer("mean"), truth, mask, metric="mape")

    def test_crashing_imputer_scores_inf(self, truth, mask):
        class Crasher(BaseImputer):
            name = "crasher_eval_test"

            def _impute(self, X, m):
                raise RuntimeError("boom")

        assert evaluate_imputer(Crasher(), truth, mask) == float("inf")


class TestRankImputers:
    def test_sorted_ascending(self, truth, mask):
        imputers = [get_imputer(n) for n in ("mean", "linear")]
        ranked = rank_imputers(imputers, truth, mask)
        assert ranked[0][0] == "linear"  # exact on linear data
        assert ranked[0][1] <= ranked[1][1]

    def test_deterministic_tie_break_by_name(self, truth, mask):
        imputers = [get_imputer("linear"), get_imputer("linear")]
        ranked = rank_imputers(imputers, truth, mask)
        assert [name for name, _ in ranked] == ["linear", "linear"]

    def test_empty_list_raises(self, truth, mask):
        with pytest.raises(ValidationError):
            rank_imputers([], truth, mask)
