"""Exposition-validity tests for every Prometheus text export path.

A hand-rolled parser (regex-free tokenizer for the Prometheus text
format: ``name{label="value",...} float``) validates that every line of
``MetricsRegistry.to_prometheus`` and ``HealthSnapshot.to_prometheus``
parses, that no series is emitted twice, that label escaping
round-trips through the parser, and that counters are monotone across
two successive snapshots.
"""

import math

import numpy as np
import pytest

from repro.observability.metrics import (
    MetricsRegistry,
    _escape_label_value,
    build_info,
)


def _unescape(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text format into ``{(name, labels): value}``.

    Raises ``ValueError`` on any malformed line, duplicated series, or
    ``# TYPE``/``# HELP`` header for a name that never appears.
    """
    series: dict = {}
    headers: dict = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {line_no}: malformed comment {line!r}")
            if parts[1] == "TYPE" and parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped",
            ):
                raise ValueError(f"line {line_no}: bad type {parts[3]!r}")
            headers.setdefault(parts[2], set()).add(parts[1])
            continue
        # sample line: name[{labels}] value
        brace = line.find("{")
        labels: tuple = ()
        if brace != -1:
            close = line.rfind("}")
            if close == -1:
                raise ValueError(f"line {line_no}: unclosed label braces")
            name = line[:brace]
            body, rest = line[brace + 1: close], line[close + 1:]
            labels = tuple(sorted(_parse_labels(body, line_no)))
        else:
            name, _, rest = line.partition(" ")
        name = name.strip()
        if not name or not all(
            c.isalnum() or c in "_:" for c in name
        ) or name[0].isdigit():
            raise ValueError(f"line {line_no}: bad metric name {name!r}")
        fields = rest.strip().split()
        if not fields:
            raise ValueError(f"line {line_no}: sample without a value")
        value = fields[0]
        parsed = float(value)  # raises on malformed numbers
        if math.isnan(parsed) and value not in ("NaN", "nan"):
            raise ValueError(f"line {line_no}: bad value {value!r}")
        key = (name, labels)
        if key in series:
            raise ValueError(f"line {line_no}: duplicate series {key}")
        series[key] = parsed
    return series


def _parse_labels(body: str, line_no: int) -> list:
    pairs = []
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq == -1 or body[eq + 1] != '"':
            raise ValueError(f"line {line_no}: malformed labels {body!r}")
        label_name = body[i:eq].strip().lstrip(",").strip()
        j = eq + 2
        raw = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                raw.append(body[j: j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"line {line_no}: unterminated label value")
        pairs.append((label_name, _unescape("".join(raw))))
        i = j + 1
    return pairs


def _snapshot(monitor):
    from repro.observability.serving import HealthSnapshot

    return HealthSnapshot.collect(monitor)


@pytest.fixture()
def monitor():
    from repro.observability.serving import InferenceMonitor

    class _Engine:
        extractor = None
        is_fitted = True

    return InferenceMonitor(_Engine())


class TestEscaping:
    @pytest.mark.parametrize(
        "value",
        [
            "plain",
            'quo"ted',
            "back\\slash",
            "new\nline",
            'all\\of"them\ntogether',
            "",
        ],
    )
    def test_label_escaping_round_trips(self, value):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", labels={"key": value}).inc()
        series = parse_exposition(registry.to_prometheus())
        labelled = {
            labels: v
            for (name, labels), v in series.items()
            if name == "repro_x_total"
        }
        assert labelled == {(("key", value),): 1.0}

    def test_escape_order_backslash_first(self):
        # Escaping the backslash last would corrupt pre-escaped quotes.
        assert _escape_label_value('a\\"b') == 'a\\\\\\"b'
        assert _unescape(_escape_label_value('a\\"b')) == 'a\\"b'

    def test_registry_exposition_is_valid(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total", "events").inc(3)
        registry.gauge("repro_depth", "depth").set(2.5)
        registry.histogram("repro_wait_seconds", "wait").observe(0.1)
        series = parse_exposition(registry.to_prometheus())
        assert ("repro_events_total", ()) in series

    def test_build_info_present_in_registry_export(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total", "events").inc()
        series = parse_exposition(registry.to_prometheus())
        rows = [key for key in series if key[0] == "repro_build_info"]
        assert len(rows) == 1
        labels = dict(rows[0][1])
        assert set(labels) == {"version", "git_sha"}
        assert labels["version"] == build_info()["version"]
        assert series[rows[0]] == 1.0


class TestHealthSnapshotExposition:
    def test_every_line_parses_no_duplicates(self, monitor):
        monitor.latency_sketch.update(0.01)
        monitor.slo_tracker.record_latency(
            0.01, slices=("imputer:cdrec",), check=False
        )
        monitor.slo_tracker.evaluate()
        text = _snapshot(monitor).to_prometheus()
        series = parse_exposition(text)  # raises on any violation
        names = {name for name, _ in series}
        for expected in (
            "repro_build_info",
            "repro_slo_events_total",
            "repro_slo_alerts_total",
            "repro_slo_burn_rate_fast",
            "repro_slo_burn_rate_slow",
            "repro_slo_budget_remaining",
            "repro_slo_alerting",
            "repro_process_rss_bytes",
            "repro_process_rss_hwm_bytes",
            "repro_serving_latency_seconds",
        ):
            assert expected in names, f"missing series {expected}"

    def test_counters_monotone_across_snapshots(self, monitor):
        counter_names = (
            "repro_serving_requests_total",
            "repro_slo_events_total",
            "repro_slo_alerts_total",
            "repro_kernel_calls_total",
            "repro_kernel_bytes_moved_total",
            "repro_backend_decisions_total",
        )

        def counters(text):
            return {
                key: value
                for key, value in parse_exposition(text).items()
                if key[0] in counter_names
            }

        monitor.slo_tracker.record_latency(0.01, check=False)
        first = counters(_snapshot(monitor).to_prometheus())
        # More traffic plus a kernel call in between.
        from repro.timeseries.batch import SeriesBank

        bank = SeriesBank(np.random.default_rng(0).normal(size=(4, 32)))
        bank.corr_matrix()
        for _ in range(5):
            monitor.slo_tracker.record_latency(0.01, check=False)
        second = counters(_snapshot(monitor).to_prometheus())
        assert second[("repro_slo_events_total", ())] > \
            first[("repro_slo_events_total", ())]
        for key, value in first.items():
            assert second.get(key, 0.0) >= value, f"counter {key} regressed"

    def test_sketch_quantiles_exported(self, monitor):
        for value in (0.01, 0.02, 0.03):
            monitor.latency_sketch.update(value)
        series = parse_exposition(_snapshot(monitor).to_prometheus())
        stats = {
            dict(labels)["stat"]
            for (name, labels) in series
            if name == "repro_serving_latency_seconds"
        }
        assert {"sketch_p50", "sketch_p99"} <= stats

    def test_build_info_emitted_once(self, monitor):
        text = _snapshot(monitor).to_prometheus()
        rows = [
            line for line in text.splitlines()
            if line.startswith("repro_build_info{")
        ]
        assert len(rows) == 1

    def test_parser_rejects_garbage(self):
        for bad in (
            "no_value_metric",
            'unclosed{key="x" 1.0',
            "repro_x{} not_a_number",
            "# BADCOMMENT x y",
            "repro_x 1\nrepro_x 2",
        ):
            with pytest.raises(ValueError):
                parse_exposition(bad)
