"""Parity tests for the blockwise feature kernels.

The contract: every feature computed by the blockwise kernels
(``statistical_features_block`` / ``topological_features_block`` /
``FeatureExtractor.extract_block``) matches the scalar per-series path to
1e-9 on the corresponding row, including the degenerate-input guards
(constant rows, too-short series, zero spectra).
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.features.extractor import FeatureExtractor
from repro.features.statistical import (
    STATISTICAL_FEATURE_NAMES,
    statistical_features,
    statistical_features_block,
)
from repro.features.topological import (
    TOPOLOGICAL_FEATURE_NAMES,
    _mst_edge_lengths,
    _mst_edge_lengths_block,
    topological_features,
    topological_features_block,
)
from repro.timeseries.batch import (
    SeriesBank,
    bank_cache_stats,
    reset_bank_cache_stats,
)
from repro.timeseries.series import TimeSeries


def _mixed_matrix(rng, n, length):
    """Random walks plus the degenerate rows every guard must handle."""
    matrix = np.vstack([rng.normal(size=length).cumsum() for _ in range(n)])
    matrix[0] = 2.5  # constant
    matrix[1] = 0.0  # all-zero
    if n > 3:
        matrix[2] = np.sin(np.linspace(0, 12.56, length)) * 5 + 1
        matrix[3] = np.arange(length, dtype=float)  # exact linear trend
    return matrix


class TestStatisticalBlock:
    @pytest.mark.parametrize("length", [4, 5, 16, 64, 256])
    def test_matches_scalar_per_row(self, length):
        rng = np.random.default_rng(length)
        matrix = _mixed_matrix(rng, 6, length)
        block = statistical_features_block(matrix)
        assert tuple(block.keys()) == STATISTICAL_FEATURE_NAMES
        for i, row in enumerate(matrix):
            scalar = statistical_features(row.copy())
            for name in STATISTICAL_FEATURE_NAMES:
                assert block[name][i] == pytest.approx(
                    scalar[name], rel=1e-9, abs=1e-9
                ), (name, i, length)

    def test_single_sample_rows(self):
        matrix = np.array([[3.0], [0.0], [-1.5]])
        block = statistical_features_block(matrix)
        for i, row in enumerate(matrix):
            scalar = statistical_features(row.copy())
            for name in STATISTICAL_FEATURE_NAMES:
                assert block[name][i] == pytest.approx(scalar[name], abs=1e-12)

    def test_rejects_bad_input(self):
        with pytest.raises(ValidationError):
            statistical_features_block(np.ones(8))  # 1-D
        with pytest.raises(ValidationError):
            statistical_features_block(np.empty((0, 4)))
        with pytest.raises(ValidationError):
            statistical_features_block(np.array([[1.0, np.nan]]))

    def test_all_outputs_finite(self):
        rng = np.random.default_rng(0)
        matrix = _mixed_matrix(rng, 8, 32) * 1e150  # provoke overflow paths
        block = statistical_features_block(matrix)
        for name, col in block.items():
            assert np.isfinite(col).all(), name


class TestTopologicalBlock:
    @pytest.mark.parametrize("length", [6, 16, 64, 300])
    def test_matches_scalar_per_row(self, length):
        rng = np.random.default_rng(length)
        matrix = _mixed_matrix(rng, 5, length)
        block = topological_features_block(matrix)
        assert tuple(block.keys()) == TOPOLOGICAL_FEATURE_NAMES
        for i, row in enumerate(matrix):
            scalar = topological_features(row.copy())
            for name in TOPOLOGICAL_FEATURE_NAMES:
                assert block[name][i] == pytest.approx(
                    scalar[name], rel=1e-9, abs=1e-9
                ), (name, i, length)

    def test_too_short_for_embedding_zeroes_rips(self):
        matrix = np.random.default_rng(0).normal(size=(3, 4))
        block = topological_features_block(matrix)  # n_vectors < 2
        for name in TOPOLOGICAL_FEATURE_NAMES:
            if name.startswith("topo_rips"):
                assert np.all(block[name] == 0.0)
        scalar = topological_features(matrix[0].copy())
        for name in TOPOLOGICAL_FEATURE_NAMES:
            assert block[name][0] == pytest.approx(scalar[name], abs=1e-12)

    def test_lockstep_mst_matches_dense_prim(self):
        rng = np.random.default_rng(3)
        clouds = rng.normal(size=(7, 20, 3))
        sq = ((clouds[:, :, None, :] - clouds[:, None, :, :]) ** 2).sum(axis=3)
        batch = _mst_edge_lengths_block(sq)
        for i in range(clouds.shape[0]):
            np.testing.assert_array_equal(batch[i], _mst_edge_lengths(clouds[i]))


class TestExtractorBlock:
    def test_bank_extraction_matches_scalar(self):
        rng = np.random.default_rng(5)
        bank = SeriesBank(_mixed_matrix(rng, 6, 96))
        fx = FeatureExtractor()
        matrix = fx.extract_many(bank)
        assert matrix.shape == (bank.n, fx.n_features)
        reference = np.vstack([fx.extract(bank.raw[i]) for i in range(bank.n)])
        np.testing.assert_allclose(matrix, reference, rtol=1e-9, atol=1e-9)

    def test_batched_list_matches_serial_with_mixed_lengths(self):
        rng = np.random.default_rng(6)
        series = []
        for i in range(9):
            values = rng.normal(size=64 if i % 2 else 100).cumsum()
            if i % 3 == 0:
                values[4:9] = np.nan  # interpolated identically on both paths
            series.append(TimeSeries(values, name=f"s{i}"))
        fx = FeatureExtractor()
        serial = fx.extract_many(series)
        batched = fx.extract_many(series, batched=True)
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-9)

    def test_block_rejects_missing_pattern_family(self):
        fx = FeatureExtractor(use_missing_pattern=True)
        with pytest.raises(ValidationError):
            fx.extract_block(np.ones((2, 32)))
        # extract_many silently falls back to the per-series path.
        series = [TimeSeries(np.arange(32.0)) for _ in range(2)]
        out = fx.extract_many(series, batched=True)
        np.testing.assert_allclose(out, fx.extract_many(series))

    def test_float32_mode_close_to_float64(self):
        rng = np.random.default_rng(7)
        bank = SeriesBank(_mixed_matrix(rng, 8, 128))
        exact = FeatureExtractor().extract_many(bank)
        approx = FeatureExtractor(compute_dtype="float32").extract_many(bank)
        assert approx.dtype == np.float64  # accumulation stays float64
        np.testing.assert_allclose(approx, exact, rtol=1e-3, atol=1e-3)

    def test_compute_dtype_validated_and_fingerprinted(self):
        with pytest.raises(ValidationError):
            FeatureExtractor(compute_dtype="float16")
        default = FeatureExtractor().fingerprint
        f32 = FeatureExtractor(compute_dtype="float32").fingerprint
        assert default != f32
        # The historical float64 fingerprint is unchanged (cache compat).
        assert ("compute_dtype", "float32") in f32
        assert all("compute_dtype" not in str(part) for part in default)

    def test_bank_cache_hits_counted_and_surfaced(self):
        rng = np.random.default_rng(8)
        bank = SeriesBank(_mixed_matrix(rng, 5, 64))
        fx = FeatureExtractor()
        reset_bank_cache_stats()
        first = fx.extract_many(bank)
        assert bank_cache_stats()["misses"] >= 1
        second = fx.extract_many(bank)
        stats = bank_cache_stats()
        assert stats["hits"] >= 1
        assert 0.0 < stats["hit_rate"] <= 1.0
        np.testing.assert_array_equal(first, second)

    def test_health_snapshot_reports_series_bank_cache(self):
        from repro.observability.serving import HealthSnapshot, InferenceMonitor

        class _Engine:
            extractor = None
            is_fitted = True

        snapshot = HealthSnapshot.collect(InferenceMonitor(_Engine()))
        assert "series_bank" in snapshot.caches
        assert set(snapshot.caches["series_bank"]) == {
            "hits", "misses", "hit_rate",
        }
