"""Tests for resource accounting: registry, instrumentation, stamps."""

import gc

import numpy as np
import pytest

from repro.observability.resources import (
    AccountingRegistry,
    get_accounting,
    resource_stamp,
    sample_rss,
)


def _inc(x):
    return x + 1


@pytest.fixture(autouse=True)
def _clean_registry():
    get_accounting().reset()
    yield
    get_accounting().reset()


class TestAccountingRegistry:
    def test_account_add_sub_and_peak(self):
        registry = AccountingRegistry()
        registry.account_add("bank", 1000, items=2)
        registry.account_add("bank", 500)
        registry.account_sub("bank", 300, items=1)
        snapshot = registry.snapshot()
        row = snapshot["accounts"]["bank"]
        assert row["bytes"] == 1200
        assert row["peak_bytes"] == 1500
        assert row["items"] == 2
        assert row["allocated_bytes"] == 1500
        assert row["allocations"] == 2

    def test_account_never_goes_negative(self):
        registry = AccountingRegistry()
        registry.account_add("x", 100)
        registry.account_sub("x", 500)
        assert registry.account_bytes("x") == 0

    def test_account_clear(self):
        registry = AccountingRegistry()
        registry.account_add("x", 100, items=3)
        registry.account_clear("x")
        row = registry.snapshot()["accounts"]["x"]
        assert row["bytes"] == 0 and row["items"] == 0
        assert row["peak_bytes"] == 100  # peaks survive clears

    def test_kernel_counters_accumulate(self):
        registry = AccountingRegistry()
        registry.record_kernel("ncc", bytes_moved=100, chunks=2,
                               scratch_allocations=1)
        registry.record_kernel("ncc", bytes_moved=50, chunks=1)
        row = registry.snapshot()["kernels"]["ncc"]
        assert row["calls"] == 2
        assert row["bytes_moved"] == 150
        assert row["chunks"] == 3
        assert row["scratch_allocations"] == 1

    def test_backend_decisions(self):
        registry = AccountingRegistry()
        registry.record_backend_decision("serial")
        registry.record_backend_decision("process")
        registry.record_backend_decision("process")
        assert registry.snapshot()["backend_decisions"] == {
            "serial": 1, "process": 2,
        }

    def test_sample_reports_rss(self):
        registry = AccountingRegistry()
        sample = registry.sample()
        assert sample["rss_bytes"] > 0
        assert sample["hwm_bytes"] >= sample["rss_bytes"] > 0

    def test_reset(self):
        registry = AccountingRegistry()
        registry.account_add("x", 10)
        registry.record_kernel("k")
        registry.record_backend_decision("serial")
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["accounts"] == {}
        assert snapshot["kernels"] == {}
        assert snapshot["backend_decisions"] == {}

    def test_sample_rss_positive(self):
        sample = sample_rss()
        assert sample["rss_bytes"] > 0
        assert sample["hwm_bytes"] >= sample["rss_bytes"]

    def test_resource_stamp_keys(self):
        stamp = resource_stamp()
        assert set(stamp) == {
            "rss_bytes", "rss_hwm_bytes", "series_bank_bytes",
            "series_bank_disk_bytes", "feature_cache_bytes",
            "score_memo_bytes", "shared_memory_bytes",
        }
        assert stamp["rss_bytes"] > 0

    def test_global_registry_is_singleton(self):
        assert get_accounting() is get_accounting()


class TestComponentInstrumentation:
    def test_series_bank_accounts_and_releases_on_gc(self):
        from repro.timeseries.batch import SeriesBank

        registry = get_accounting()
        base = registry.account_bytes("series_bank")
        rng = np.random.default_rng(0)
        bank = SeriesBank(rng.normal(size=(8, 64)))
        held = registry.account_bytes("series_bank") - base
        assert held >= bank.raw.nbytes
        del bank
        gc.collect()
        assert registry.account_bytes("series_bank") == base

    def test_series_bank_derived_arrays_grow_account(self):
        from repro.timeseries.batch import SeriesBank

        registry = get_accounting()
        rng = np.random.default_rng(1)
        bank = SeriesBank(rng.normal(size=(8, 64)))
        before = registry.account_bytes("series_bank")
        bank.cached("extra", lambda: np.zeros((8, 64)))
        assert registry.account_bytes("series_bank") > before
        del bank
        gc.collect()

    def test_feature_cache_tracks_bytes(self):
        from repro.parallel.cache import FeatureCache

        registry = get_accounting()
        cache = FeatureCache()
        vec = np.arange(10, dtype=float)
        cache.put("a" * 40, vec)
        assert registry.account_bytes("feature_cache") >= vec.nbytes
        assert cache.stats()["bytes"] >= vec.nbytes
        cache.clear()
        assert registry.account_bytes("feature_cache") == 0

    def test_feature_cache_replacement_is_delta_accounted(self):
        from repro.parallel.cache import FeatureCache

        registry = get_accounting()
        cache = FeatureCache()
        key = "k" * 40
        cache.put(key, np.zeros(100))
        cache.put(key, np.zeros(10))  # replace with a smaller vector
        assert registry.account_bytes("feature_cache") == \
            np.zeros(10).nbytes

    def test_score_memo_tracks_bytes(self):
        from repro.parallel.cache import ScoreMemo

        registry = get_accounting()
        memo = ScoreMemo()
        memo.put(("pipe", "fold"), 0.5)
        assert registry.account_bytes("score_memo") > 0
        memo.clear()
        assert registry.account_bytes("score_memo") == 0

    def test_shared_array_accounts_lifecycle(self):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.parallel.shm import SharedArray

        registry = get_accounting()
        arr = SharedArray.create(np.arange(32, dtype=float))
        try:
            assert registry.account_bytes("shared_memory") >= 32 * 8
            assert "shm_create" in registry.snapshot()["kernels"]
        finally:
            arr.close()
            arr.unlink()
        assert registry.account_bytes("shared_memory") == 0
        # Double-unlink must not drive the account negative (guarded by
        # the _CREATED liveness check).
        arr.unlink()
        assert registry.account_bytes("shared_memory") == 0

    def test_batch_kernels_record_counters(self):
        from repro.timeseries.batch import SeriesBank, ncc_cross

        registry = get_accounting()
        rng = np.random.default_rng(2)
        bank = SeriesBank(rng.normal(size=(6, 64)))
        bank.corr_matrix()
        ncc_cross(bank.znorm[:3], bank.znorm[3:])
        kernels = registry.snapshot()["kernels"]
        assert kernels["corr_matrix"]["calls"] >= 1
        assert kernels["ncc_cross"]["bytes_moved"] > 0
        assert kernels["ncc_cross"]["chunks"] >= 1

    def test_extractor_block_kernel_recorded(self):
        from repro.features.extractor import FeatureExtractor
        from repro.timeseries.series import TimeSeries

        registry = get_accounting()
        rng = np.random.default_rng(3)
        series = [
            TimeSeries(rng.normal(size=64), name=f"s{i}") for i in range(4)
        ]
        FeatureExtractor().extract_many(series, batched=True)
        kernels = registry.snapshot()["kernels"]
        assert "extract_block" in kernels
        assert kernels["extract_block"]["bytes_moved"] > 0

    def test_impute_block_kernel_recorded(self):
        from repro.imputation import get_imputer
        from repro.timeseries.series import TimeSeries

        registry = get_accounting()
        rng = np.random.default_rng(4)
        series = []
        for i in range(4):
            values = rng.normal(size=48)
            values[10:16] = np.nan
            series.append(TimeSeries(values, name=f"s{i}"))
        imputer = get_imputer("linear")
        imputer.impute_many(series)
        kernels = registry.snapshot()["kernels"]
        names = [k for k in kernels if k.startswith("impute_block.")]
        assert names, f"no impute_block kernel recorded: {sorted(kernels)}"
        assert kernels[names[0]]["chunks"] >= 1

    def test_executor_records_backend_decision(self):
        from repro.parallel import ParallelConfig
        from repro.parallel.executor import ExecutionEngine

        registry = get_accounting()
        engine = ExecutionEngine(ParallelConfig(n_jobs=1, backend="serial"))
        engine.map(_inc, [1, 2, 3])
        assert registry.snapshot()["backend_decisions"].get("serial", 0) >= 1


class TestLedgerResourceStamps:
    def test_repair_rows_carry_resource_stamp(self, tmp_path):
        from repro import ADarts, ModelRaceConfig, TimeSeries
        from repro.observability import RepairLedger, read_ledger, use_ledger
        from repro.pipeline.scoring import ScoreWeights

        rng = np.random.default_rng(7)
        t = np.linspace(0, 4 * np.pi, 64)
        series, labels = [], []
        for i in range(6):
            series.append(TimeSeries(
                np.sin(t * (1 + 0.1 * i)) + 0.05 * rng.normal(size=64),
                name=f"s{i}",
            ))
            labels.append("linear")
        for i in range(6):
            series.append(TimeSeries(
                0.5 * np.cumsum(rng.normal(size=64)), name=f"w{i}",
            ))
            labels.append("mean")
        engine = ADarts(
            config=ModelRaceConfig(
                n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
                weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
            ),
            classifier_names=["knn"],
        )
        X = engine.extractor.extract_many(series)

        path = tmp_path / "ledger.jsonl"
        with RepairLedger(path) as ledger, use_ledger(ledger):
            engine.fit_features(X, np.array(labels))
            faulty = series[0].values.copy()
            faulty[5:12] = np.nan
            engine.recommend_many([TimeSeries(faulty, name="live")])

        rows = read_ledger(path)
        fits = [r for r in rows if r["kind"] == "fit"]
        repairs = [r for r in rows if r["kind"] == "repair"]
        assert fits and repairs
        for row in fits + repairs:
            stamp = row["data"]["resources"]
            assert stamp["rss_bytes"] > 0
            assert "series_bank_bytes" in stamp
