"""Exhaustive sanity sweep: every grid value of every classifier trains.

The synthesizer may hand ModelRace any single-parameter mutation, so every
value in every grid must produce a classifier that fits and predicts.  Each
(family, parameter, value) combination is checked with the remaining
parameters at defaults.
"""

import numpy as np
import pytest

from repro.classifiers import (
    available_classifiers,
    default_params,
    get_classifier,
    param_space,
)


@pytest.fixture(scope="module")
def tiny_problem():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(size=(12, 5)), 4 + rng.normal(size=(12, 5))])
    y = np.array([0] * 12 + [1] * 12)
    return X, y


def _grid_points():
    points = []
    for family in available_classifiers():
        space = param_space(family)
        for pname, values in space.items():
            for value in values:
                points.append((family, pname, value))
    return points


@pytest.mark.parametrize(
    "family,pname,value",
    _grid_points(),
    ids=lambda v: str(v)[:24],
)
def test_every_grid_value_trains(family, pname, value, tiny_problem):
    X, y = tiny_problem
    params = default_params(family)
    params[pname] = value
    clf = get_classifier(family, **params)
    clf.fit(X, y)
    preds = clf.predict(X)
    assert preds.shape == y.shape
    proba = clf.predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert np.isfinite(proba).all()
