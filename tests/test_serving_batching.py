"""Property-based tests of micro-batch coalescing and the wire codec.

The load-bearing invariants, checked over random arrival patterns,
seeds, and batch budgets:

- every offered item is released exactly once, in arrival order;
- no item waits in the batcher longer than the coalescing budget
  (``max_delay_s``) — the daemon then adds at most one batch service
  time before the response future resolves;
- responses come back in request order with matching ids, and repair
  payloads are byte-identical to the direct ``ADarts.repair_many``
  library path regardless of how the stream was chopped into batches.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProtocolError, ValidationError
from repro.serving import (
    LoadGenerator,
    RepairRequest,
    ServingDaemon,
    ServingTestClient,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.serving.batching import MicroBatcher
from repro.serving.protocol import RepairResponse
from repro.timeseries import TimeSeries

arrival_gaps = st.lists(
    st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
    min_size=1,
    max_size=60,
)


class TestMicroBatcherProperties:
    @given(
        gaps=arrival_gaps,
        max_batch=st.integers(min_value=1, max_value=8),
        max_delay_ms=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_coalescing_invariants(self, gaps, max_batch, max_delay_ms):
        """Exact-once release, arrival order, bounded wait — fake clock."""
        max_delay_s = max_delay_ms / 1000.0
        batcher = MicroBatcher(max_batch, max_delay_s, clock=lambda: 0.0)
        arrivals = np.cumsum(gaps)
        released: list[tuple[int, float]] = []  # (item, release time)

        def take(batch, now):
            released.extend((item, now) for item in batch)

        i = 0
        now = 0.0
        while i < len(arrivals) or len(batcher):
            deadline = batcher.next_deadline
            next_arrival = arrivals[i] if i < len(arrivals) else math.inf
            if deadline is not None and deadline <= next_arrival:
                now = deadline
                batch = batcher.poll(now)
                assert batch is not None, "deadline passed but poll empty"
                take(batch, now)
            else:
                now = next_arrival
                batch = batcher.offer(i, now)
                i += 1
                if batch is not None:
                    take(batch, now)

        # Exactly once, in arrival order.
        assert [item for item, _ in released] == list(range(len(arrivals)))
        # Wait bound: release time <= arrival + budget (+ float slack).
        for item, out_time in released:
            wait = out_time - arrivals[item]
            assert wait <= max_delay_s + 1e-9
        # Size bound + counter bookkeeping.
        stats = batcher.stats()
        assert stats["items"] == len(arrivals)
        assert stats["batches"] == stats["full_batches"] + stats["timed_batches"]
        assert stats["pending"] == 0

    def test_full_batch_released_synchronously(self):
        batcher = MicroBatcher(3, 1.0, clock=lambda: 0.0)
        assert batcher.offer("a") is None
        assert batcher.offer("b") is None
        assert batcher.offer("c") == ["a", "b", "c"]
        assert len(batcher) == 0 and batcher.next_deadline is None

    def test_flush_and_validation(self):
        batcher = MicroBatcher(8, 0.5, clock=lambda: 0.0)
        batcher.offer(1)
        assert batcher.poll(now=0.1) is None
        assert batcher.flush() == [1]
        assert batcher.flush() is None
        with pytest.raises(ValidationError):
            MicroBatcher(0, 0.1)
        with pytest.raises(ValidationError):
            MicroBatcher(4, -0.1)

    def test_zero_delay_releases_on_next_poll(self):
        batcher = MicroBatcher(100, 0.0, clock=lambda: 5.0)
        batcher.offer("x")
        assert batcher.poll() == ["x"]


class TestProtocolProperties:
    @given(
        values=st.lists(
            st.one_of(
                st.floats(
                    min_value=-1e12, max_value=1e12,
                    allow_nan=False, allow_infinity=False,
                ),
                st.just(math.nan),
            ),
            min_size=1,
            max_size=64,
        ),
        mode=st.sampled_from(("repair", "recommend")),
    )
    @settings(max_examples=200, deadline=None)
    def test_request_roundtrip_is_exact(self, values, mode):
        """NaN <-> null and repr-exact floats survive the wire."""
        request = RepairRequest(
            id="rq", values=np.asarray(values), mode=mode, name="n"
        )
        decoded = decode_request(encode_request(request))
        assert decoded.id == request.id
        assert decoded.mode == mode
        assert np.array_equal(decoded.values, request.values, equal_nan=True)
        # Idempotent: a second hop produces the same bytes.
        assert encode_request(decoded) == encode_request(request)

    @given(
        values=st.lists(
            st.one_of(
                st.floats(
                    min_value=-1e12, max_value=1e12,
                    allow_nan=False, allow_infinity=False,
                ),
                st.just(math.nan),
            ),
            min_size=1,
            max_size=64,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_response_roundtrip_is_exact(self, values):
        response = RepairResponse(
            id="rs", status=200, algorithm="linear",
            ranking=("linear", "mean"), confidence=0.75,
            values=np.asarray(values), shard=3, latency_s=0.01,
        )
        decoded = decode_response(encode_response(response))
        assert decoded.id == response.id
        assert decoded.shard == 3
        assert np.array_equal(decoded.values, response.values, equal_nan=True)
        assert encode_response(decoded) == encode_response(response)

    def test_malformed_lines_raise_protocol_error(self):
        for line in (b"", b"not json", b"[1,2]", b'{"values": [1]}',
                     b'{"id": "x"}', b'{"id": "x", "values": "nope"}'):
            with pytest.raises(ProtocolError):
                decode_request(line)
        with pytest.raises(ProtocolError):
            RepairRequest(id="x", values=np.ones(3), mode="destroy")
        with pytest.raises(ProtocolError):
            RepairRequest(id="x", values=np.ones((2, 2)))

    def test_unknown_response_keys_preserved(self):
        line = (b'{"id":"a","status":200,"algorithm":"m","ranking":[],'
                b'"x_custom":7}')
        decoded = decode_response(line)
        assert decoded.extra == {"x_custom": 7}


class TestBatchCompositionInvariance:
    """Responses must not depend on how the stream was batched."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "max_batch,max_delay_s",
        [(1, 0.0), (4, 0.001), (32, 0.01)],
    )
    def test_ids_ordered_and_repairs_byte_identical(
        self, serving_engine, seed, max_batch, max_delay_s
    ):
        generator = LoadGenerator(seed=seed, length=96)
        requests = generator.requests(24)
        with ServingDaemon(
            serving_engine,
            n_shards=2,
            shard_backend="inline",
            max_batch=max_batch,
            max_delay_s=max_delay_s,
        ) as daemon:
            client = ServingTestClient(daemon, via_wire=True)
            responses = client.send_many(requests)

        assert [r.id for r in responses] == [r.id for r in requests]
        assert all(r.status == 200 for r in responses)

        series = [TimeSeries(r.values, name=r.name) for r in requests]
        recommendations = serving_engine.recommend_many(series)
        repaired = serving_engine.repair_many(series, recommendations)
        for response, rec, fixed in zip(
            responses, recommendations, repaired
        ):
            assert response.algorithm == rec.algorithm
            assert np.array_equal(
                response.values, fixed.values, equal_nan=True
            )

    def test_load_generator_is_deterministic(self):
        a = LoadGenerator(seed=13, length=64).requests(10)
        b = LoadGenerator(seed=13, length=64).requests(10)
        for x, y in zip(a, b):
            assert x.id == y.id
            assert np.array_equal(x.values, y.values, equal_nan=True)
        c = LoadGenerator(seed=14, length=64).request(0)
        assert not np.array_equal(
            a[0].values, c.values, equal_nan=True
        )
        offsets = LoadGenerator(seed=13).arrival_offsets(50, burstiness=0.5)
        assert np.array_equal(
            offsets, LoadGenerator(seed=13).arrival_offsets(50, burstiness=0.5)
        )
        assert offsets[0] == 0.0 and np.all(np.diff(offsets) >= 0)
