"""Determinism under parallelism (the PR's core correctness contract).

Same seed ⇒ identical race outcomes and labels for ``n_jobs=1`` vs
``n_jobs=4``, across thread and process backends.  Wall-clock enters the
race score through gamma, so the race tests race with ``gamma=0`` — the
configuration under which scores are pure functions of the data and
bit-identical results are a meaningful requirement.

Also covers the two pruning satellites:

* phase-1 early termination is evaluated against the *true* fold best
  behind a post-fold barrier, so candidate order no longer changes who
  gets pruned (serial-path regression test);
* the vectorized ``_prune_ttest`` makes the exact keep/drop decisions of
  the naive reference implementation on a fixed-seed snapshot.

These tests are a CI gate: the benchmark smoke job fails if any of them
is skipped, so none of them may carry skip conditions.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.clustering.labeling import ClusterLabeler
from repro.core.config import ModelRaceConfig
from repro.core.modelrace import ModelRace
from repro.datasets import load_category
from repro.features import FeatureExtractor
from repro.parallel import FeatureCache, ParallelConfig
from repro.pipeline.pipeline import Pipeline, make_seed_pipelines
from repro.pipeline.scoring import ScoreWeights

BACKEND_CONFIGS = [
    pytest.param(ParallelConfig(n_jobs=4, backend="thread"), id="thread-4"),
    pytest.param(ParallelConfig(n_jobs=4, backend="process"), id="process-4"),
]

#: gamma=0 removes wall-clock from the score: results must be bit-identical.
DETERMINISTIC_WEIGHTS = ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0)


@pytest.fixture(scope="module")
def race_data():
    rng = np.random.default_rng(7)
    n, d = 90, 6
    X = rng.normal(size=(n, d))
    y = np.array(["cdrec", "knn", "linear"], dtype=object)[
        rng.integers(0, 3, size=n)
    ]
    X[y == "cdrec"] += 1.2
    X[y == "knn"] -= 1.2
    return X[24:], y[24:], X[:24], y[:24]


def _run_race(data, parallel: ParallelConfig | None):
    X_tr, y_tr, X_te, y_te = data
    config = ModelRaceConfig(
        n_partial_sets=2,
        n_folds=2,
        max_elite=4,
        weights=DETERMINISTIC_WEIGHTS,
        random_state=0,
        parallel=parallel or ParallelConfig(),
    )
    seeds = make_seed_pipelines(["knn", "decision_tree", "gaussian_nb", "ridge"])
    return ModelRace(config).run(seeds, X_tr, y_tr, X_te, y_te)


class TestRaceDeterminism:
    @pytest.mark.parametrize("parallel", BACKEND_CONFIGS)
    def test_elite_and_scores_identical_across_backends(self, race_data, parallel):
        serial = _run_race(race_data, None)
        fanned = _run_race(race_data, parallel)
        assert [p.config_key() for p in serial.elite] == [
            p.config_key() for p in fanned.elite
        ]
        assert serial.scores == fanned.scores  # exact float equality
        assert serial.n_evaluations == fanned.n_evaluations
        assert serial.n_early_terminated == fanned.n_early_terminated

    @pytest.mark.parametrize("parallel", BACKEND_CONFIGS)
    def test_iteration_records_match(self, race_data, parallel):
        serial = _run_race(race_data, None)
        fanned = _run_race(race_data, parallel)
        for a, b in zip(serial.iterations, fanned.iterations):
            assert a.n_candidates == b.n_candidates
            assert a.n_evaluations == b.n_evaluations
            assert a.n_early_terminated == b.n_early_terminated
            assert a.n_ttest_pruned == b.n_ttest_pruned
            assert a.n_elite == b.n_elite


class TestLabelingDeterminism:
    @pytest.fixture(scope="class")
    def datasets(self):
        return load_category("Climate", n_series=8, n_datasets=2)

    def _label(self, datasets, parallel):
        labeler = ClusterLabeler(
            imputer_names=("linear", "knn", "svdimp"),
            missing_ratio=(0.1, 0.2),
            random_state=0,
            parallel=parallel,
        )
        return labeler.label_corpus(datasets)

    @pytest.mark.parametrize("parallel", BACKEND_CONFIGS)
    def test_labels_identical_across_backends(self, datasets, parallel):
        serial = self._label(datasets, None)
        fanned = self._label(datasets, parallel)
        assert list(serial.labels) == list(fanned.labels)
        assert serial.rankings == fanned.rankings
        assert serial.n_benchmark_runs == fanned.n_benchmark_runs
        for a, b in zip(serial.series, fanned.series):
            assert a == b  # injected faults identical too


class TestFeatureDeterminism:
    @pytest.fixture(scope="class")
    def series_list(self):
        datasets = load_category("Water", n_series=6, n_datasets=1)
        return [s for d in datasets for s in d.series]

    @pytest.mark.parametrize("parallel", BACKEND_CONFIGS)
    def test_matrix_bit_identical_across_backends(self, series_list, parallel):
        reference = FeatureExtractor().extract_many(series_list)
        fanned = FeatureExtractor(parallel=parallel).extract_many(series_list)
        assert reference.tobytes() == fanned.tobytes()

    def test_cache_hit_path_bit_identical(self, series_list):
        reference = FeatureExtractor().extract_many(series_list)
        cache = FeatureCache()
        extractor = FeatureExtractor(cache=cache)
        cold = extractor.extract_many(series_list)
        warm = extractor.extract_many(series_list)
        assert reference.tobytes() == cold.tobytes()
        assert reference.tobytes() == warm.tobytes()
        assert cache.hits >= len(series_list)  # second pass fully cached

    def test_disk_cache_roundtrip_bit_identical(self, series_list, tmp_path):
        reference = FeatureExtractor().extract_many(series_list)
        FeatureExtractor(cache=FeatureCache(tmp_path)).extract_many(series_list)
        fresh = FeatureCache(tmp_path)  # simulates a new process
        warm = FeatureExtractor(cache=fresh).extract_many(series_list)
        assert reference.tobytes() == warm.tobytes()
        assert fresh.misses == 0


class TestOrderIndependentPruning:
    """Satellite: phase-1 pruning no longer depends on candidate order.

    Synthesis is disabled (it consumes the RNG in parent order, so a
    reversed seed list would legitimately produce different children);
    what must be order-independent is the evaluate-and-prune core.
    ``ttest_pvalue=1.0`` effectively disables phase-2, isolating the
    phase-1 (fold-margin) decision under test.
    """

    @pytest.fixture(autouse=True)
    def no_synthesis(self, monkeypatch):
        from repro.pipeline import synthesizer as synth_mod

        monkeypatch.setattr(
            synth_mod.Synthesizer,
            "synthesize",
            lambda self, elite, known=None: [],
        )

    def _race_with_order(self, data, seeds, margin):
        X_tr, y_tr, X_te, y_te = data
        config = ModelRaceConfig(
            n_partial_sets=1,
            n_folds=2,
            max_elite=10,
            early_termination_margin=margin,
            ttest_pvalue=1.0,
            weights=DETERMINISTIC_WEIGHTS,
            random_state=0,
        )
        result = ModelRace(config).run(seeds, X_tr, y_tr, X_te, y_te)
        terminated = sum(r.n_early_terminated for r in result.iterations)
        return {p.config_key() for p in result.elite}, terminated

    def test_candidate_order_does_not_change_pruning(self, race_data):
        seeds = make_seed_pipelines(
            ["knn", "decision_tree", "gaussian_nb", "ridge", "nearest_centroid"]
        )
        forward, term_fwd = self._race_with_order(race_data, seeds, 0.05)
        backward, term_bwd = self._race_with_order(
            race_data, list(reversed(seeds)), 0.05
        )
        assert forward == backward
        assert term_fwd == term_bwd

    def test_weak_candidate_pruned_even_when_evaluated_first(self, race_data):
        """Under the old in-loop incumbent, a weak candidate evaluated
        *before* the fold best could escape termination.  The post-fold
        barrier judges it against the true best regardless of position."""
        seeds = [
            Pipeline("knn", {"k": 1, "weights": "uniform", "p": 2}),
            Pipeline("knn", {"k": 5, "weights": "distance", "p": 2}),
        ]
        fwd, term_fwd = self._race_with_order(race_data, seeds, 0.0)
        rev, term_rev = self._race_with_order(
            race_data, list(reversed(seeds)), 0.0
        )
        assert fwd == rev
        assert term_fwd == term_rev


def _prune_ttest_reference(config, candidates, scores):
    """Pre-PR implementation (recomputes means in the loop) — the oracle."""
    alive = {p.config_key(): p for p in candidates}
    keys = sorted(
        alive,
        key=lambda k: float(np.mean(scores[k])) if scores.get(k) else -np.inf,
        reverse=True,
    )
    pruned = 0
    kept = []
    for key in keys:
        dist = scores.get(key, [])
        redundant = False
        for kept_key in kept:
            ref = scores[kept_key]
            if len(dist) < 2 or len(ref) < 2:
                similar = np.isclose(
                    np.mean(dist or [0.0]), np.mean(ref), atol=1e-3
                )
            else:
                stat = sps.ttest_ind(ref, dist, equal_var=False)
                similar = np.isnan(stat.pvalue) or stat.pvalue > config.ttest_pvalue
            if similar:
                redundant = True
                break
        if redundant:
            pruned += 1
        else:
            kept.append(key)
    kept = kept[: config.max_elite]
    return [alive[k] for k in kept], pruned


class TestVectorizedTTestSnapshot:
    """Satellite: the sufficient-statistics t-test keeps identical decisions."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("pvalue", [0.3, 0.7, 0.95])
    def test_matches_reference_on_fixed_seed_snapshots(self, seed, pvalue):
        rng = np.random.default_rng(seed)
        candidates = [
            Pipeline("knn", {"k": int(k), "weights": "uniform", "p": 2})
            for k in (1, 3, 5, 7, 9, 11, 13, 15)
        ]
        scores = {}
        for i, p in enumerate(candidates):
            # Mix of clearly separated, nearly tied, and degenerate dists.
            n_obs = int(rng.integers(1, 7))
            center = rng.choice([0.2, 0.5, 0.5001, 0.8])
            spread = rng.choice([0.0, 0.01, 0.1])
            scores[p.config_key()] = list(
                center + spread * rng.standard_normal(n_obs)
            )
        # One candidate with no scores at all (edge case).
        scores.pop(candidates[-1].config_key())
        config = ModelRaceConfig(ttest_pvalue=pvalue, max_elite=5, random_state=0)
        race = ModelRace(config)
        got_elite, got_pruned = race._prune_ttest(candidates, scores)
        want_elite, want_pruned = _prune_ttest_reference(
            config, candidates, scores
        )
        assert [p.config_key() for p in got_elite] == [
            p.config_key() for p in want_elite
        ]
        assert got_pruned == want_pruned


class TestScoreMemoInRace:
    def test_shared_memo_serves_repeat_races(self, race_data):
        from repro.parallel import ScoreMemo

        X_tr, y_tr, X_te, y_te = race_data
        config = ModelRaceConfig(
            n_partial_sets=2,
            n_folds=2,
            weights=DETERMINISTIC_WEIGHTS,
            random_state=0,
        )
        seeds = make_seed_pipelines(["knn", "gaussian_nb"])
        memo = ScoreMemo()
        first = ModelRace(config, score_memo=memo).run(
            seeds, X_tr, y_tr, X_te, y_te
        )
        hits_after_first = memo.hits
        second = ModelRace(config, score_memo=memo).run(
            seeds, X_tr, y_tr, X_te, y_te
        )
        # The second identical race is served from the memo wherever the
        # work repeats, and the outcome is unchanged.
        assert memo.hits > hits_after_first
        assert [p.config_key() for p in first.elite] == [
            p.config_key() for p in second.elite
        ]
        assert first.scores == second.scores
