"""Unit tests for the voting ensembles."""

import numpy as np
import pytest

from repro.core import MajorityVotingEnsemble, SoftVotingEnsemble
from repro.exceptions import ValidationError
from repro.pipeline import Pipeline


@pytest.fixture
def fitted_members(labeled_features):
    X, y = labeled_features
    members = [
        Pipeline("knn", scaler_name="standard").fit(X, y),
        Pipeline("decision_tree").fit(X, y),
        Pipeline("gaussian_nb").fit(X, y),
    ]
    return members, X, y


class TestSoftVoting:
    def test_probability_matrix(self, fitted_members):
        members, X, y = fitted_members
        ens = SoftVotingEnsemble(members)
        proba = ens.predict_proba(X)
        assert proba.shape == (X.shape[0], len(ens.classes_))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_average_of_members(self, fitted_members):
        members, X, _ = fitted_members
        ens = SoftVotingEnsemble(members)
        manual = np.mean([m.predict_proba(X) for m in members], axis=0)
        # Members share identical class sets here, so alignment is identity.
        assert np.allclose(ens.predict_proba(X), manual)

    def test_accuracy_reasonable(self, fitted_members):
        members, X, y = fitted_members
        ens = SoftVotingEnsemble(members)
        assert (ens.predict(X) == y).mean() > 0.8

    def test_rankings_best_first(self, fitted_members):
        members, X, _ = fitted_members
        ens = SoftVotingEnsemble(members)
        rankings = ens.predict_rankings(X[:3])
        preds = ens.predict(X[:3])
        for pred, ranking in zip(preds, rankings):
            assert ranking[0] == pred

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            SoftVotingEnsemble([])

    def test_unfitted_member_raises(self, labeled_features):
        with pytest.raises(ValidationError):
            SoftVotingEnsemble([Pipeline("knn")])

    def test_class_union_alignment(self, labeled_features):
        X, y = labeled_features
        # Train one member without ever seeing class 'tkcm'.
        member_all = Pipeline("knn").fit(X, y)
        subset = y != "tkcm"
        member_partial = Pipeline("decision_tree").fit(X[subset], y[subset])
        ens = SoftVotingEnsemble([member_all, member_partial])
        assert set(ens.classes_.tolist()) == set(np.unique(y).tolist())
        proba = ens.predict_proba(X[:5])
        assert proba.shape == (5, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestMajorityVoting:
    def test_votes_normalized(self, fitted_members):
        members, X, _ = fitted_members
        ens = MajorityVotingEnsemble(members)
        proba = ens.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        # With 3 voters every entry is a multiple of 1/3.
        assert np.allclose((proba * 3) % 1, 0.0, atol=1e-9)

    def test_majority_wins(self, labeled_features):
        X, y = labeled_features
        members = [Pipeline("knn", {"k": k, "weights": "uniform", "p": 2}).fit(X, y)
                   for k in (1, 3, 5)]
        ens = MajorityVotingEnsemble(members)
        assert (ens.predict(X) == y).mean() > 0.9

    def test_soft_at_least_as_granular(self, fitted_members):
        members, X, _ = fitted_members
        soft = SoftVotingEnsemble(members).predict_proba(X)
        hard = MajorityVotingEnsemble(members).predict_proba(X)
        assert len(np.unique(soft)) >= len(np.unique(hard))
