"""Unit tests for the voting ensembles."""

import numpy as np
import pytest

from repro.core import MajorityVotingEnsemble, SoftVotingEnsemble
from repro.exceptions import ValidationError
from repro.pipeline import Pipeline


@pytest.fixture
def fitted_members(labeled_features):
    X, y = labeled_features
    members = [
        Pipeline("knn", scaler_name="standard").fit(X, y),
        Pipeline("decision_tree").fit(X, y),
        Pipeline("gaussian_nb").fit(X, y),
    ]
    return members, X, y


class TestSoftVoting:
    def test_probability_matrix(self, fitted_members):
        members, X, y = fitted_members
        ens = SoftVotingEnsemble(members)
        proba = ens.predict_proba(X)
        assert proba.shape == (X.shape[0], len(ens.classes_))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_average_of_members(self, fitted_members):
        members, X, _ = fitted_members
        ens = SoftVotingEnsemble(members)
        manual = np.mean([m.predict_proba(X) for m in members], axis=0)
        # Members share identical class sets here, so alignment is identity.
        assert np.allclose(ens.predict_proba(X), manual)

    def test_accuracy_reasonable(self, fitted_members):
        members, X, y = fitted_members
        ens = SoftVotingEnsemble(members)
        assert (ens.predict(X) == y).mean() > 0.8

    def test_rankings_best_first(self, fitted_members):
        members, X, _ = fitted_members
        ens = SoftVotingEnsemble(members)
        rankings = ens.predict_rankings(X[:3])
        preds = ens.predict(X[:3])
        for pred, ranking in zip(preds, rankings):
            assert ranking[0] == pred

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            SoftVotingEnsemble([])

    def test_unfitted_member_raises(self, labeled_features):
        with pytest.raises(ValidationError):
            SoftVotingEnsemble([Pipeline("knn")])

    def test_class_union_alignment(self, labeled_features):
        X, y = labeled_features
        # Train one member without ever seeing class 'tkcm'.
        member_all = Pipeline("knn").fit(X, y)
        subset = y != "tkcm"
        member_partial = Pipeline("decision_tree").fit(X[subset], y[subset])
        ens = SoftVotingEnsemble([member_all, member_partial])
        assert set(ens.classes_.tolist()) == set(np.unique(y).tolist())
        proba = ens.predict_proba(X[:5])
        assert proba.shape == (5, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestDegenerateInputs:
    """Edge cases: single members, ties, and class-axis mismatches."""

    def test_single_member_soft_equals_pipeline(self, labeled_features):
        X, y = labeled_features
        member = Pipeline("decision_tree").fit(X, y)
        ens = SoftVotingEnsemble([member])
        assert np.allclose(ens.predict_proba(X), member.predict_proba(X))
        assert (ens.predict(X) == member.predict(X)).all()

    def test_single_member_majority_onehot(self, labeled_features):
        X, y = labeled_features
        member = Pipeline("knn").fit(X, y)
        ens = MajorityVotingEnsemble([member])
        proba = ens.predict_proba(X)
        # One voter: every row is a one-hot vote vector.
        assert set(np.unique(proba).tolist()) <= {0.0, 1.0}
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_uniform_proba_tie_breaks_deterministically(self, labeled_features):
        X, y = labeled_features

        class _UniformPipeline(Pipeline):
            def predict_proba(self, Z):
                Z = np.asarray(Z, dtype=float)
                n_classes = len(self.classes_)
                return np.full((Z.shape[0], n_classes), 1.0 / n_classes)

        members = [
            _UniformPipeline("gaussian_nb").fit(X, y),
            _UniformPipeline("decision_tree").fit(X, y),
        ]
        ens = SoftVotingEnsemble(members)
        proba = ens.predict_proba(X[:4])
        assert np.allclose(proba, 1.0 / len(ens.classes_))
        # argmax on a uniform row picks the first (sorted) class — stable.
        assert (ens.predict(X[:4]) == ens.classes_[0]).all()
        rankings = ens.predict_rankings(X[:2])
        assert all(len(r) == len(ens.classes_) for r in rankings)

    def test_aligned_proba_zero_fills_unknown_classes(self, labeled_features):
        X, y = labeled_features
        classes = np.unique(y)
        assert len(classes) >= 3
        # Member that never saw the last class in sorted order.
        missing = classes[-1]
        subset = y != missing
        partial = Pipeline("knn").fit(X[subset], y[subset])
        full = Pipeline("decision_tree").fit(X, y)
        ens = SoftVotingEnsemble([full, partial])
        aligned = ens._aligned_proba(partial, X[:6])
        col = ens.classes_.tolist().index(missing)
        assert np.allclose(aligned[:, col], 0.0)
        assert np.allclose(aligned.sum(axis=1), 1.0)

    def test_member_probas_tensor_shape_and_axis(self, fitted_members):
        members, X, _ = fitted_members
        ens = SoftVotingEnsemble(members)
        tensor = ens.member_probas(X[:7])
        assert tensor.shape == (len(members), 7, len(ens.classes_))
        # Soft vote == mean over the member axis of the tensor.
        assert np.allclose(tensor.mean(axis=0), ens.predict_proba(X[:7]))

    def test_member_probas_with_class_mismatch(self, labeled_features):
        X, y = labeled_features
        subset = y != np.unique(y)[0]
        members = [
            Pipeline("decision_tree").fit(X, y),
            Pipeline("gaussian_nb").fit(X[subset], y[subset]),
        ]
        ens = SoftVotingEnsemble(members)
        tensor = ens.member_probas(X[:5])
        assert tensor.shape == (2, 5, len(ens.classes_))
        # Every member slice is a valid distribution on the union axis.
        assert np.allclose(tensor.sum(axis=2), 1.0)

    def test_majority_voting_class_union(self, labeled_features):
        X, y = labeled_features
        missing = np.unique(y)[-1]
        subset = y != missing
        members = [
            Pipeline("knn").fit(X[subset], y[subset]),
            Pipeline("decision_tree").fit(X, y),
        ]
        ens = MajorityVotingEnsemble(members)
        assert missing in ens.classes_.tolist()
        proba = ens.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestMajorityVoting:
    def test_votes_normalized(self, fitted_members):
        members, X, _ = fitted_members
        ens = MajorityVotingEnsemble(members)
        proba = ens.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        # With 3 voters every entry is a multiple of 1/3.
        assert np.allclose((proba * 3) % 1, 0.0, atol=1e-9)

    def test_majority_wins(self, labeled_features):
        X, y = labeled_features
        members = [Pipeline("knn", {"k": k, "weights": "uniform", "p": 2}).fit(X, y)
                   for k in (1, 3, 5)]
        ens = MajorityVotingEnsemble(members)
        assert (ens.predict(X) == y).mean() > 0.9

    def test_soft_at_least_as_granular(self, fitted_members):
        members, X, _ = fitted_members
        soft = SoftVotingEnsemble(members).predict_proba(X)
        hard = MajorityVotingEnsemble(members).predict_proba(X)
        assert len(np.unique(soft)) >= len(np.unique(hard))
