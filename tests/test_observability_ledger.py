"""Repair provenance ledger: records, upgrades, atlas, explain, round-trips."""

import json
import threading

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.clustering.labeling import ClusterLabeler
from repro.exceptions import ValidationError
from repro.observability import (
    ClusterAtlas,
    LEDGER_SCHEMA_VERSION,
    NULL_LEDGER,
    RepairLedger,
    Tracer,
    current_repair_id,
    explain_repair,
    filter_records,
    get_ledger,
    read_ledger,
    render_explanation,
    render_summary,
    repair_context,
    repair_quality_stats,
    set_ledger,
    summarize_ledger,
    upgrade_record,
    use_ledger,
    use_tracer,
)
from repro.pipeline.scoring import ScoreWeights
from repro.timeseries.series import TimeSeriesDataset

FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=2, random_state=0,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
)


def _corpus(n_per_family=8, length=96, seed=11):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 4 * np.pi, length)
    series, labels = [], []
    for i in range(n_per_family):
        values = np.sin(t * (1 + 0.1 * i)) + 0.05 * rng.normal(size=length)
        series.append(TimeSeries(values, name=f"sine{i}"))
        labels.append("linear")
    for i in range(n_per_family):
        series.append(
            TimeSeries(0.5 * np.cumsum(rng.normal(size=length)), name=f"walk{i}")
        )
        labels.append("mean")
    return series, np.array(labels)


class TestRepairLedgerBasics:
    def test_default_is_noop(self):
        ledger = get_ledger()
        assert ledger is NULL_LEDGER
        assert not ledger.enabled
        assert ledger.record("repair", {"x": 1}) is None
        assert ledger.records() == []

    def test_record_shape_and_jsonl_file(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RepairLedger(path) as ledger:
            rid = ledger.record("repair", {"algorithm": "linear"})
            assert rid.startswith("rep")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 1
        row = rows[0]
        assert row["schema"] == LEDGER_SCHEMA_VERSION
        assert row["kind"] == "repair"
        assert row["id"] == rid
        assert row["run_id"] == ledger.run_id
        assert row["data"] == {"algorithm": "linear"}
        assert row["trace_id"] is None

    def test_rows_carry_active_trace_id(self, tmp_path):
        tracer = Tracer()
        ledger = RepairLedger(tmp_path / "l.jsonl")
        with use_tracer(tracer), tracer.span("work"):
            ledger.record("repair", {})
        ledger.close()
        row = ledger.records()[0]
        assert row["trace_id"] == f"{tracer.trace_id}:1"

    def test_use_ledger_scopes_and_restores(self, tmp_path):
        ledger = RepairLedger(tmp_path / "l.jsonl")
        assert get_ledger() is NULL_LEDGER
        with use_ledger(ledger):
            assert get_ledger() is ledger
        assert get_ledger() is NULL_LEDGER
        set_ledger(None)

    def test_memory_ring_is_bounded(self):
        ledger = RepairLedger(keep_in_memory=3)
        for i in range(10):
            ledger.record("event", {"i": i})
        assert len(ledger) == 3
        assert ledger.n_written == 10
        assert [r["data"]["i"] for r in ledger.records()] == [7, 8, 9]
        assert [r["data"]["i"] for r in ledger.tail(2)] == [8, 9]

    def test_concurrent_appends_are_complete(self, tmp_path):
        ledger = RepairLedger(tmp_path / "l.jsonl")

        def worker(tag):
            for i in range(50):
                ledger.record("event", {"tag": tag, "i": i})

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ledger.close()
        rows = read_ledger(ledger.path)
        assert len(rows) == 200
        assert len({r["id"] for r in rows}) == 200


class TestSchemaUpgrade:
    def test_v1_flat_record_upgrades_to_v2(self, tmp_path):
        # v1 prototype layout: payload at the top level, epoch "ts".
        old = {
            "kind": "repair",
            "id": "rep_old",
            "ts": 1700000000.0,
            "algorithm": "mean",
            "degraded": True,
        }
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(old) + "\n")
        rows = read_ledger(path)
        assert rows[0]["schema"] == LEDGER_SCHEMA_VERSION
        assert rows[0]["id"] == "rep_old"
        assert rows[0]["data"] == {"algorithm": "mean", "degraded": True}
        assert rows[0]["time"].startswith("2023-11-14")
        assert rows[0]["trace_id"] is None

    def test_v2_record_passes_through(self):
        row = {
            "schema": 2, "kind": "fit", "id": "fit_x", "run_id": "run_x",
            "time": "2026-01-01T00:00:00+00:00", "trace_id": None,
            "data": {"n_samples": 4},
        }
        assert upgrade_record(dict(row)) == row

    def test_future_schema_rejected(self):
        with pytest.raises(ValidationError):
            upgrade_record({"schema": 99, "kind": "fit"})
        with pytest.raises(ValidationError):
            upgrade_record([1, 2, 3])

    def test_malformed_jsonl_raises_validation_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 2}\nnot json at all\n')
        with pytest.raises(ValidationError, match="not valid JSON"):
            read_ledger(path)
        with pytest.raises(ValidationError, match="no such ledger"):
            read_ledger(tmp_path / "missing.jsonl")


class TestQualityStats:
    def test_plausible_fill_scores_low_z(self):
        rng = np.random.default_rng(0)
        completed = rng.normal(size=(1, 200))
        mask = np.zeros((1, 200), dtype=bool)
        mask[0, 50:70] = True
        stats = repair_quality_stats(completed, mask)
        assert stats["n_missing"] == 20
        assert stats["plausibility_z"] < 1.0
        assert 0.3 < stats["scale_ratio"] < 3.0

    def test_implausible_flat_fill_flagged(self):
        rng = np.random.default_rng(0)
        completed = rng.normal(size=(1, 200))
        mask = np.zeros((1, 200), dtype=bool)
        mask[0, 50:70] = True
        completed[mask] = 25.0  # constant, far outside the observed range
        stats = repair_quality_stats(completed, mask)
        assert stats["plausibility_z"] > 5.0
        assert stats["scale_ratio"] < 0.1
        assert stats["roughness_ratio"] > 1.0


class TestClusterAtlas:
    def test_assign_picks_nearest_representative(self):
        t = np.linspace(0, 6 * np.pi, 120)
        atlas = ClusterAtlas()
        atlas.add("c_sine", "linear", np.sin(t))
        atlas.add("c_ramp", "mean", np.linspace(0, 10, 120))
        hit = atlas.assign(np.sin(t) * 3.0 + 5.0)
        assert hit["cluster"] == "c_sine"
        assert hit["label"] == "linear"
        assert hit["ncc"] > 0.95

    def test_assign_interpolates_nans(self):
        t = np.linspace(0, 6 * np.pi, 120)
        atlas = ClusterAtlas()
        atlas.add("c_sine", "linear", np.sin(t))
        atlas.add("c_ramp", "mean", np.linspace(0, 10, 120))
        faulty = np.sin(t).copy()
        faulty[30:50] = np.nan
        hit = atlas.assign(faulty)
        assert hit["cluster"] == "c_sine"

    def test_empty_atlas_returns_none(self):
        assert ClusterAtlas().assign(np.ones(10)) is None

    def test_dict_round_trip(self):
        t = np.linspace(0, 6 * np.pi, 60)
        atlas = ClusterAtlas()
        atlas.add("c0", "linear", np.sin(t))
        restored = ClusterAtlas.from_dict(
            json.loads(json.dumps(atlas.as_dict()))
        )
        assert restored.ids == ["c0"]
        assert restored.labels == ["linear"]
        assert restored.assign(np.sin(t))["ncc"] > 0.99


class TestFilterAndSummarize:
    def _records(self):
        ledger = RepairLedger()
        ledger.record(
            "repair",
            {"algorithm": "linear", "confidence": 0.9, "degraded": False,
             "cluster": {"cluster": "c0", "ncc": 0.8}},
        )
        ledger.record(
            "repair",
            {"algorithm": "mean", "confidence": 0.5, "degraded": True,
             "fallback": True, "cluster": {"cluster": "c1", "ncc": 0.4}},
        )
        rid = ledger.records()[0]["id"]
        ledger.record(
            "impute",
            {"repair_id": rid, "algorithm": "linear", "elapsed_s": 0.01,
             "quality": {"plausibility_z": 0.2, "roughness_ratio": 1.1}},
        )
        return ledger.records()

    def test_filter_by_kind_algorithm_degraded(self):
        records = self._records()
        assert len(filter_records(records, kind="repair")) == 2
        assert len(filter_records(records, algorithm="linear")) == 2
        assert len(filter_records(records, degraded_only=True)) == 1
        assert len(filter_records(records, cluster="c1")) == 1

    def test_summary_scorecards(self):
        summary = summarize_ledger(self._records())
        assert summary["repairs"]["n"] == 2
        assert summary["repairs"]["degraded"] == 1
        assert summary["repairs"]["fallback"] == 1
        assert summary["repairs"]["per_algorithm"]["linear"]["n"] == 1
        assert (
            summary["repairs"]["per_cluster"]["c0"]["mean_ncc"]
            == pytest.approx(0.8)
        )
        assert summary["imputations"]["linear"]["n"] == 1
        text = render_summary(summary)
        assert "per-imputer scorecard" in text
        assert "linear" in text


@pytest.fixture(scope="module")
def fit_and_serve(tmp_path_factory):
    """One real fit_datasets + serving run, everything ledgered."""
    root = tmp_path_factory.mktemp("ledger_e2e")
    path = root / "ledger.jsonl"
    series, _labels = _corpus()
    dataset = TimeSeriesDataset(series, name="corpus", category="Synthetic")
    engine = ADarts(
        config=FAST_CONFIG,
        classifier_names=["knn", "decision_tree"],
        labeler=ClusterLabeler(
            imputer_names=("linear", "mean"), random_state=0
        ),
    )
    ledger = RepairLedger(path)
    with use_ledger(ledger):
        engine.fit_datasets([dataset])
        faulty = []
        for i in range(3):
            values = series[i].values.copy()
            values[20:40] = np.nan
            faulty.append(TimeSeries(values, name=f"faulty{i}"))
        recommendations = engine.recommend_many(faulty)
        repaired = [
            rec.impute(s) for rec, s in zip(recommendations, faulty)
        ]
    ledger.close()
    return engine, path, recommendations, repaired


class TestLedgerEndToEnd:
    def test_full_lineage_recorded(self, fit_and_serve):
        engine, path, recommendations, repaired = fit_and_serve
        rows = read_ledger(path)
        kinds = {r["kind"] for r in rows}
        assert {"fit", "race", "label", "repair", "impute"} <= kinds
        assert all(r["schema"] == LEDGER_SCHEMA_VERSION for r in rows)
        assert all(rec.repair_id for rec in recommendations)
        assert all(not np.isnan(s.values).any() for s in repaired)

    def test_explain_reconstructs_decision_path(self, fit_and_serve):
        engine, path, recommendations, _repaired = fit_and_serve
        rows = read_ledger(path)
        explanation = explain_repair(rows, recommendations[0].repair_id)
        repair = explanation["repair"]["data"]
        assert repair["algorithm"] == recommendations[0].algorithm
        assert repair["n_missing"] == 20
        assert repair["feature_hash"]
        # Cluster assignment against the fit-time atlas.
        assert explanation["cluster"]["cluster"].startswith("corpus:c")
        assert -1.0 <= explanation["cluster"]["ncc"] <= 1.0
        # Race lineage: elites with fold scores.
        assert explanation["race"] is not None
        elites = explanation["race"]["data"]["elites"]
        assert elites and elites[0]["fold_scores"]
        assert explanation["race"]["data"]["iterations"]
        # Labeling lineage for the assigned cluster.
        assert explanation["labeling"]
        assert explanation["labeling"][0]["data"]["winner"]
        # The imputation row with quality stats.
        assert explanation["imputations"]
        quality = explanation["imputations"][0]["data"]["quality"]
        assert "plausibility_z" in quality
        text = render_explanation(explanation)
        assert recommendations[0].repair_id in text
        assert "race" in text
        assert "imputation" in text

    def test_engine_head_snapshot(self, fit_and_serve):
        engine, _path, _recs, _repaired = fit_and_serve
        head = engine.ledger_head_
        assert head is not None
        assert head["fit_id"] and head["race_id"] and head["run_id"]
        head_kinds = {r["kind"] for r in head["records"]}
        assert {"fit", "race", "label"} <= head_kinds
        assert engine.cluster_atlas_ is not None
        assert engine.cluster_atlas_.n_clusters >= 1

    def test_explain_unknown_id_raises(self, fit_and_serve):
        _engine, path, _recs, _repaired = fit_and_serve
        with pytest.raises(ValidationError, match="no repair record"):
            explain_repair(read_ledger(path), "rep_does_not_exist")

    def test_export_import_preserves_ledger_head(
        self, fit_and_serve, tmp_path
    ):
        from repro.core.serialization import load_engine, save_engine

        engine, _path, _recs, _repaired = fit_and_serve
        restored = load_engine(save_engine(engine, tmp_path / "engine.json"))
        assert restored.ledger_head_ is not None
        assert restored.ledger_head_["fit_id"] == engine.ledger_head_["fit_id"]
        assert restored.ledger_head_["race_id"] == engine.ledger_head_["race_id"]
        assert len(restored.ledger_head_["records"]) == len(
            engine.ledger_head_["records"]
        )
        assert restored.cluster_atlas_ is not None
        assert restored.cluster_atlas_.ids == engine.cluster_atlas_.ids
        assert restored.cluster_atlas_.labels == engine.cluster_atlas_.labels

        # A serving-only ledger + the imported head still explains fully.
        serving_ledger = RepairLedger(tmp_path / "serving.jsonl")
        values = np.sin(np.linspace(0, 4 * np.pi, 96))
        values[10:30] = np.nan
        with use_ledger(serving_ledger):
            rec = restored.recommend(TimeSeries(values, name="later"))
        serving_ledger.close()
        explanation = explain_repair(
            read_ledger(serving_ledger.path),
            rec.repair_id,
            head=restored.ledger_head_,
        )
        assert explanation["race"] is not None
        assert explanation["fit"] is not None

    def test_degraded_fallback_repair_explains(self, fit_and_serve, tmp_path):
        from repro.exceptions import EnsembleError

        engine, _path, _recs, _repaired = fit_and_serve
        ledger = RepairLedger(tmp_path / "degraded.jsonl")
        values = np.sin(np.linspace(0, 4 * np.pi, 96))
        values[10:30] = np.nan
        faulty = TimeSeries(values, name="doomed")

        def boom(X):
            raise EnsembleError("all members down")

        original = engine._ensemble.predict_proba_detailed
        engine._ensemble.predict_proba_detailed = boom
        try:
            with use_ledger(ledger):
                rec = engine.recommend(faulty)
                repaired = rec.impute(faulty)
        finally:
            engine._ensemble.predict_proba_detailed = original
        ledger.close()
        assert rec.degraded
        assert not np.isnan(repaired.values).any()
        explanation = explain_repair(read_ledger(ledger.path), rec.repair_id)
        assert explanation["resilience"]["degraded"] is True
        assert explanation["resilience"]["fallback"] is True
        assert explanation["repair"]["data"]["fallback"] is True
        text = render_explanation(explanation)
        assert "STATIC FALLBACK" in text
        assert explanation["imputations"], "fallback impute row recorded"


class TestRepairContext:
    def test_context_nesting(self):
        assert current_repair_id() is None
        with repair_context("rep_a"):
            assert current_repair_id() == "rep_a"
            with repair_context("rep_b"):
                assert current_repair_id() == "rep_b"
            assert current_repair_id() == "rep_a"
        assert current_repair_id() is None

    def test_impute_outside_repair_context_not_ledgered(self):
        from repro.imputation import get_imputer

        ledger = RepairLedger()
        matrix = np.vstack([np.linspace(0, 1, 40)] * 3)
        matrix[0, 5:10] = np.nan
        with use_ledger(ledger):
            get_imputer("linear").impute(matrix)
        assert ledger.records() == []
