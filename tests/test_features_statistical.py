"""Unit tests for statistical feature extraction."""

import numpy as np
import pytest

from repro.features import (
    STATISTICAL_FEATURE_NAMES,
    canonical_features,
    dependency_features,
    statistical_features,
    trend_features,
)
from repro.timeseries import TimeSeries


@pytest.fixture
def sine():
    return np.sin(np.linspace(0, 8 * np.pi, 256))


@pytest.fixture
def noise():
    return np.random.default_rng(0).normal(size=256)


class TestCanonical:
    def test_keys_and_finiteness(self, sine):
        feats = canonical_features(sine)
        assert all(k.startswith("canon_") for k in feats)
        assert all(np.isfinite(v) for v in feats.values())

    def test_mean_and_std(self):
        feats = canonical_features(np.array([1.0, 2.0, 3.0, 4.0]))
        assert feats["canon_mean"] == pytest.approx(2.5)
        assert feats["canon_std"] == pytest.approx(np.std([1, 2, 3, 4]))

    def test_constant_series_degenerates_gracefully(self):
        feats = canonical_features(np.full(50, 3.0))
        assert feats["canon_std"] == 0.0
        assert feats["canon_skew"] == 0.0
        assert all(np.isfinite(v) for v in feats.values())

    def test_symmetric_above_mean_ratio(self, sine):
        assert canonical_features(sine)["canon_above_mean_ratio"] == pytest.approx(
            0.5, abs=0.05
        )


class TestDependencies:
    def test_sine_has_high_lag1_acf(self, sine):
        assert dependency_features(sine)["dep_acf_lag1"] > 0.95

    def test_noise_has_low_acf(self, noise):
        feats = dependency_features(noise)
        assert abs(feats["dep_acf_lag1"]) < 0.2

    def test_acf_first_zero_tracks_period(self):
        fast = np.sin(np.linspace(0, 32 * np.pi, 512))
        slow = np.sin(np.linspace(0, 4 * np.pi, 512))
        f_fast = dependency_features(fast)["dep_acf_first_zero"]
        f_slow = dependency_features(slow)["dep_acf_first_zero"]
        assert 0 < f_fast < f_slow

    def test_finiteness_on_constant(self):
        feats = dependency_features(np.full(64, 1.0))
        assert all(np.isfinite(v) for v in feats.values())


class TestTrends:
    def test_linear_trend_detected(self):
        feats = trend_features(np.arange(100, dtype=float))
        assert feats["trend_slope"] == pytest.approx(1.0)
        assert feats["trend_r2"] == pytest.approx(1.0)

    def test_no_trend_low_r2(self, noise):
        assert trend_features(noise)["trend_r2"] < 0.1

    def test_spectral_entropy_separates_pure_tone_from_noise(self, sine, noise):
        tone = trend_features(sine)["trend_spectral_entropy"]
        broadband = trend_features(noise)["trend_spectral_entropy"]
        assert tone < 0.5 < broadband

    def test_seasonality_strength_on_weekly(self):
        t = np.arange(210)
        weekly = np.sin(2 * np.pi * t / 7.0)
        assert trend_features(weekly)["trend_seasonality_strength"] > 0.9

    def test_level_shift_detection(self):
        stepped = np.concatenate([np.zeros(100), np.full(100, 5.0)])
        flat = np.zeros(200)
        assert (
            trend_features(stepped)["trend_level_shift"]
            > trend_features(flat)["trend_level_shift"]
        )


class TestCombined:
    def test_statistical_features_count_matches_names(self, sine):
        feats = statistical_features(sine)
        assert tuple(feats.keys()) == STATISTICAL_FEATURE_NAMES
        assert len(feats) == 40

    def test_accepts_timeseries_with_missing(self, sine):
        vals = sine.copy()
        vals[20:40] = np.nan
        feats = statistical_features(TimeSeries(vals))
        assert all(np.isfinite(v) for v in feats.values())

    def test_deterministic(self, sine):
        assert statistical_features(sine) == statistical_features(sine)
