"""Numerical edge-case sweep: degenerate inputs through every algorithm.

Every registered imputer and the :class:`FeatureExtractor` are driven over a
catalogue of hostile inputs — all-missing matrices, constants, single
observed points, huge contiguous gaps, infinities, extreme magnitudes, and
near-empty series.  The contract under test is uniform:

* either the algorithm returns a **fully finite** result of the right shape
  with observed entries untouched, or
* it raises a **typed** :class:`~repro.exceptions.ReproError` subclass.

Raw ``LinAlgError`` / ``ZeroDivisionError`` / silent NaN output are bugs.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.exceptions import ImputationError, ReproError, ValidationError
from repro.features.extractor import FeatureExtractor
from repro.imputation.base import available_imputers, get_imputer

ALL_IMPUTERS = available_imputers()


def _base_matrix() -> np.ndarray:
    rng = np.random.default_rng(0)
    wave = np.sin(np.linspace(0, 6 * np.pi, 40))[None, :]
    return wave + rng.normal(0.0, 0.1, (4, 40))


def _edge_matrices() -> dict[str, np.ndarray]:
    """Hostile-but-imputable matrices; each must come back finite."""
    cases: dict[str, np.ndarray] = {}

    constant = np.ones((4, 40))
    constant[0, 3:9] = np.nan
    constant[2, 30:] = np.nan
    cases["constant"] = constant

    single_point = np.full((3, 40), np.nan)
    single_point[:, 0] = [1.0, 2.0, 3.0]
    cases["single_point_rows"] = single_point

    huge_block = _base_matrix()
    huge_block[:, 8:38] = np.nan  # 75% contiguous hole in every row
    cases["huge_block"] = huge_block

    extreme_scale = _base_matrix() * 1e9
    extreme_scale[1, 10:20] = np.nan
    cases["extreme_scale"] = extreme_scale

    one_row = _base_matrix()[:1].copy()
    one_row[0, 12:18] = np.nan
    cases["single_row"] = one_row

    return cases


EDGE_CASES = _edge_matrices()


@pytest.mark.parametrize("name", ALL_IMPUTERS)
@pytest.mark.parametrize("case", sorted(EDGE_CASES))
def test_imputer_edge_matrix_finite_or_typed(name, case):
    X = EDGE_CASES[case]
    imputer = get_imputer(name)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        try:
            out = imputer.impute(X)
        except ReproError:
            return  # typed failure is an acceptable outcome
    assert out.shape == X.shape
    assert np.isfinite(out).all(), f"{name} left non-finite values on {case!r}"
    observed = ~np.isnan(X)
    np.testing.assert_array_equal(out[observed], X[observed])


@pytest.mark.parametrize("name", ALL_IMPUTERS)
def test_imputer_rejects_all_missing(name):
    imputer = get_imputer(name)
    with pytest.raises(ImputationError):
        imputer.impute(np.full((3, 20), np.nan))


@pytest.mark.parametrize("name", ALL_IMPUTERS)
def test_imputer_rejects_infinite_values(name):
    X = _base_matrix()
    X[0, 0] = np.inf
    X[1, 5] = np.nan
    imputer = get_imputer(name)
    with pytest.raises(ValidationError):
        imputer.impute(X)


@pytest.mark.parametrize("name", ALL_IMPUTERS)
def test_imputer_no_missing_is_identity(name):
    X = _base_matrix()
    out = get_imputer(name).impute(X)
    np.testing.assert_array_equal(out, X)
    assert out is not X  # contract: always a copy


@pytest.mark.parametrize("name", ALL_IMPUTERS)
def test_imputer_accepts_1d_input(name):
    values = np.sin(np.linspace(0, 4 * np.pi, 40))
    values[10:16] = np.nan
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        try:
            out = get_imputer(name).impute(values)
        except ReproError:
            return
    assert out.shape == (1, 40)
    assert np.isfinite(out).all()


class TestFeatureExtractorEdges:
    @pytest.fixture(scope="class")
    def extractor(self):
        return FeatureExtractor()

    @pytest.mark.parametrize(
        "label, values",
        [
            ("constant", np.ones(40)),
            ("short", np.arange(5, dtype=float)),
            ("single_sample", np.array([3.0])),
            ("two_samples", np.array([1.0, 2.0])),
            ("huge_magnitude", np.full(40, 1e12)),
            ("tiny_variance", np.ones(40) + np.linspace(0, 1e-12, 40)),
        ],
    )
    def test_degenerate_series_yield_finite_vectors(self, extractor, label, values):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            vec = extractor.extract(values)
        assert vec.shape == (extractor.n_features,)
        assert np.isfinite(vec).all(), f"non-finite feature for {label!r}"

    def test_gappy_series_yield_finite_vectors(self, extractor):
        values = np.r_[np.ones(10), np.full(10, np.nan), np.linspace(0.0, 1.0, 20)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            vec = extractor.extract(values)
        assert np.isfinite(vec).all()

    def test_all_missing_series_raises_typed_error(self, extractor):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(ReproError):
                extractor.extract(np.full(30, np.nan))

    def test_extraction_is_deterministic(self, extractor):
        rng = np.random.default_rng(7)
        values = rng.normal(size=60)
        values[20:30] = np.nan
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            a = extractor.extract(values)
            b = extractor.extract(values.copy())
        np.testing.assert_array_equal(a, b)
