"""End-to-end observability: traced training + inference, report, CLI.

Acceptance path: a full ``ADarts.fit_datasets`` + ``recommend_many`` run
with a tracer and metrics registry installed must produce a valid Chrome
``trace_event`` JSON and a Prometheus-text dump covering at least four
subsystems (race, features, imputation, inference), and ``repro report``
must render evaluation counts, prune ratios, and a slowest-span table
from the saved trace file alone.
"""

import json

import numpy as np
import pytest

from repro import ADarts, ModelRaceConfig, TimeSeries
from repro.cli import main
from repro.clustering.labeling import ClusterLabeler
from repro.exceptions import ValidationError
from repro.observability import (
    MetricsRegistry,
    Tracer,
    use_metrics,
    use_tracer,
)
from repro.observability.report import (
    load_metrics,
    load_trace,
    render_report,
    slowest_spans,
    summarize_trace,
)


REQUIRED_SUBSYSTEMS = {"race", "features", "imputation", "inference"}


def _faulty_series() -> TimeSeries:
    t = np.linspace(0, 4 * np.pi, 160)
    values = np.sin(t) + 0.1 * np.cos(3 * t)
    values[50:70] = np.nan
    return TimeSeries(values, name="faulty")


@pytest.fixture(scope="module")
def traced_artifacts(small_climate_dataset, tmp_path_factory):
    """Run the full traced pipeline once; export every artifact."""
    tracer = Tracer()
    registry = MetricsRegistry()
    engine = ADarts(
        labeler=ClusterLabeler(
            imputer_names=("linear", "knn", "svdimp", "mean"),
            random_state=0,
        ),
        config=ModelRaceConfig(
            n_partial_sets=2, n_folds=2, max_elite=3, random_state=0
        ),
        classifier_names=["knn", "decision_tree", "gaussian_nb"],
    )
    with use_tracer(tracer), use_metrics(registry):
        engine.fit_datasets([small_climate_dataset])
        recs = engine.recommend_many([_faulty_series()])
    out = tmp_path_factory.mktemp("observability")
    return {
        "tracer": tracer,
        "registry": registry,
        "recommendations": recs,
        "trace_path": tracer.export_chrome_trace(out / "trace.json"),
        "prom_path": registry.export(out / "metrics.prom"),
        "json_metrics_path": registry.export(out / "metrics.json"),
    }


class TestTracedRun:
    def test_chrome_trace_is_valid(self, traced_artifacts):
        document = json.loads(traced_artifacts["trace_path"].read_text())
        assert "traceEvents" in document
        events = document["traceEvents"]
        assert len(events) > 20
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["name"], str)

    def test_subsystem_coverage(self, traced_artifacts):
        spans = load_trace(traced_artifacts["trace_path"])
        covered = {
            span["tags"].get("subsystem")
            for span in spans
            if span["tags"].get("subsystem")
        }
        assert REQUIRED_SUBSYSTEMS <= covered
        assert len(covered) >= 4

    def test_prometheus_dump_covers_subsystems(self, traced_artifacts):
        text = traced_artifacts["prom_path"].read_text()
        for family in (
            "repro_race_evaluations_total",
            "repro_features_extract_many_seconds",
            "repro_imputation_runs_total",
            "repro_inference_requests_total",
        ):
            assert family in text
        assert text.endswith("\n")

    def test_json_metrics_round_trip(self, traced_artifacts):
        flat = load_metrics(traced_artifacts["json_metrics_path"])
        race_evals = flat.get("repro_race_evaluations_total")
        assert race_evals and race_evals > 0

    def test_recommendation_produced(self, traced_artifacts):
        (rec,) = traced_artifacts["recommendations"]
        assert rec.algorithm in ("linear", "knn", "svdimp", "mean")

    def test_metrics_match_race_telemetry(self, traced_artifacts):
        registry = traced_artifacts["registry"]
        evals = registry.counter("repro_race_evaluations_total").value
        spans = load_trace(traced_artifacts["trace_path"])
        assert summarize_trace(spans)["race"]["n_evaluations"] == evals


class TestReportFromSavedTrace:
    def test_summary_recovers_race_counts(self, traced_artifacts):
        spans = load_trace(traced_artifacts["trace_path"])
        summary = summarize_trace(spans)
        race = summary["race"]
        assert race["n_iterations"] == 2
        assert 0 < race["n_evaluations"] <= race["n_potential_evaluations"]
        assert 0.0 <= race["prune_ratio"] < 1.0
        assert REQUIRED_SUBSYSTEMS <= set(summary["subsystems"])

    def test_render_mentions_key_sections(self, traced_artifacts):
        spans = load_trace(traced_artifacts["trace_path"])
        metrics = load_metrics(traced_artifacts["prom_path"])
        text = render_report(spans, metrics=metrics)
        assert "A-DARTS run report" in text
        assert "evaluations" in text
        assert "prune ratio" in text
        assert "Slowest spans" in text
        assert "race.iteration" in text

    def test_slowest_spans_sorted(self, traced_artifacts):
        spans = load_trace(traced_artifacts["trace_path"])
        slow = slowest_spans(spans, top=5)
        times = [s["wall_time"] for s in slow]
        assert times == sorted(times, reverse=True)

    def test_cli_report_subcommand(self, traced_artifacts, capsys):
        code = main(
            [
                "report",
                "--trace", str(traced_artifacts["trace_path"]),
                "--metrics", str(traced_artifacts["prom_path"]),
                "--top", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "A-DARTS run report" in out
        assert "prune ratio" in out
        assert "repro_race_evaluations_total" in out


class TestReportSynthetic:
    """Report logic against a hand-built trace file (no training run)."""

    def _write_trace(self, path):
        spans = [
            {
                "name": "race.iteration",
                "wall_time": 0.5,
                "start_time": 100.0,
                "tags": {
                    "subsystem": "race", "n_candidates": 10, "n_folds": 2,
                    "n_evaluations": 16, "n_early_terminated": 2,
                    "n_ttest_pruned": 3, "n_failures": 1,
                },
            },
            {
                "name": "race.iteration",
                "wall_time": 0.25,
                "start_time": 101.0,
                "tags": {
                    "subsystem": "race", "n_candidates": 5, "n_folds": 2,
                    "n_evaluations": 8, "n_early_terminated": 0,
                    "n_ttest_pruned": 1, "n_failures": 0,
                },
            },
            {
                "name": "features.extract_many",
                "wall_time": 0.125,
                "start_time": 99.0,
                "tags": {"subsystem": "features"},
            },
        ]
        path.write_text(json.dumps(spans))
        return path

    def test_plain_span_list_format(self, tmp_path):
        path = self._write_trace(tmp_path / "spans.json")
        summary = summarize_trace(load_trace(path))
        race = summary["race"]
        assert race["n_iterations"] == 2
        assert race["n_evaluations"] == 24
        assert race["n_potential_evaluations"] == 30
        assert race["prune_ratio"] == pytest.approx(1.0 - 24 / 30)
        assert race["n_early_terminated"] == 2
        assert race["n_ttest_pruned"] == 4
        assert race["n_failures"] == 1
        assert summary["by_name"]["race.iteration"]["count"] == 2
        assert summary["by_name"]["race.iteration"]["max"] == 0.5

    def test_rendered_numbers(self, tmp_path):
        path = self._write_trace(tmp_path / "spans.json")
        text = render_report(load_trace(path))
        assert "24 (of 30 potential)" in text
        assert "20.0%" in text  # prune ratio

    def test_load_trace_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_trace(tmp_path / "nope.json")

    def test_load_trace_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_trace(path)

    def test_load_trace_unrecognized_format(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text('{"spans": []}')
        with pytest.raises(ValidationError):
            load_trace(path)

    def test_load_metrics_prometheus_text(self, tmp_path):
        path = tmp_path / "m.prom"
        path.write_text(
            "# HELP repro_x_total help\n"
            "# TYPE repro_x_total counter\n"
            "repro_x_total 7.0\n"
            'repro_y{algo="knn"} 2.0\n'
        )
        flat = load_metrics(path)
        assert flat["repro_x_total"] == 7.0
        assert flat['repro_y{algo="knn"}'] == 2.0


class TestCliObservabilityFlags:
    def test_list_imputers_writes_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "list-imputers",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "wrote trace to" in captured.err
        assert "wrote metrics to" in captured.err
        document = json.loads(trace_path.read_text())
        assert "traceEvents" in document
        assert metrics_path.exists()

    def test_flags_accepted_by_every_subcommand(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["train", "--out", "x.json"],
            ["recommend", "--engine", "e.json", "--data", "d.csv"],
            ["repair", "--engine", "e.json", "--data", "d.csv", "--out", "o"],
            ["list-imputers"],
            ["report", "--trace", "t.json"],
        ):
            args = parser.parse_args(
                argv + ["--trace-out", "t.json", "--metrics-out", "m.prom"]
            )
            assert args.trace_out == "t.json"
            assert args.metrics_out == "m.prom"
