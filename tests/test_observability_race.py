"""ModelRace telemetry: observer events, IterationRecord, no-op parity."""

import pytest

from repro.core import ModelRace, ModelRaceConfig
from repro.datasets.splits import holdout_split
from repro.observability import (
    CompositeObserver,
    IterationRecord,
    MetricsRegistry,
    RaceObserver,
    RecordingObserver,
    Tracer,
    use_metrics,
    use_tracer,
)
from repro.pipeline import Pipeline, ScoreWeights, make_seed_pipelines


@pytest.fixture(scope="module")
def race_data(labeled_features):
    X, y = labeled_features
    return holdout_split(X, y, test_ratio=0.3, random_state=0)


FAST_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=3, n_children_per_parent=2,
    random_state=0,
)

# gamma=0 removes the wall-clock term so runs are strictly comparable.
DETERMINISTIC_CONFIG = ModelRaceConfig(
    n_partial_sets=2, n_folds=2, max_elite=3, n_children_per_parent=2,
    weights=ScoreWeights(alpha=0.5, beta=0.25, gamma=0.0),
    random_state=0,
)


class TestIterationRecord:
    def test_dict_compat(self):
        record = IterationRecord(
            iteration=0, subset_size=10, n_candidates=5, n_folds=2,
            n_evaluations=8, n_early_terminated=1, n_ttest_pruned=2,
            n_elite=3, wall_time=0.5,
        )
        assert record["n_elite"] == 3
        assert record.get("n_folds") == 2
        assert record.get("nope", 42) == 42
        with pytest.raises(KeyError):
            record["does_not_exist"]
        as_dict = record.as_dict()
        assert as_dict["subset_size"] == 10
        assert as_dict["wall_time"] == 0.5

    def test_potential_evaluations(self):
        record = IterationRecord(
            iteration=0, subset_size=10, n_candidates=7, n_folds=3
        )
        assert record.n_potential_evaluations == 21


class TestObserverEvents:
    @pytest.fixture(scope="class")
    def observed_run(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        observer = RecordingObserver()
        seeds = make_seed_pipelines(["knn", "decision_tree", "gaussian_nb"])
        result = ModelRace(FAST_CONFIG, observer=observer).run(
            seeds, X_tr, y_tr, X_te, y_te
        )
        return observer, result

    def test_lifecycle_events_fired(self, observed_run):
        observer, result = observed_run
        names = [name for name, _ in observer.events]
        assert names[0] == "race_start"
        assert names[-1] == "race_end"
        assert names.count("iteration_start") == FAST_CONFIG.n_partial_sets
        assert names.count("iteration_end") == FAST_CONFIG.n_partial_sets
        assert names.count("ttest_prune") == FAST_CONFIG.n_partial_sets
        assert names.count("elite_refit") == 1

    def test_candidate_scored_matches_result(self, observed_run):
        observer, result = observed_run
        scored = observer.of_type("candidate_scored")
        assert len(scored) == result.n_evaluations
        for payload in scored:
            assert hasattr(payload["score"], "score")  # PipelineScore

    def test_iteration_end_carries_records(self, observed_run):
        observer, result = observed_run
        records = [p["record"] for p in observer.of_type("iteration_end")]
        assert records == result.iterations
        for record in records:
            assert isinstance(record, IterationRecord)
            assert record.wall_time > 0.0
            assert record.n_folds >= 2
            assert record.n_evaluations <= record.n_potential_evaluations

    def test_early_termination_consistency(self, observed_run):
        observer, result = observed_run
        assert len(observer.of_type("early_termination")) == (
            result.n_early_terminated
        )

    def test_run_observer_overrides_instance(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        per_run = RecordingObserver()
        race = ModelRace(FAST_CONFIG, observer=RecordingObserver())
        race.run(
            make_seed_pipelines(["knn"]), X_tr, y_tr, X_te, y_te,
            observer=per_run,
        )
        assert per_run.events  # the per-run observer received the stream

    def test_composite_fans_out(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        a, b = RecordingObserver(), RecordingObserver()
        ModelRace(FAST_CONFIG, observer=CompositeObserver([a, b])).run(
            make_seed_pipelines(["knn"]), X_tr, y_tr, X_te, y_te
        )
        assert [n for n, _ in a.events] == [n for n, _ in b.events]

    def test_base_observer_is_noop(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        result = ModelRace(FAST_CONFIG, observer=RaceObserver()).run(
            make_seed_pipelines(["knn"]), X_tr, y_tr, X_te, y_te
        )
        assert result.elite


class TestRaceResultTelemetry:
    def test_history_backward_compatible(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        result = ModelRace(FAST_CONFIG).run(
            make_seed_pipelines(["knn", "ridge"]), X_tr, y_tr, X_te, y_te
        )
        history = result.history
        assert isinstance(history, list)
        assert all(isinstance(h, dict) for h in history)
        for record in history:
            assert record["n_elite"] <= FAST_CONFIG.max_elite
            assert record["wall_time"] > 0.0

    def test_prune_ratio_bounds(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        result = ModelRace(FAST_CONFIG).run(
            make_seed_pipelines(["knn", "decision_tree", "gaussian_nb"]),
            X_tr, y_tr, X_te, y_te,
        )
        assert 0.0 <= result.prune_ratio < 1.0
        assert result.n_potential_evaluations >= result.n_evaluations
        expected = 1.0 - (
            result.n_evaluations / result.n_potential_evaluations
        )
        assert result.prune_ratio == pytest.approx(expected)

    def test_per_iteration_wall_clock_sums_below_total(self, race_data):
        X_tr, X_te, y_tr, y_te = race_data
        result = ModelRace(FAST_CONFIG).run(
            make_seed_pipelines(["knn"]), X_tr, y_tr, X_te, y_te
        )
        iteration_total = sum(r.wall_time for r in result.iterations)
        assert 0.0 < iteration_total <= result.runtime + 1e-6


class TestNoOpParity:
    """Observer absent + null tracer ⇒ identical RaceResult to seed path."""

    def _run(self, race_data, **kwargs):
        X_tr, X_te, y_tr, y_te = race_data
        seeds = make_seed_pipelines(["knn", "ridge", "gaussian_nb"])
        return ModelRace(DETERMINISTIC_CONFIG, **kwargs).run(
            seeds, X_tr, y_tr, X_te, y_te
        )

    def test_instrumented_run_matches_plain_run(self, race_data):
        plain = self._run(race_data)
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            traced = self._run(race_data, observer=RecordingObserver())
        assert [p.config_key() for p in plain.elite] == [
            p.config_key() for p in traced.elite
        ]
        assert plain.scores == traced.scores
        assert [r.n_evaluations for r in plain.iterations] == [
            r.n_evaluations for r in traced.iterations
        ]
        assert plain.prune_ratio == traced.prune_ratio
        # And the instrumented run actually produced telemetry.
        assert len(tracer) > 0
        assert (
            registry.counter("repro_race_evaluations_total").value
            == traced.n_evaluations
        )

    def test_null_path_emits_nothing(self, race_data):
        """With nothing installed the defaults stay silent singletons."""
        from repro.observability import NULL_METRICS, NULL_TRACER, get_metrics
        from repro.observability import get_tracer

        self._run(race_data)
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
        assert NULL_TRACER.finished_spans() == []


class _CrashingPipeline(Pipeline):
    """A pipeline whose fit always raises — races must survive it."""

    def fit(self, X, y):
        raise RuntimeError("synthetic failure for telemetry test")

    def clone(self) -> "_CrashingPipeline":
        return _CrashingPipeline(
            self.classifier_name,
            dict(self.classifier_params),
            self.scaler_name,
            dict(self.scaler_params),
        )


class TestFailureTelemetry:
    def test_crashing_pipeline_recorded_not_lost(self, race_data):
        """A pipeline that raises is scored -inf AND counted as a failure."""
        X_tr, X_te, y_tr, y_te = race_data
        bad = _CrashingPipeline("decision_tree")
        good = make_seed_pipelines(["gaussian_nb"])
        registry = MetricsRegistry()
        observer = RecordingObserver()
        with use_metrics(registry):
            result = ModelRace(
                ModelRaceConfig(
                    n_partial_sets=1, n_folds=2, random_state=0
                ),
                observer=observer,
            ).run(good + [bad], X_tr, y_tr, X_te, y_te)
        failures = [
            p
            for p in observer.of_type("candidate_scored")
            if p["score"].error is not None
        ]
        assert failures, "the crashing pipeline must surface in telemetry"
        for payload in failures:
            assert "RuntimeError" in payload["score"].error
            assert payload["score"].score == float("-inf")
        assert any(r.n_failures > 0 for r in result.iterations)
        assert (
            registry.counter(
                "repro_pipeline_failures_total",
                labels={"classifier": "decision_tree"},
            ).value
            > 0
        )
