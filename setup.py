"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` requires bdist_wheel support; on minimal offline
machines ``python setup.py develop`` provides the same editable install.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
