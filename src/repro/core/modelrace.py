"""ModelRace: the two-phase racing pipeline selector (Algorithm 1).

The race iterates over growing partial training sets.  Each iteration:

1. **Synthesize** new candidate pipelines around the current elite
   (one-parameter mutations, Fig. 3 step 1);
2. **Evaluate** every candidate on stratified k-folds of the current partial
   set, scoring ``(alpha*F1 + beta*R@3 - gamma*time) / (alpha+beta+gamma)``;
3. **Early-terminate** (phase-1 pruning) candidates that trail the fold's
   best score by a margin — they skip the remaining folds.  All of a
   fold's evaluations complete *before* the margin test runs (a
   deterministic post-fold barrier), so every candidate is judged
   against the true fold best regardless of evaluation order — and the
   fold's evaluations can fan out across workers
   (``ModelRaceConfig.parallel``) without changing the outcome;
4. **Prune** (phase-2) via pairwise Welch t-tests on accumulated score
   distributions: statistically *similar* pipelines are redundant, so the
   lower-mean member is dropped; the elite is finally capped by mean score.

Distinct from classic AutoML racing, multiple configurations of the *same*
classifier family can survive — duplicates are the point (Section VII-D).

Telemetry
---------
The race emits its full lifecycle into a
:class:`~repro.observability.observer.RaceObserver` (pass one to
``ModelRace(observer=...)`` or ``run(observer=...)``), opens spans on the
process tracer (``repro.observability.get_tracer()``), and increments
counters/histograms on the process metrics registry.  With nothing
installed every emission is a shared no-op, so the uninstrumented hot
path is unchanged.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sps

from repro.core.config import ModelRaceConfig
from repro.datasets.splits import stratified_kfold
from repro.exceptions import EvaluationError, ValidationError
from repro.observability import (
    IterationRecord,
    NULL_OBSERVER,
    RaceObserver,
    get_logger,
    get_metrics,
    get_tracer,
)
from repro.observability.ledger import get_ledger, new_id
from repro.parallel import ExecutionEngine, ScoreMemo, hash_arrays
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.scoring import PipelineScore, score_pipeline
from repro.pipeline.synthesizer import Synthesizer
from repro.resilience import (
    CircuitBreaker,
    get_fault_injector,
    get_fault_policy,
)
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

_log = get_logger(__name__)


def _evaluate_candidate(
    pipeline: Pipeline,
    *,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    weights,
    time_scale: float,
    iteration: int,
    fold: int,
    policy=None,
    injector=None,
) -> PipelineScore:
    """Score one candidate on one fold (picklable parallel worker).

    The single ``score_pipeline`` call site of the race.  The span is a
    shared no-op unless a tracer is installed in *this* process —
    process-backend workers therefore trace nothing, while serial and
    thread execution feed the parent tracer as before.

    With a :class:`~repro.resilience.FaultPolicy`, each attempt runs
    under the policy's evaluation deadline, and *retryable* failures
    (injected chaos, transient infrastructure trouble) are re-attempted
    up to ``policy.max_retries`` times; a failure that survives the
    policy is returned as a scored-as-failed :class:`PipelineScore`
    (``score=-inf``, ``error`` set) so the race records it instead of
    dying.  With an injector, the ``race.evaluate`` fault site fires
    first, keyed by the deterministic ``(iteration, fold)`` token so
    fault plans replay identically across execution backends.
    """
    tracer = get_tracer()
    with tracer.span(
        "race.evaluate",
        subsystem="race",
        iteration=iteration,
        fold=fold,
        classifier=pipeline.classifier_name,
    ):
        def _attempt() -> PipelineScore:
            if injector is not None:
                injector.check(
                    "race.evaluate",
                    pipeline.classifier_name,
                    token=(iteration, fold),
                )
            return score_pipeline(
                pipeline.clone(),
                X_train,
                y_train,
                X_test,
                y_test,
                weights=weights,
                time_scale=time_scale,
                injector=injector,
            )

        if policy is None and injector is None:
            return _attempt()  # historical zero-overhead path
        try:
            if policy is None:
                return _attempt()
            return policy.run(
                _attempt,
                label=f"race.evaluate:{pipeline.classifier_name}",
            )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            _log.warning(
                "evaluation of %s failed beyond the fault policy: %s",
                pipeline,
                error,
            )
            return PipelineScore(
                0.0, 0.0, float("inf"), float("-inf"), error=error
            )


@dataclass
class RaceResult:
    """Outcome of one ModelRace run.

    Attributes
    ----------
    elite:
        Surviving pipelines (fitted on the full training set).
    scores:
        Accumulated fold scores per surviving pipeline config key.
    iterations:
        Structured per-iteration diagnostics
        (:class:`~repro.observability.observer.IterationRecord`).
    runtime:
        Total wall-clock seconds of the race.
    ledger_record_id:
        Id of the ``race`` provenance row appended to the active
        :class:`~repro.observability.ledger.RepairLedger`, ``None`` when
        no ledger was installed.  ``fit`` and ``repair`` rows reference
        it so ``repro explain`` can walk back to the elite fold scores.
    """

    elite: list[Pipeline]
    scores: dict[tuple, list[float]]
    iterations: list[IterationRecord] = field(default_factory=list)
    runtime: float = 0.0
    ledger_record_id: str | None = None

    @property
    def history(self) -> list[dict]:
        """Legacy view: per-iteration records as plain dicts."""
        return [record.as_dict() for record in self.iterations]

    @property
    def n_evaluations(self) -> int:
        """Total number of (pipeline, fold) evaluations performed."""
        return sum(r.n_evaluations for r in self.iterations)

    @property
    def n_potential_evaluations(self) -> int:
        """Evaluations a pruning-free race would have run."""
        return sum(r.n_potential_evaluations for r in self.iterations)

    @property
    def n_early_terminated(self) -> int:
        """Total phase-1 (fold-margin) terminations."""
        return sum(r.n_early_terminated for r in self.iterations)

    @property
    def n_ttest_pruned(self) -> int:
        """Total phase-2 (t-test) prunes."""
        return sum(r.n_ttest_pruned for r in self.iterations)

    @property
    def n_failures(self) -> int:
        """Total evaluations that raised inside fit/predict."""
        return sum(r.n_failures for r in self.iterations)

    @property
    def n_quarantined(self) -> int:
        """Total candidates quarantined by the race circuit breaker."""
        return sum(r.n_quarantined for r in self.iterations)

    @property
    def prune_ratio(self) -> float:
        """Fraction of potential evaluations avoided by pruning (Fig. 8).

        ``1 - n_evaluations / n_potential_evaluations``; 0.0 when nothing
        could have been pruned.
        """
        potential = self.n_potential_evaluations
        if potential <= 0:
            return 0.0
        return max(0.0, 1.0 - self.n_evaluations / potential)


class ModelRace:
    """Run Algorithm 1 over a labeled feature matrix.

    Parameters
    ----------
    config:
        :class:`ModelRaceConfig` tuning knobs.
    observer:
        Default :class:`RaceObserver` receiving race lifecycle events
        (may be overridden per :meth:`run` call).
    """

    def __init__(
        self,
        config: ModelRaceConfig | None = None,
        observer: RaceObserver | None = None,
        score_memo: ScoreMemo | None = None,
    ):
        self.config = config or ModelRaceConfig()
        self.observer = observer
        #: Memo of (pipeline, fold-content) → PipelineScore.  ``None``
        #: creates a fresh per-race memo inside each :meth:`run`; pass a
        #: shared :class:`~repro.parallel.ScoreMemo` to reuse scores
        #: across repeated races over the same corpus.
        self.score_memo = score_memo

    # ------------------------------------------------------------------
    def _partial_sets(
        self, n: int, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Growing nested subsets of sample indices (S_1 ⊂ S_2 ⊂ ... = all)."""
        cfg = self.config
        perm = rng.permutation(n)
        if cfg.n_partial_sets == 1:
            return [perm]
        fractions = np.linspace(cfg.initial_fraction, 1.0, cfg.n_partial_sets)
        sets = []
        for frac in fractions:
            size = max(cfg.n_folds + 1, int(round(frac * n)))
            sets.append(perm[: min(size, n)])
        return sets

    def _prune_ttest(
        self, candidates: list[Pipeline], scores: dict[tuple, list[float]]
    ) -> tuple[list[Pipeline], int]:
        """Phase-2 pruning: drop the lower-mean member of similar pairs.

        Per-key count/mean/variance are computed **once** up front; the
        pairwise Welch tests then run from those sufficient statistics
        (``ttest_ind_from_stats``), so the O(n²) comparison loop never
        touches the raw score lists again.  Decisions are identical to
        the naive recompute-everything implementation (snapshot-tested).
        """
        cfg = self.config
        alive = {p.config_key(): p for p in candidates}
        # Sufficient statistics, one pass per key.
        stats: dict[tuple, tuple[int, float, float]] = {}
        for key in alive:
            dist = scores.get(key) or []
            arr = np.asarray(dist, dtype=float)
            n = int(arr.size)
            mean = float(arr.mean()) if n else float("nan")
            # ddof=1 sample std matches scipy.stats.ttest_ind internals.
            std = float(arr.std(ddof=1)) if n >= 2 else 0.0
            stats[key] = (n, mean, std)
        keys = sorted(
            alive,
            key=lambda k: stats[k][1] if stats[k][0] else -np.inf,
            reverse=True,
        )
        pruned = 0
        kept: list[tuple] = []
        for key in keys:
            n_d, mean_d, std_d = stats[key]
            redundant = False
            for kept_key in kept:
                n_r, mean_r, std_r = stats[kept_key]
                if n_d < 2 or n_r < 2:
                    # Empty-dist fallback mirrors the historical
                    # ``np.mean(dist or [0.0])`` expression exactly.
                    similar = np.isclose(
                        mean_d if n_d else 0.0, mean_r, atol=1e-3
                    )
                else:
                    stat = sps.ttest_ind_from_stats(
                        mean_r, std_r, n_r, mean_d, std_d, n_d,
                        equal_var=False,
                    )
                    similar = (
                        np.isnan(stat.pvalue) or stat.pvalue > cfg.ttest_pvalue
                    )
                if similar:
                    redundant = True
                    break
            if redundant:
                pruned += 1
            else:
                kept.append(key)
        # Cap the elite by mean score (kept is already sorted best-first).
        kept = kept[: cfg.max_elite]
        return [alive[k] for k in kept], pruned

    # ------------------------------------------------------------------
    def run(
        self,
        seed_pipelines: list[Pipeline],
        X: np.ndarray,
        y: np.ndarray,
        X_test: np.ndarray,
        y_test: np.ndarray,
        observer: RaceObserver | None = None,
    ) -> RaceResult:
        """Race the pipelines; return the surviving elite fitted on all of X.

        Parameters
        ----------
        seed_pipelines:
            Initial pipelines (>= one per classifier family of interest).
        X, y:
            Training features/labels (the union of partial sets S).
        X_test, y_test:
            The held-out test set T used for evaluation inside the race.
        observer:
            Race event callbacks for this run (overrides the instance
            default; ``None`` falls back to it, then to a no-op).
        """
        if not seed_pipelines:
            raise ValidationError("seed_pipelines must be non-empty")
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValidationError("X and y disagree on sample count")
        cfg = self.config
        obs = observer or self.observer or NULL_OBSERVER
        tracer = get_tracer()
        metrics = get_metrics()
        eval_counter = metrics.counter(
            "repro_race_evaluations_total",
            "Pipeline-fold evaluations executed by ModelRace",
        )
        early_counter = metrics.counter(
            "repro_race_early_terminations_total",
            "Candidates dropped by phase-1 (fold-margin) pruning",
        )
        ttest_counter = metrics.counter(
            "repro_race_ttest_pruned_total",
            "Candidates dropped by phase-2 (t-test) pruning",
        )
        failure_counter = metrics.counter(
            "repro_race_eval_failures_total",
            "Evaluations that raised inside pipeline fit/predict",
        )
        quarantine_counter = metrics.counter(
            "repro_race_quarantined_total",
            "Candidates quarantined by the race circuit breaker",
        )
        score_hist = metrics.histogram(
            "repro_race_eval_score",
            "Distribution of per-evaluation race scores",
        )
        eval_time_hist = metrics.histogram(
            "repro_race_eval_seconds",
            "Per-evaluation pipeline fit+predict wall seconds",
        )
        iteration_time_hist = metrics.histogram(
            "repro_race_iteration_seconds",
            "Per-iteration wall seconds of the race",
        )

        # Resilience context: explicit config wins, then the process-level
        # policy/injector, then the historical behaviour (no retries, no
        # deadlines, quarantine after 3 consecutive failures).
        policy = (
            cfg.fault_policy
            if cfg.fault_policy is not None
            else get_fault_policy()
        )
        injector = (
            cfg.fault_injector
            if cfg.fault_injector is not None
            else get_fault_injector()
        )
        breaker = CircuitBreaker(
            policy.quarantine_threshold if policy is not None else 3,
            name="race",
        )
        quarantined: set[tuple] = set()

        rng = ensure_rng(cfg.random_state)
        synthesizer = Synthesizer(
            n_children_per_parent=cfg.n_children_per_parent,
            random_state=rng,
        )
        engine = ExecutionEngine(cfg.parallel, injector=injector)
        memo = self.score_memo if self.score_memo is not None else ScoreMemo()
        # Run-level context folded into every memo key: identical fold
        # data under a different test set / scoring config never collides.
        memo_context = hash_arrays(
            X_test,
            y_test,
            extra=repr((cfg.weights, cfg.time_budget)),
        )
        scores: dict[tuple, list[float]] = {}
        elite: list[Pipeline] = list(seed_pipelines)
        records: list[IterationRecord] = []
        time_scale = cfg.time_budget  # absolute normalizer for `time`
        obs.on_race_start(len(seed_pipelines), int(X.shape[0]))
        total_timer = Timer()
        # ``engine`` participates in the with-block so its worker pools
        # (reused across folds) are torn down when the race finishes.
        with engine, total_timer, tracer.span(
            "race.run",
            subsystem="race",
            n_seeds=len(seed_pipelines),
            n_samples=int(X.shape[0]),
        ) as race_span:
            for iteration, subset in enumerate(self._partial_sets(X.shape[0], rng)):
                iteration_timer = Timer()
                iteration_span = tracer.span(
                    "race.iteration",
                    subsystem="race",
                    iteration=iteration,
                    subset_size=int(len(subset)),
                )
                with iteration_timer, iteration_span:
                    new = synthesizer.synthesize(
                        elite, known=set(scores)
                    ) if iteration > 0 else synthesizer.synthesize(elite)
                    candidates = _dedupe(elite + new)
                    if quarantined:
                        # Quarantined configurations never re-enter the
                        # race — unless dropping them would empty it.
                        healthy = [
                            p for p in candidates
                            if p.config_key() not in quarantined
                        ]
                        if healthy:
                            candidates = healthy
                    obs.on_iteration_start(
                        iteration, int(len(subset)), len(candidates)
                    )
                    active = {p.config_key() for p in candidates}
                    n_evals = 0
                    n_early = 0
                    n_failures = 0
                    n_quarantined = 0
                    X_sub, y_sub = X[subset], y[subset]
                    n_folds = min(cfg.n_folds, max(2, len(subset) // 2))
                    folds = list(
                        stratified_kfold(y_sub, n_splits=n_folds, random_state=rng)
                    )
                    for fold_idx, (train_idx, _fold_test_idx) in enumerate(folds):
                        # Candidates still racing (early-terminated ones
                        # skip the remaining folds), in stable order.
                        fold_pipelines = [
                            p for p in candidates if p.config_key() in active
                        ]
                        if not fold_pipelines:
                            continue
                        X_train, y_train = X_sub[train_idx], y_sub[train_idx]
                        fold_key = hash_arrays(
                            X_train, y_train, extra=memo_context
                        )
                        # Memo lookup: identical (pipeline, fold-content)
                        # work is never rescored.
                        slots: list[PipelineScore | None] = []
                        pending: list[Pipeline] = []
                        for pipeline in fold_pipelines:
                            cached = memo.get((pipeline.config_key(), fold_key))
                            slots.append(cached)
                            if cached is None:
                                pending.append(pipeline)
                        task = functools.partial(
                            _evaluate_candidate,
                            X_train=X_train,
                            y_train=y_train,
                            X_test=X_test,
                            y_test=y_test,
                            weights=cfg.weights,
                            time_scale=time_scale,
                            iteration=iteration,
                            fold=fold_idx,
                            policy=policy,
                            injector=injector,
                        )
                        computed = iter(
                            engine.map(task, pending, label="race.evaluate_fold")
                            if pending
                            else []
                        )
                        results: list[PipelineScore] = [
                            slot if slot is not None else next(computed)
                            for slot in slots
                        ]
                        for pipeline, result in zip(fold_pipelines, results):
                            key = pipeline.config_key()
                            if result.error is None:
                                # Failed scores are never memoized: a
                                # transient failure must not poison a
                                # shared cross-race memo.
                                memo.put((key, fold_key), result)
                            n_evals += 1
                            eval_counter.inc()
                            score_hist.observe(result.score)
                            eval_time_hist.observe(result.runtime)
                            if result.error is not None:
                                n_failures += 1
                                failure_counter.inc()
                                if policy is not None and policy.fail_fast:
                                    raise EvaluationError(
                                        f"evaluation of {pipeline} failed "
                                        f"({result.error}) and the fault "
                                        "policy is fail-fast"
                                    )
                                if breaker.record_failure(key, result.error):
                                    # Repeated consecutive failures: the
                                    # candidate leaves the race for
                                    # reliability, not score, reasons.
                                    quarantined.add(key)
                                    active.discard(key)
                                    n_quarantined += 1
                                    quarantine_counter.inc()
                                    obs.on_quarantine(
                                        iteration, fold_idx, key
                                    )
                            else:
                                breaker.record_success(key)
                            obs.on_candidate_scored(
                                iteration, fold_idx, key, result
                            )
                            scores.setdefault(key, []).append(result.score)
                        # Phase-1 pruning (lines 11-12) as a deterministic
                        # post-fold barrier: every candidate is judged
                        # against the *true* fold best, so the decision no
                        # longer depends on candidate evaluation order.
                        fold_best = max(r.score for r in results)
                        for pipeline, result in zip(fold_pipelines, results):
                            key = pipeline.config_key()
                            if key not in active:
                                continue  # already quarantined this fold
                            if (
                                result.score
                                < fold_best - cfg.early_termination_margin
                            ):
                                active.discard(key)
                                n_early += 1
                                early_counter.inc()
                                obs.on_early_termination(
                                    iteration, fold_idx, key
                                )
                    survivors = [p for p in candidates if p.config_key() in active]
                    if not survivors:  # safety: never lose everything
                        survivors = [
                            p for p in candidates
                            if p.config_key() not in quarantined
                        ] or candidates
                    elite, n_pruned = self._prune_ttest(survivors, scores)
                    ttest_counter.inc(n_pruned)
                    obs.on_ttest_prune(iteration, n_pruned)
                record = IterationRecord(
                    iteration=iteration,
                    subset_size=int(len(subset)),
                    n_candidates=len(candidates),
                    n_folds=n_folds,
                    n_evaluations=n_evals,
                    n_early_terminated=n_early,
                    n_ttest_pruned=n_pruned,
                    n_failures=n_failures,
                    n_quarantined=n_quarantined,
                    n_elite=len(elite),
                    wall_time=iteration_timer.elapsed,
                )
                iteration_time_hist.observe(record.wall_time)
                for tag in (
                    "n_candidates",
                    "n_folds",
                    "n_evaluations",
                    "n_early_terminated",
                    "n_ttest_pruned",
                    "n_failures",
                    "n_quarantined",
                    "n_elite",
                ):
                    iteration_span.set_tag(tag, record[tag])
                records.append(record)
                obs.on_iteration_end(record)
            # Final band filter: the vote is only as strong as its weakest
            # member, so keep diversity among *top* performers only.
            means = {
                p.config_key(): float(np.mean(scores[p.config_key()]))
                for p in elite
                if scores.get(p.config_key())
            }
            if means:
                best_mean = max(means.values())
                banded = [
                    p for p in elite
                    if means.get(p.config_key(), -np.inf)
                    >= best_mean - cfg.elite_band
                ]
                if banded:
                    elite = banded
            # Final fit of the elite on the full training data.
            fitted = []
            with tracer.span(
                "race.elite_refit", subsystem="race", n_elite=len(elite)
            ):
                for pipeline in elite:
                    fresh = pipeline.clone()
                    try:
                        fresh.fit(X, y)
                    except Exception as exc:
                        _log.warning(
                            "elite refit failed for %s: %s: %s",
                            pipeline,
                            type(exc).__name__,
                            exc,
                        )
                        continue
                    fitted.append(fresh)
            obs.on_elite_refit(len(elite), len(fitted))
            if not fitted:
                raise ValidationError("no elite pipeline could be fitted")
            race_span.set_tag("n_elite", len(fitted))
        result = RaceResult(
            elite=fitted,
            scores={p.config_key(): scores.get(p.config_key(), []) for p in fitted},
            iterations=records,
            runtime=total_timer.elapsed,
        )
        metrics.gauge(
            "repro_race_prune_ratio",
            "Fraction of potential evaluations avoided by pruning",
        ).set(result.prune_ratio)
        metrics.gauge(
            "repro_race_score_memo_hit_rate",
            "Fraction of race evaluations served from the score memo",
        ).set(memo.hit_rate)
        ledger = get_ledger()
        if ledger.enabled:
            result.ledger_record_id = ledger.record(
                "race",
                {
                    "elites": [
                        {
                            "classifier": p.classifier_name,
                            "classifier_params": dict(
                                p.classifier_params or {}
                            ),
                            "scaler": p.scaler_name,
                            "fold_scores": [
                                float(s) for s in result.scores.get(
                                    p.config_key(), []
                                )
                            ],
                            "mean_score": float(
                                np.mean(result.scores[p.config_key()])
                            )
                            if result.scores.get(p.config_key())
                            else None,
                        }
                        for p in result.elite
                    ],
                    "iterations": [r.as_dict() for r in result.iterations],
                    "n_evaluations": result.n_evaluations,
                    "n_early_terminated": result.n_early_terminated,
                    "n_ttest_pruned": result.n_ttest_pruned,
                    "n_failures": result.n_failures,
                    "n_quarantined": result.n_quarantined,
                    "prune_ratio": result.prune_ratio,
                    "runtime_s": result.runtime,
                },
                record_id=new_id("race"),
            )
        obs.on_race_end(result)
        return result


def _dedupe(pipelines: list[Pipeline]) -> list[Pipeline]:
    seen: set = set()
    unique: list[Pipeline] = []
    for p in pipelines:
        key = p.config_key()
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique
