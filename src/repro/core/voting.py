"""Voting ensembles over the winning pipelines (Section IV-B, step 7).

The recommendation "computes a matrix of scores where each entry represents
the probability of a given imputation algorithm being chosen by the selected
pipelines [then] aggregates results by averaging the probabilities".  That is
*soft voting*; the paper found it beats majority voting, which we also
provide for the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.pipeline.pipeline import Pipeline


class _BaseEnsemble:
    """Shared plumbing: class-union alignment across member pipelines."""

    def __init__(self, pipelines: list[Pipeline]):
        if not pipelines:
            raise ValidationError("ensemble needs at least one pipeline")
        self.pipelines = list(pipelines)
        classes: list = []
        for p in self.pipelines:
            try:
                member_classes = p.classes_
            except NotFittedError:
                raise ValidationError(
                    "all ensemble pipelines must be fitted"
                ) from None
            classes.extend(member_classes.tolist())
        self.classes_ = np.array(sorted(set(classes), key=str))

    def _aligned_proba(self, pipeline: Pipeline, X: np.ndarray) -> np.ndarray:
        """Member probabilities re-indexed onto the union class axis."""
        proba = pipeline.predict_proba(X)
        out = np.zeros((proba.shape[0], len(self.classes_)))
        col_of = {cls: j for j, cls in enumerate(self.classes_.tolist())}
        for j, cls in enumerate(pipeline.classes_.tolist()):
            out[:, col_of[cls]] = proba[:, j]
        return out

    def member_probas(self, X) -> np.ndarray:
        """Per-member aligned probability tensor.

        Shape ``(n_members, n_samples, n_classes)`` on the union class
        axis — the raw material for serving-side disagreement metrics
        (see :func:`repro.observability.serving.vote_disagreement`).
        """
        X = np.asarray(X, dtype=float)
        return np.stack(
            [self._aligned_proba(p, X) for p in self.pipelines], axis=0
        )

    def predict(self, X) -> np.ndarray:
        """Hard recommendations: the top-probability class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_rankings(self, X) -> list[list]:
        """Per-sample class rankings, best first."""
        proba = self.predict_proba(X)
        order = np.argsort(proba, axis=1)[:, ::-1]
        return [[self.classes_[j] for j in row] for row in order]

    def predict_proba(self, X) -> np.ndarray:
        raise NotImplementedError


class SoftVotingEnsemble(_BaseEnsemble):
    """Average the class-probability matrices of all member pipelines."""

    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        acc = np.zeros((X.shape[0], len(self.classes_)))
        for pipeline in self.pipelines:
            acc += self._aligned_proba(pipeline, X)
        return acc / len(self.pipelines)


class MajorityVotingEnsemble(_BaseEnsemble):
    """One-pipeline-one-vote hard voting (the ablation baseline).

    ``predict_proba`` returns normalized vote counts, so rankings/MRR remain
    computable — coarser than soft probabilities, which is exactly the
    deficiency the paper observed.
    """

    def predict_proba(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        votes = np.zeros((X.shape[0], len(self.classes_)))
        col_of = {cls: j for j, cls in enumerate(self.classes_.tolist())}
        for pipeline in self.pipelines:
            pred = pipeline.predict(X)
            for i, label in enumerate(pred):
                votes[i, col_of[label]] += 1.0
        return votes / len(self.pipelines)
