"""Voting ensembles over the winning pipelines (Section IV-B, step 7).

The recommendation "computes a matrix of scores where each entry represents
the probability of a given imputation algorithm being chosen by the selected
pipelines [then] aggregates results by averaging the probabilities".  That is
*soft voting*; the paper found it beats majority voting, which we also
provide for the ablation bench.

Graceful degradation
--------------------
A production vote must survive a sick member.  :meth:`predict_proba_detailed`
is the resilient entry point: every member contribution runs under a
try/except + finite check, failing members are *dropped* and the vote is
re-normalized over the survivors, and a per-ensemble
:class:`~repro.resilience.CircuitBreaker` quarantines members that fail
repeatedly so later requests skip them outright.  The accompanying
:class:`VoteDetail` says exactly which members voted, which failed, and
which were skipped — ``degraded`` is True whenever the vote was not
unanimous-membership.  Only when *every* member fails does the ensemble
raise :class:`~repro.exceptions.EnsembleError`, signalling the caller
(``ADarts.recommend_many``) to take its static fallback path.

The ``ensemble.member`` fault-injection site fires before each member's
contribution; a ``"nan"`` fault poisons the member's probability matrix so
the finite check trips — exercising the same failure path a buggy
classifier would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import EnsembleError, NotFittedError, ValidationError
from repro.observability import get_logger, get_metrics
from repro.pipeline.pipeline import Pipeline
from repro.resilience import CircuitBreaker, get_fault_injector
from repro.resilience.stats import tick

_log = get_logger(__name__)

#: Consecutive member failures that quarantine an ensemble member.
MEMBER_QUARANTINE_THRESHOLD = 3


@dataclass(frozen=True)
class VoteDetail:
    """How one ensemble vote actually happened.

    Attributes
    ----------
    n_members:
        Total members of the ensemble.
    used_members:
        Display names of the members whose contributions made the vote.
    failed_members:
        Members that raised (or produced non-finite probabilities) during
        *this* vote and were dropped.
    skipped_members:
        Members skipped up front because their circuit was already open.
    proba:
        The aggregated probability matrix, re-normalized over
        ``used_members``.
    member_probas:
        Per-used-member aligned contribution tensor
        ``(n_used, n_samples, n_classes)`` — the raw material for
        serving-side disagreement metrics.
    """

    n_members: int
    used_members: tuple[str, ...]
    failed_members: tuple[str, ...] = ()
    skipped_members: tuple[str, ...] = ()
    proba: np.ndarray = field(default=None, repr=False)
    member_probas: np.ndarray = field(default=None, repr=False)

    @property
    def n_used(self) -> int:
        return len(self.used_members)

    @property
    def n_failed(self) -> int:
        return len(self.failed_members)

    @property
    def degraded(self) -> bool:
        """True when any member was dropped or skipped for this vote."""
        return bool(self.failed_members or self.skipped_members)


class _BaseEnsemble:
    """Shared plumbing: class-union alignment across member pipelines."""

    def __init__(self, pipelines: list[Pipeline]):
        if not pipelines:
            raise ValidationError("ensemble needs at least one pipeline")
        self.pipelines = list(pipelines)
        classes: list = []
        for p in self.pipelines:
            try:
                member_classes = p.classes_
            except NotFittedError:
                raise ValidationError(
                    "all ensemble pipelines must be fitted"
                ) from None
            classes.extend(member_classes.tolist())
        self.classes_ = np.array(sorted(set(classes), key=str))
        #: Stable display names (classifier family + position).
        self.member_names: tuple[str, ...] = tuple(
            f"{p.classifier_name}#{i}" for i, p in enumerate(self.pipelines)
        )
        #: Quarantines members after repeated consecutive vote failures.
        self.breaker = CircuitBreaker(
            MEMBER_QUARANTINE_THRESHOLD, name="ensemble"
        )

    def _aligned_proba(self, pipeline: Pipeline, X: np.ndarray) -> np.ndarray:
        """Member probabilities re-indexed onto the union class axis."""
        proba = pipeline.predict_proba(X)
        out = np.zeros((proba.shape[0], len(self.classes_)))
        col_of = {cls: j for j, cls in enumerate(self.classes_.tolist())}
        for j, cls in enumerate(pipeline.classes_.tolist()):
            out[:, col_of[cls]] = proba[:, j]
        return out

    def _member_matrix(self, pipeline: Pipeline, X: np.ndarray) -> np.ndarray:
        """One member's vote contribution on the union class axis."""
        raise NotImplementedError

    def member_probas(self, X) -> np.ndarray:
        """Per-member aligned probability tensor (no degradation).

        Shape ``(n_members, n_samples, n_classes)`` on the union class
        axis.  This is the *strict* view: a failing member raises.  The
        serving path uses :meth:`predict_proba_detailed` instead, whose
        :class:`VoteDetail` carries the healthy subset.
        """
        X = np.asarray(X, dtype=float)
        return np.stack(
            [self._aligned_proba(p, X) for p in self.pipelines], axis=0
        )

    # ------------------------------------------------------------------
    def predict_proba_detailed(self, X) -> VoteDetail:
        """Vote with graceful member degradation; full diagnostics.

        Members whose circuit is open are skipped; members that raise or
        produce non-finite matrices are dropped (and their breaker streak
        advanced); the vote averages over the survivors.  Raises
        :class:`~repro.exceptions.EnsembleError` only when *no* member
        could contribute.
        """
        X = np.asarray(X, dtype=float)
        injector = get_fault_injector()
        mats: list[np.ndarray] = []
        used: list[str] = []
        failed: list[str] = []
        skipped: list[str] = []
        for name, pipeline in zip(self.member_names, self.pipelines):
            if self.breaker.is_open(name):
                skipped.append(name)
                continue
            try:
                action = (
                    injector.check("ensemble.member", name)
                    if injector is not None
                    else None
                )
                mat = self._member_matrix(pipeline, X)
                if action == "nan":
                    mat = np.full_like(mat, np.nan)
                if not np.all(np.isfinite(mat)):
                    raise EnsembleError(
                        f"member {name} produced non-finite probabilities"
                    )
            except Exception as exc:
                failed.append(name)
                tick("member_failures")
                get_metrics().counter(
                    "repro_ensemble_member_failures_total",
                    "Ensemble members dropped from a vote after failing",
                    labels={"member": pipeline.classifier_name},
                ).inc()
                _log.warning(
                    "ensemble member %s failed to vote (%s: %s); dropping "
                    "it from this vote",
                    name,
                    type(exc).__name__,
                    exc,
                )
                self.breaker.record_failure(name, f"{type(exc).__name__}: {exc}")
                continue
            self.breaker.record_success(name)
            mats.append(mat)
            used.append(name)
        if not mats:
            raise EnsembleError(
                f"every ensemble member failed to vote "
                f"({len(failed)} failed, {len(skipped)} quarantined)"
            )
        stack = np.stack(mats, axis=0)
        return VoteDetail(
            n_members=len(self.pipelines),
            used_members=tuple(used),
            failed_members=tuple(failed),
            skipped_members=tuple(skipped),
            proba=stack.mean(axis=0),
            member_probas=stack,
        )

    @property
    def quarantined_members(self) -> tuple[str, ...]:
        """Display names of members whose circuits are currently open."""
        return tuple(self.breaker.open_keys())

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Hard recommendations: the top-probability class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_rankings(self, X) -> list[list]:
        """Per-sample class rankings, best first."""
        proba = self.predict_proba(X)
        order = np.argsort(proba, axis=1)[:, ::-1]
        return [[self.classes_[j] for j in row] for row in order]

    def predict_proba(self, X) -> np.ndarray:
        """Aggregated class probabilities (degradation-tolerant)."""
        return self.predict_proba_detailed(X).proba


class SoftVotingEnsemble(_BaseEnsemble):
    """Average the class-probability matrices of all member pipelines."""

    def _member_matrix(self, pipeline: Pipeline, X: np.ndarray) -> np.ndarray:
        return self._aligned_proba(pipeline, X)


class MajorityVotingEnsemble(_BaseEnsemble):
    """One-pipeline-one-vote hard voting (the ablation baseline).

    ``predict_proba`` returns normalized vote counts, so rankings/MRR remain
    computable — coarser than soft probabilities, which is exactly the
    deficiency the paper observed.
    """

    def _member_matrix(self, pipeline: Pipeline, X: np.ndarray) -> np.ndarray:
        pred = pipeline.predict(X)
        votes = np.zeros((X.shape[0], len(self.classes_)))
        col_of = {cls: j for j, cls in enumerate(self.classes_.tolist())}
        for i, label in enumerate(pred):
            votes[i, col_of[label]] += 1.0
        return votes
