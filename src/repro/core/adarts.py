"""The A-DARTS facade: train once, recommend imputation algorithms forever.

Typical use::

    from repro import ADarts
    from repro.datasets import load_category

    engine = ADarts().fit_datasets(load_category("Water"))
    rec = engine.recommend(faulty_series)
    repaired = rec.impute(faulty_series)

``fit_datasets`` runs the full Fig. 2 training path — cluster-label the
corpus (1), extract features (2), race pipelines with ModelRace (3-5) — and
``recommend`` runs the inference path — extract the new series' features (6)
and soft-vote over the winning pipelines (7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.clustering.labeling import ClusterLabeler, LabeledCorpus
from repro.parallel import FeatureCache, ParallelConfig
from repro.core.config import ModelRaceConfig
from repro.core.modelrace import ModelRace, RaceResult
from repro.core.voting import MajorityVotingEnsemble, SoftVotingEnsemble
from repro.datasets.splits import holdout_split
from repro.exceptions import EnsembleError, NotFittedError, ValidationError
from repro.features.extractor import FeatureExtractor
from repro.imputation.base import get_imputer
from repro.observability import (
    FeatureBaseline,
    RaceObserver,
    get_logger,
    get_metrics,
    get_tracer,
    resource_stamp,
)
from repro.observability.ledger import (
    ClusterAtlas,
    get_ledger,
    new_id,
    repair_context,
)
from repro.parallel.cache import hash_arrays
from repro.pipeline.pipeline import Pipeline, make_seed_pipelines
from repro.resilience.stats import tick
from repro.timeseries.series import TimeSeries, TimeSeriesDataset
from repro.utils.timing import Timer

_log = get_logger(__name__)


#: Preference order of the static fallback when the whole ensemble is
#: unavailable: robust, dependency-free imputers first.
FALLBACK_ALGORITHMS: tuple[str, ...] = ("linear", "mean")


@dataclass(frozen=True)
class Recommendation:
    """One recommendation: the chosen algorithm plus the full ranking.

    Attributes
    ----------
    algorithm:
        Name of the recommended imputation algorithm.
    ranking:
        All candidate algorithms, best first.
    probabilities:
        Soft-vote probability per algorithm (aligned with ``ranking``'s
        class set, mapped by name).
    degraded:
        True when this recommendation was produced in degraded mode —
        ensemble members were dropped from the vote, or the static
        fallback answered because no member could vote.
    repair_id:
        Stable id of this repair's provenance row in the active
        :class:`~repro.observability.ledger.RepairLedger`, ``None`` when
        no ledger was installed.  ``repro explain <repair_id>`` renders
        the full decision path behind it.
    """

    algorithm: str
    ranking: tuple[str, ...]
    probabilities: dict[str, float]
    degraded: bool = False
    repair_id: str | None = None

    def impute(self, series: TimeSeries) -> TimeSeries:
        """Apply the recommended algorithm to the faulty series.

        Runs under a :class:`~repro.observability.ledger.repair_context`
        so the imputer's ``impute`` ledger row (timing + post-repair
        quality stats) is correlated with this recommendation's
        ``repair_id``.
        """
        with repair_context(self.repair_id):
            return get_imputer(self.algorithm).impute_series(series)


class ADarts:
    """Automated DAta Repair in Time Series.

    Parameters
    ----------
    extractor:
        Feature extractor (default: statistical + topological).
    config:
        ModelRace configuration.
    labeler:
        Cluster labeler used by :meth:`fit_datasets`.
    classifier_names:
        Classifier families to seed the race with (default: all 12).
    voting:
        ``"soft"`` (paper default) or ``"majority"`` (ablation).
    test_ratio:
        Fraction of labeled data held out as the race's internal test set.
    random_state:
        Seed for the internal holdout split.
    observer:
        Optional :class:`~repro.observability.RaceObserver` receiving the
        ModelRace lifecycle events during training.
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig` applied to every
        parallelizable stage — cluster labeling, feature extraction, and
        the ModelRace fold evaluations.  Stage-level configs already set
        on an explicitly passed ``config`` / ``labeler`` / ``extractor``
        are left untouched.
    feature_cache:
        Optional :class:`~repro.parallel.FeatureCache` installed on the
        extractor (unless the extractor already has one), deduplicating
        repeated series across training and inference batches.
    """

    def __init__(
        self,
        extractor: FeatureExtractor | None = None,
        config: ModelRaceConfig | None = None,
        labeler: ClusterLabeler | None = None,
        classifier_names=None,
        voting: str = "soft",
        test_ratio: float = 0.25,
        random_state: int | None = 0,
        observer: RaceObserver | None = None,
        parallel: ParallelConfig | None = None,
        feature_cache: FeatureCache | None = None,
    ):
        if voting not in ("soft", "majority"):
            raise ValidationError(f"voting must be soft/majority, got {voting!r}")
        self.extractor = extractor or FeatureExtractor()
        self.config = config or ModelRaceConfig()
        self.labeler = labeler or ClusterLabeler()
        self.parallel = parallel
        if parallel is not None:
            # Copy-on-write: never mutate a caller-shared config object.
            if self.config.parallel.n_jobs == 1:
                self.config = replace(self.config, parallel=parallel)
            if self.labeler.parallel is None:
                self.labeler.parallel = parallel
            if self.extractor.parallel is None:
                self.extractor.parallel = parallel
        if feature_cache is not None and self.extractor.cache is None:
            self.extractor.cache = feature_cache
        self.classifier_names = classifier_names
        self.voting = voting
        self.test_ratio = float(test_ratio)
        self.random_state = random_state
        self.observer = observer
        self._ensemble = None
        #: Diagnostics of the most recent vote (``None`` before the first
        #: request, or when the last request took the static fallback).
        self.last_vote_detail_ = None
        self._race_result: RaceResult | None = None
        self._labeled_corpus: LabeledCorpus | None = None
        self._train_X: np.ndarray | None = None
        self._train_y: np.ndarray | None = None
        #: Distributional fingerprint of the training feature matrix,
        #: captured by :meth:`fit_features` and consumed by the serving
        #: drift monitor (see :mod:`repro.observability.serving`).
        self.feature_baseline_: FeatureBaseline | None = None
        #: Fit-time provenance head — run/fit/race ids plus the training
        #: ledger rows — captured by :meth:`fit_features` when a
        #: :class:`~repro.observability.ledger.RepairLedger` is active,
        #: and persisted through export/import so serving-side ``repair``
        #: rows can reference their training lineage.
        self.ledger_head_: dict | None = None
        #: Fit-time cluster atlas (representatives + winning labels),
        #: captured by :meth:`fit_datasets`; used at serving time to
        #: assign incoming series a cluster + NCC for provenance rows.
        self.cluster_atlas_: ClusterAtlas | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit_features(
        self, X: np.ndarray, y: np.ndarray, seed_pipelines: list[Pipeline] | None = None
    ) -> "ADarts":
        """Train from an already-extracted feature matrix and labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        tracer = get_tracer()
        with tracer.span(
            "adarts.fit_features",
            subsystem="training",
            n_samples=int(X.shape[0]),
            n_features=int(X.shape[1]) if X.ndim == 2 else 0,
        ):
            X_train, X_test, y_train, y_test = holdout_split(
                X, y, test_ratio=self.test_ratio, random_state=self.random_state
            )
            seeds = seed_pipelines or make_seed_pipelines(self.classifier_names)
            race = ModelRace(self.config, observer=self.observer)
            self._race_result = race.run(seeds, X_train, y_train, X_test, y_test)
            ensemble_cls = (
                SoftVotingEnsemble if self.voting == "soft" else MajorityVotingEnsemble
            )
            # Members were fitted on X_train inside the race's final refit;
            # refit on the full labeled data so inference uses everything.
            members = []
            for p in self._race_result.elite:
                fresh = p.clone()
                try:
                    fresh.fit(X, y)
                except Exception as exc:
                    _log.warning(
                        "full-data refit failed for %s: %s: %s",
                        p,
                        type(exc).__name__,
                        exc,
                    )
                    continue
                members.append(fresh)
            if not members:
                raise ValidationError("no pipeline survived training")
            self._ensemble = ensemble_cls(members)
        _log.info(
            "trained: %d ensemble members, %d evaluations, prune ratio %.1f%%",
            len(members),
            self._race_result.n_evaluations,
            100 * self._race_result.prune_ratio,
        )
        # Kept for export/serialization (see repro.core.serialization).
        self._train_X = X
        self._train_y = y
        # Fingerprint the training distribution so a serving-side
        # DriftDetector can compare incoming traffic against it.
        try:
            names = (
                self.extractor.feature_names
                if X.ndim == 2 and X.shape[1] == self.extractor.n_features
                else None
            )
            self.feature_baseline_ = FeatureBaseline.from_matrix(
                X, feature_names=names
            )
        except ValueError as exc:  # degenerate matrices: skip, don't fail fit
            _log.warning("feature baseline capture skipped: %s", exc)
            self.feature_baseline_ = None
        self._capture_ledger_head(X, y, members)
        return self

    def _capture_ledger_head(self, X, y, members) -> None:
        """Emit the ``fit`` provenance row and snapshot the lineage head.

        The head bundles this fit's run/fit/race ids together with the
        training rows themselves (race, labeling, fit), so it can travel
        inside the exported engine document and let ``repro explain``
        reconstruct training lineage even when serving writes to a
        different ledger file.
        """
        ledger = get_ledger()
        if not ledger.enabled:
            return
        race_id = (
            self._race_result.ledger_record_id if self._race_result else None
        )
        fit_id = ledger.record(
            "fit",
            {
                "n_samples": int(X.shape[0]),
                "n_features": int(X.shape[1]) if X.ndim == 2 else 0,
                "classes": sorted(str(c) for c in set(y.tolist())),
                "train_hash": hash_arrays(X, y),
                "race_id": race_id,
                "voting": self.voting,
                "n_members": len(members),
                "test_ratio": self.test_ratio,
                "resources": resource_stamp(),
            },
            record_id=new_id("fit"),
        )
        head_rows = [
            row
            for row in ledger.records()
            if row["id"] in (fit_id, race_id) or row["kind"] == "label"
        ]
        self.ledger_head_ = {
            "run_id": ledger.run_id,
            "fit_id": fit_id,
            "race_id": race_id,
            "records": head_rows,
        }

    def fit_labeled(self, corpus: LabeledCorpus) -> "ADarts":
        """Train from a labeled corpus (faulty series + best-imputer labels)."""
        X = self.extractor.extract_many(corpus.series)
        return self.fit_features(X, corpus.labels)

    def fit_datasets(self, datasets: list[TimeSeriesDataset]) -> "ADarts":
        """Full training path: cluster-label the datasets, then train."""
        datasets = list(datasets)
        with get_tracer().span(
            "adarts.fit_datasets",
            subsystem="training",
            n_datasets=len(datasets),
        ):
            corpus = self.labeler.label_corpus(datasets)
            self._labeled_corpus = corpus
            self.cluster_atlas_ = corpus.atlas
            return self.fit_labeled(corpus)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether training has completed."""
        return self._ensemble is not None

    @property
    def winning_pipelines(self) -> list[Pipeline]:
        """The elite pipelines selected by ModelRace."""
        if self._ensemble is None:
            raise NotFittedError("ADarts is not fitted")
        return list(self._ensemble.pipelines)

    @property
    def race_result(self) -> RaceResult:
        """Diagnostics of the ModelRace run."""
        if self._race_result is None:
            raise NotFittedError("ADarts is not fitted")
        return self._race_result

    def recommend(self, series: TimeSeries) -> Recommendation:
        """Recommend the best imputation algorithm for one faulty series."""
        return self.recommend_many([series])[0]

    def extract_features(self, series_list) -> np.ndarray:
        """Inference-path feature extraction (traced, cache-aware)."""
        with get_tracer().span("inference.extract", subsystem="inference"):
            return self.extractor.extract_many(series_list)

    def _recommendations_from_proba(
        self, proba: np.ndarray, degraded: bool = False
    ) -> list[Recommendation]:
        """Turn an ensemble probability matrix into Recommendations."""
        if self._ensemble is None:
            raise NotFittedError("ADarts is not fitted")
        classes = [str(c) for c in self._ensemble.classes_]
        out = []
        for row in proba:
            order = np.argsort(row)[::-1]
            ranking = tuple(classes[j] for j in order)
            out.append(
                Recommendation(
                    algorithm=ranking[0],
                    ranking=ranking,
                    probabilities={classes[j]: float(row[j]) for j in order},
                    degraded=degraded,
                )
            )
        return out

    def _fallback_recommendations(self, n_series: int) -> list[Recommendation]:
        """Static degraded-mode answer when no ensemble member can vote.

        Recommends the first :data:`FALLBACK_ALGORITHMS` entry present in
        the ensemble's class set (``linear``, then ``mean``), falling back
        to the alphabetically first known class.  Every recommendation is
        flagged ``degraded=True`` so callers can tell it apart from a
        real vote.
        """
        classes = [str(c) for c in self._ensemble.classes_]
        chosen = next(
            (a for a in FALLBACK_ALGORITHMS if a in classes), classes[0]
        )
        ranking = (chosen,) + tuple(c for c in classes if c != chosen)
        probabilities = {c: (1.0 if c == chosen else 0.0) for c in ranking}
        rec = Recommendation(
            algorithm=chosen,
            ranking=ranking,
            probabilities=probabilities,
            degraded=True,
        )
        return [rec] * n_series

    def annotate_with_ledger(
        self,
        series_list,
        recommendations: list[Recommendation],
        detail,
        *,
        source: str = "engine",
    ) -> list[Recommendation]:
        """Emit one ``repair`` provenance row per recommendation.

        Returns the recommendations with their ``repair_id`` filled in
        (via :func:`dataclasses.replace`); a no-op pass-through when no
        ledger is installed.  ``detail`` is the vote's
        :class:`~repro.core.voting.VoteDetail`, or ``None`` when the
        static fallback answered.  Shared by :meth:`recommend_many` and
        the serving-side
        :class:`~repro.observability.serving.InferenceMonitor`.
        """
        ledger = get_ledger()
        if not ledger.enabled:
            return recommendations
        head = self.ledger_head_ or {}
        fingerprint = self.extractor.fingerprint
        vote = None
        if detail is not None:
            vote = {
                "n_members": detail.n_members,
                "used": list(detail.used_members),
                "failed": list(detail.failed_members),
                "skipped": list(detail.skipped_members),
            }
        atlas = self.cluster_atlas_
        # One resource stamp per annotate call (not per row): the memory
        # state is request-scoped, and per-row sampling would re-read
        # /proc for every series in a batch.
        resources = resource_stamp()
        out = []
        for series, rec in zip(series_list, recommendations):
            values = np.asarray(series.values, dtype=float)
            assignment = (
                atlas.assign(values) if atlas is not None and len(atlas) else None
            )
            top = sorted(rec.probabilities.items(), key=lambda kv: -kv[1])[:5]
            repair_id = ledger.record(
                "repair",
                {
                    "series": getattr(series, "name", None),
                    "series_len": int(values.size),
                    "n_missing": int(np.isnan(values).sum()),
                    "feature_hash": FeatureCache.key(values, fingerprint),
                    "cluster": assignment,
                    "algorithm": rec.algorithm,
                    "confidence": rec.probabilities.get(rec.algorithm),
                    "probabilities": dict(top),
                    "ranking": list(rec.ranking[:5]),
                    "vote": vote,
                    "quarantined_members": (
                        list(detail.skipped_members) if detail is not None else []
                    ),
                    "degraded": bool(rec.degraded),
                    "fallback": detail is None,
                    "fit_run_id": head.get("run_id"),
                    "fit_id": head.get("fit_id"),
                    "race_id": head.get("race_id"),
                    "source": source,
                    "resources": resources,
                },
                record_id=new_id("rep"),
            )
            out.append(replace(rec, repair_id=repair_id))
        return out

    def recommend_many(self, series_list) -> list[Recommendation]:
        """Vectorized recommendation over several series.

        Inference latency is recorded into the
        ``repro_inference_seconds`` (per request) and
        ``repro_inference_seconds_per_series`` histograms of the process
        metrics registry, and the whole call runs under an
        ``adarts.recommend_many`` span — all no-ops unless observability
        is installed.
        Degradation: when ensemble members fail to vote they are dropped
        and the vote re-normalizes over the survivors (recommendations are
        flagged ``degraded=True``); when *no* member can vote, the static
        fallback (:data:`FALLBACK_ALGORITHMS`) answers instead of raising.
        """
        if self._ensemble is None:
            raise NotFittedError("ADarts is not fitted")
        tracer = get_tracer()
        metrics = get_metrics()
        n_series = len(series_list)
        timer = Timer()
        with timer, tracer.span(
            "adarts.recommend_many", subsystem="inference", n_series=n_series
        ):
            X = self.extract_features(series_list)
            with tracer.span("inference.vote", subsystem="inference"):
                try:
                    detail = self._ensemble.predict_proba_detailed(X)
                except EnsembleError as exc:
                    _log.error(
                        "ensemble vote failed entirely (%s); serving the "
                        "static fallback recommendation",
                        exc,
                    )
                    detail = None
                    tick("fallback_requests")
                    metrics.counter(
                        "repro_inference_fallback_total",
                        "Requests answered by the static fallback",
                    ).inc()
            self.last_vote_detail_ = detail
            if detail is None:
                out = self._fallback_recommendations(n_series)
            else:
                out = self._recommendations_from_proba(
                    detail.proba, degraded=detail.degraded
                )
            out = self.annotate_with_ledger(series_list, out, detail)
            if detail is None or detail.degraded:
                tick("degraded_requests")
                metrics.counter(
                    "repro_inference_degraded_total",
                    "Requests served in degraded mode",
                ).inc()
                if detail is not None:
                    _log.warning(
                        "degraded vote: %d/%d members used (failed: %s; "
                        "quarantined: %s)",
                        detail.n_used,
                        detail.n_members,
                        list(detail.failed_members),
                        list(detail.skipped_members),
                    )
        metrics.counter(
            "repro_inference_requests_total",
            "recommend/recommend_many calls served",
        ).inc()
        metrics.counter(
            "repro_inference_series_total",
            "Series scored through the recommendation path",
        ).inc(n_series)
        metrics.histogram(
            "repro_inference_seconds",
            "Wall seconds per recommend_many request",
        ).observe(timer.elapsed)
        if n_series:
            metrics.histogram(
                "repro_inference_seconds_per_series",
                "Wall seconds per individual series recommendation",
            ).observe(timer.elapsed / n_series)
        return out

    def repair(self, series: TimeSeries) -> TimeSeries:
        """One-call repair: recommend, impute, return the completed series."""
        return self.recommend(series).impute(series)

    def repair_many(
        self, series_list, recommendations: list | None = None
    ) -> list[TimeSeries]:
        """Batched repair: recommend once, impute per-algorithm in batches.

        Series sharing a recommended algorithm are grouped and pushed
        through that imputer's :meth:`~repro.imputation.base.BaseImputer.
        impute_series_many` (one batched kernel call per algorithm for the
        vectorized imputers), with each repair's ledger rows correlated to
        its recommendation's ``repair_id``.  Results come back in input
        order; series with nothing missing are returned as-is, exactly
        like the per-series ``rec.impute`` path.

        Pass ``recommendations`` (aligned with ``series_list``) to reuse
        an earlier :meth:`recommend_many` call.
        """
        series_list = list(series_list)
        if recommendations is None:
            recommendations = self.recommend_many(series_list)
        if len(recommendations) != len(series_list):
            raise ValidationError(
                f"{len(recommendations)} recommendations for "
                f"{len(series_list)} series"
            )
        out: list[TimeSeries | None] = [None] * len(series_list)
        groups: dict[str, list[int]] = {}
        for i, (series, rec) in enumerate(zip(series_list, recommendations)):
            if series.has_missing:
                groups.setdefault(rec.algorithm, []).append(i)
            else:
                out[i] = series
        for algorithm, indices in groups.items():
            repaired = get_imputer(algorithm).impute_series_many(
                [series_list[i] for i in indices],
                repair_ids=[recommendations[i].repair_id for i in indices],
            )
            for i, series in zip(indices, repaired):
                out[i] = series
        return out

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Hard label predictions from pre-extracted features."""
        if self._ensemble is None:
            raise NotFittedError("ADarts is not fitted")
        return self._ensemble.predict(np.asarray(X, dtype=float))

    def predict_rankings(self, X) -> list[list]:
        """Per-sample label rankings from pre-extracted features."""
        if self._ensemble is None:
            raise NotFittedError("ADarts is not fitted")
        return self._ensemble.predict_rankings(np.asarray(X, dtype=float))
