"""Configuration of the ModelRace selection process."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.parallel import ParallelConfig
from repro.pipeline.scoring import ScoreWeights
from repro.resilience import FaultInjector, FaultPolicy


@dataclass
class ModelRaceConfig:
    """Tuning knobs of Algorithm 1.

    Attributes
    ----------
    n_partial_sets:
        Number of growing partial training sets (``m = |S|`` in Alg. 1).
    n_folds:
        Stratified k-fold count per iteration (kept small per the paper's
        complexity analysis).
    weights:
        Scoring coefficients (alpha, beta, gamma).
    early_termination_margin:
        A pipeline whose fold score trails the fold's best by more than this
        margin is terminated early (lines 11-12).
    ttest_pvalue:
        Pairs whose score distributions compare with p-value above this
        threshold count as "similar with high significance"; the lower-mean
        member is pruned (line 13).
    max_elite:
        Cap on surviving pipelines per iteration (keeps the race bounded).
    elite_band:
        Final filter: only pipelines whose mean score is within this band
        of the best survivor join the voting ensemble.  Keeps the elite
        diverse *among the top performers* without letting weak-but-
        different members dilute the vote.
    time_budget:
        Wall-clock seconds mapping to a normalized runtime of 1.0 in the
        scoring function.  An absolute reference (rather than the max
        observed runtime) keeps the penalty small for ordinary pipelines —
        matching the paper's Fig. 10 observation that gamma up to 0.75
        barely moves F1 — while still punishing genuinely slow ones.
    n_children_per_parent:
        Synthesizer fan-out per elite parent per iteration.
    initial_fraction:
        Fraction of the training data in the first partial set; the last
        set always reaches 1.0.
    random_state:
        Seed for folds, sampling, and synthesis.
    parallel:
        :class:`~repro.parallel.ParallelConfig` governing how the race
        fans candidate evaluations out across workers.  The default is
        serial (``n_jobs=1``), which executes the historical
        single-core path; results are deterministic across backends for
        a fixed seed (wall-clock-free scoring, i.e. ``gamma=0``, makes
        them bit-identical).
    fault_policy:
        Optional :class:`~repro.resilience.FaultPolicy` governing retry /
        deadline / fail-fast / quarantine behaviour of race evaluations.
        ``None`` falls back to the process-level policy
        (:func:`repro.resilience.get_fault_policy`), then to the
        historical behaviour (no retries, no deadlines, failures scored
        ``-inf`` with quarantine after 3 consecutive failures).
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` evaluated at
        the ``race.evaluate`` site (and forwarded to the execution
        engine's ``executor.task`` site) — chaos testing only.  ``None``
        falls back to the process-level injector.
    """

    n_partial_sets: int = 3
    n_folds: int = 3
    weights: ScoreWeights = field(default_factory=ScoreWeights)
    early_termination_margin: float = 0.25
    ttest_pvalue: float = 0.7
    max_elite: int = 5
    elite_band: float = 0.08
    time_budget: float = 1.0
    n_children_per_parent: int = 2
    initial_fraction: float = 0.4
    random_state: int | None = 0
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    fault_policy: FaultPolicy | None = None
    fault_injector: FaultInjector | None = None

    def __post_init__(self) -> None:
        if self.n_partial_sets < 1:
            raise ValidationError("n_partial_sets must be >= 1")
        if self.n_folds < 2:
            raise ValidationError("n_folds must be >= 2")
        if not 0 < self.initial_fraction <= 1:
            raise ValidationError("initial_fraction must be in (0, 1]")
        if self.max_elite < 1:
            raise ValidationError("max_elite must be >= 1")
        if not 0 <= self.ttest_pvalue <= 1:
            raise ValidationError("ttest_pvalue must be in [0, 1]")
        if self.early_termination_margin < 0:
            raise ValidationError("early_termination_margin must be >= 0")
        if self.elite_band < 0:
            raise ValidationError("elite_band must be >= 0")
        if self.time_budget <= 0:
            raise ValidationError("time_budget must be > 0")
