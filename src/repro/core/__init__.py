"""A-DARTS core: ModelRace selection, soft voting, and the public facade."""

from repro.core.config import ModelRaceConfig
from repro.core.modelrace import ModelRace, RaceResult
from repro.core.voting import SoftVotingEnsemble, MajorityVotingEnsemble
from repro.core.adarts import ADarts, Recommendation
from repro.core.serialization import (
    export_engine,
    import_engine,
    load_engine,
    save_engine,
)

__all__ = [
    "ModelRaceConfig",
    "ModelRace",
    "RaceResult",
    "SoftVotingEnsemble",
    "MajorityVotingEnsemble",
    "ADarts",
    "Recommendation",
    "export_engine",
    "import_engine",
    "load_engine",
    "save_engine",
]
