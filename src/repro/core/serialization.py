"""Persisting trained A-DARTS engines.

"Any other application can easily embed the model that results from
A-DARTS's training" — this module makes that concrete: a trained engine is
exported as a JSON document holding the winning pipeline configurations,
the extractor configuration, and the labeled training matrix; loading
rebuilds the pipelines and refits them (fits are fast — the expensive parts
were the labeling and the race, which are *not* repeated).

JSON (not pickle) keeps the artifact portable, diffable, and safe to load.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.adarts import ADarts
from repro.core.voting import MajorityVotingEnsemble, SoftVotingEnsemble
from repro.exceptions import NotFittedError, ValidationError
from repro.features.extractor import FeatureExtractor
from repro.observability.ledger import ClusterAtlas, upgrade_record
from repro.observability.serving import FeatureBaseline
from repro.pipeline.pipeline import Pipeline

FORMAT_VERSION = 1


def _pipeline_to_dict(pipeline: Pipeline) -> dict:
    return {
        "classifier_name": pipeline.classifier_name,
        "classifier_params": _jsonable(pipeline.classifier_params),
        "scaler_name": pipeline.scaler_name,
        "scaler_params": _jsonable(pipeline.scaler_params),
    }


def _jsonable(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        elif isinstance(value, (np.integer,)):
            out[key] = int(value)
        elif isinstance(value, (np.floating,)):
            out[key] = float(value)
        else:
            out[key] = value
    return out


def _from_jsonable(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out


def export_engine(engine: ADarts) -> dict:
    """Serialize a fitted engine to a JSON-ready dictionary."""
    if not engine.is_fitted:
        raise NotFittedError("cannot export an unfitted engine")
    X = engine._train_X
    y = engine._train_y
    if X is None or y is None:
        raise ValidationError(
            "engine has no stored training data; was it fitted via "
            "fit_features/fit_labeled/fit_datasets?"
        )
    document = {
        "format_version": FORMAT_VERSION,
        "voting": engine.voting,
        "extractor": {
            "use_statistical": engine.extractor.use_statistical,
            "use_topological": engine.extractor.use_topological,
            "use_missing_pattern": engine.extractor.use_missing_pattern,
            "embedding_dimension": engine.extractor.embedding_dimension,
            "embedding_delay": engine.extractor.embedding_delay,
        },
        "pipelines": [
            _pipeline_to_dict(p) for p in engine.winning_pipelines
        ],
        "training_features": np.asarray(X, dtype=float).tolist(),
        "training_labels": [str(label) for label in y],
    }
    # Optional drift fingerprint: serving-side monitors rebuild their
    # DriftDetector from this without re-touching the training matrix.
    if engine.feature_baseline_ is not None:
        document["feature_baseline"] = engine.feature_baseline_.as_dict()
    # Optional provenance: the fit-time ledger head (run/fit/race ids +
    # training rows) and the cluster atlas travel with the engine so
    # serving-side repair rows keep their training lineage and cluster
    # assignments after an export/import round-trip.
    if engine.ledger_head_ is not None:
        document["ledger_head"] = engine.ledger_head_
    if engine.cluster_atlas_ is not None and len(engine.cluster_atlas_):
        document["cluster_atlas"] = engine.cluster_atlas_.as_dict()
    return document


def import_engine(document: dict) -> ADarts:
    """Rebuild a fitted engine from :func:`export_engine`'s output."""
    if not isinstance(document, dict):
        raise ValidationError(
            f"engine document must be a JSON object, got "
            f"{type(document).__name__}"
        )
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported engine format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        extractor = FeatureExtractor(**document["extractor"])
        engine = ADarts(extractor=extractor, voting=document["voting"])
        X = np.asarray(document["training_features"], dtype=float)
        y = np.asarray(document["training_labels"], dtype=object)
    except KeyError as exc:
        raise ValidationError(
            f"engine document is missing required key {exc}"
        ) from None
    except TypeError as exc:
        raise ValidationError(f"malformed engine document: {exc}") from None
    members = []
    for spec in document.get("pipelines", []):
        pipeline = Pipeline(
            spec["classifier_name"],
            _from_jsonable(spec["classifier_params"]),
            spec["scaler_name"],
            _from_jsonable(spec["scaler_params"]),
        )
        pipeline.fit(X, y)
        members.append(pipeline)
    if not members:
        raise ValidationError("document contains no pipelines")
    ensemble_cls = (
        SoftVotingEnsemble if document["voting"] == "soft" else MajorityVotingEnsemble
    )
    engine._ensemble = ensemble_cls(members)
    engine._train_X = X
    engine._train_y = y
    baseline = document.get("feature_baseline")
    if baseline is not None:
        engine.feature_baseline_ = FeatureBaseline.from_dict(baseline)
    else:
        # Legacy documents carry no fingerprint; rebuild it from the
        # stored training matrix so restored engines stay monitorable.
        try:
            names = (
                extractor.feature_names
                if X.ndim == 2 and X.shape[1] == extractor.n_features
                else None
            )
            engine.feature_baseline_ = FeatureBaseline.from_matrix(
                X, feature_names=names
            )
        except ValueError:
            engine.feature_baseline_ = None
    head = document.get("ledger_head")
    if head is not None:
        # Rows inside the head are schema-upgraded on the way in, so a
        # document exported under ledger schema v1 explains cleanly.
        engine.ledger_head_ = {
            "run_id": head.get("run_id"),
            "fit_id": head.get("fit_id"),
            "race_id": head.get("race_id"),
            "records": [upgrade_record(r) for r in head.get("records", [])],
        }
    atlas = document.get("cluster_atlas")
    if atlas is not None:
        engine.cluster_atlas_ = ClusterAtlas.from_dict(atlas)
    return engine


def _json_default(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def save_engine(engine: ADarts, path) -> pathlib.Path:
    """Write a fitted engine to a JSON file; returns the path."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        json.dump(export_engine(engine), fh, default=_json_default)
    return path


def load_engine(path) -> ADarts:
    """Load a fitted engine from a JSON file written by :func:`save_engine`.

    Raises :class:`~repro.exceptions.ValidationError` (not a bare
    ``JSONDecodeError``) on malformed files, so CLI callers turn it into
    a clean non-zero exit instead of a traceback.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no engine file at {path}")
    try:
        with path.open() as fh:
            document = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from None
    return import_engine(document)
