"""Efficacy metrics (Section VII): weighted A/P/R/F1, Recall@k, and MRR.

All per-class metrics are *weighted* averages — weighted by class support —
to account for the label imbalance produced by the labeling stage, exactly
as the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def _check_labels(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValidationError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} must be equal-length 1-D"
        )
    if y_true.size == 0:
        raise ValidationError("empty label arrays")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    return float((y_true == y_pred).mean())


def weighted_precision_recall_f1(y_true, y_pred) -> tuple[float, float, float]:
    """Support-weighted precision, recall, and F1.

    Classes absent from ``y_true`` contribute nothing; a class predicted but
    never true counts as zero precision for its (zero) weight.
    """
    y_true, y_pred = _check_labels(y_true, y_pred)
    classes = np.unique(y_true)
    n = y_true.size
    precision = recall = f1 = 0.0
    for cls in classes:
        support = (y_true == cls).sum()
        weight = support / n
        tp = ((y_pred == cls) & (y_true == cls)).sum()
        predicted = (y_pred == cls).sum()
        p = tp / predicted if predicted else 0.0
        r = tp / support if support else 0.0
        f = 2 * p * r / (p + r) if (p + r) else 0.0
        precision += weight * p
        recall += weight * r
        f1 += weight * f
    return float(precision), float(recall), float(f1)


def f1_weighted(y_true, y_pred) -> float:
    """Support-weighted F1 (the headline metric of the paper)."""
    return weighted_precision_recall_f1(y_true, y_pred)[2]


def _check_rankings(y_true, rankings) -> tuple[np.ndarray, list]:
    y_true = np.asarray(y_true)
    if len(rankings) != y_true.size:
        raise ValidationError(
            f"{len(rankings)} rankings for {y_true.size} true labels"
        )
    return y_true, list(rankings)


def recall_at_k(y_true, rankings, k: int = 3) -> float:
    """Fraction of samples whose true label is in the top-k of the ranking.

    ``rankings`` is a sequence of label sequences, best first.  This is the
    ``r3`` term of the ModelRace scoring function when ``k=3``.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    y_true, rankings = _check_rankings(y_true, rankings)
    hits = sum(
        1 for truth, ranking in zip(y_true, rankings) if truth in list(ranking)[:k]
    )
    return hits / y_true.size


def mean_reciprocal_rank(y_true, rankings) -> float:
    """MRR = mean over queries of 1 / rank of the correct label.

    Labels absent from a ranking contribute 0 for that query.
    """
    y_true, rankings = _check_rankings(y_true, rankings)
    total = 0.0
    for truth, ranking in zip(y_true, rankings):
        ranking = list(ranking)
        if truth in ranking:
            total += 1.0 / (ranking.index(truth) + 1)
    return total / y_true.size


def rankings_from_proba(proba: np.ndarray, classes: np.ndarray) -> list[list]:
    """Convert a probability matrix into per-sample label rankings (best first)."""
    proba = np.asarray(proba)
    order = np.argsort(proba, axis=1)[:, ::-1]
    return [[classes[j] for j in row] for row in order]


def classification_report(y_true, y_pred, rankings=None) -> dict[str, float]:
    """All efficacy metrics in one dict: A, P, R, F1 (+MRR/R@3 if rankings given)."""
    precision, recall, f1 = weighted_precision_recall_f1(y_true, y_pred)
    report = {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }
    if rankings is not None:
        report["mrr"] = mean_reciprocal_rank(y_true, rankings)
        report["recall_at_3"] = recall_at_k(y_true, rankings, k=3)
    return report
