"""The Pipeline object: <classifier, hyperparameters, feature scaler>.

A pipeline is the unit ModelRace races.  It owns a scaler configuration and
a classifier configuration, knows how to fit itself on a feature matrix, and
exposes probabilistic predictions plus per-sample label rankings.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import get_classifier
from repro.classifiers.spaces import default_params
from repro.exceptions import NotFittedError, ValidationError
from repro.features.scaling import get_scaler
from repro.pipeline.metrics import rankings_from_proba


class Pipeline:
    """A racing candidate: scaler + parameterized classifier.

    Parameters
    ----------
    classifier_name:
        Registry key of the classifier family (e.g. ``"knn"``).
    classifier_params:
        Hyperparameters for the classifier (None = family defaults).
    scaler_name:
        Registry key of the scaler family (default identity).
    scaler_params:
        Parameters for the scaler.

    Two pipelines are equal iff their full configuration matches; equality
    and hashing let ModelRace deduplicate synthesized candidates.
    """

    def __init__(
        self,
        classifier_name: str,
        classifier_params: dict | None = None,
        scaler_name: str = "identity",
        scaler_params: dict | None = None,
    ):
        self.classifier_name = str(classifier_name)
        self.classifier_params = dict(
            classifier_params
            if classifier_params is not None
            else default_params(classifier_name)
        )
        self.scaler_name = str(scaler_name)
        self.scaler_params = dict(scaler_params or {})
        # Validate eagerly: a typo'd configuration should fail at creation.
        self._classifier = get_classifier(self.classifier_name, **self.classifier_params)
        self._scaler = get_scaler(self.scaler_name, **self.scaler_params)
        self._fitted = False

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def config_key(self) -> tuple:
        """Hashable canonical form of the full configuration."""
        return (
            self.classifier_name,
            tuple(sorted(self.classifier_params.items())),
            self.scaler_name,
            tuple(sorted(self.scaler_params.items())),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Pipeline):
            return NotImplemented
        return self.config_key() == other.config_key()

    def __hash__(self) -> int:
        return hash(self.config_key())

    def __repr__(self) -> str:
        return (
            f"Pipeline({self.classifier_name}, {self.classifier_params}, "
            f"scaler={self.scaler_name}{self.scaler_params or ''})"
        )

    def clone(self) -> "Pipeline":
        """Fresh unfitted pipeline with the same configuration."""
        return Pipeline(
            self.classifier_name,
            dict(self.classifier_params),
            self.scaler_name,
            dict(self.scaler_params),
        )

    # ------------------------------------------------------------------
    # Learning API
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "Pipeline":
        """Fit the scaler then the classifier."""
        X = np.asarray(X, dtype=float)
        Z = self._scaler.fit_transform(X)
        self._classifier.fit(Z, y)
        self._fitted = True
        return self

    @property
    def classes_(self) -> np.ndarray:
        """Classes seen at fit time."""
        if not self._fitted:
            raise NotFittedError("pipeline is not fitted")
        return self._classifier.classes_

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities through the fitted scaler + classifier."""
        if not self._fitted:
            raise NotFittedError("pipeline is not fitted")
        Z = self._scaler.transform(np.asarray(X, dtype=float))
        return self._classifier.predict_proba(Z)

    def predict(self, X) -> np.ndarray:
        """Hard label predictions."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_rankings(self, X) -> list[list]:
        """Per-sample label rankings, best first (for Recall@k / MRR)."""
        return rankings_from_proba(self.predict_proba(X), self.classes_)


def make_seed_pipelines(
    classifier_names=None, scaler_name: str = "standard"
) -> list[Pipeline]:
    """One default pipeline per classifier family — the ModelRace seed.

    The seed "must contain at least one pipeline per classifier type that
    needs to be considered" (Section IV-A).
    """
    from repro.classifiers import available_classifiers

    if classifier_names is None:
        names = available_classifiers()
    else:
        names = list(classifier_names)
    if not names:
        raise ValidationError("no classifier names given")
    return [Pipeline(name, scaler_name=scaler_name) for name in names]
