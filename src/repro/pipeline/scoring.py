"""Pipeline scoring: the weighted efficacy/efficiency trade-off of Alg. 1.

Line 9 of Algorithm 1 computes

    score = (alpha * F1 + beta * Recall@3 - gamma * time) / (alpha + beta + gamma)

where ``time`` is the *normalized* pipeline runtime.  The paper's ablation
(Fig. 10) identifies alpha=0.5, gamma=0.75 as the operating point; beta
defaults to 0.25 so effectiveness terms still dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.observability import get_logger, get_metrics
from repro.pipeline.metrics import f1_weighted, recall_at_k
from repro.pipeline.pipeline import Pipeline
from repro.utils.timing import Timer

_log = get_logger(__name__)


@dataclass(frozen=True)
class ScoreWeights:
    """Coefficients (alpha, beta, gamma) of the scoring function.

    alpha weighs F1, beta weighs Recall@3, gamma penalizes runtime.
    """

    alpha: float = 0.5
    beta: float = 0.25
    gamma: float = 0.75

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            if getattr(self, name) < 0:
                raise ValidationError(f"{name} must be >= 0")
        if self.alpha + self.beta + self.gamma <= 0:
            raise ValidationError("at least one coefficient must be positive")

    def combine(self, f1: float, r3: float, norm_time: float) -> float:
        """Apply the Alg. 1 line-9 formula."""
        total = self.alpha + self.beta + self.gamma
        return (self.alpha * f1 + self.beta * r3 - self.gamma * norm_time) / total


@dataclass(frozen=True)
class PipelineScore:
    """One evaluation outcome of a pipeline on one fold.

    ``error`` is ``None`` for clean evaluations; when the pipeline raised
    inside fit/predict it holds ``"ExceptionType: message"`` and the score
    is ``-inf`` (the pipeline loses the race instead of crashing it — but
    the failure is *recorded*, not silently swallowed).
    """

    f1: float
    recall_at_3: float
    runtime: float
    score: float
    error: str | None = None

    @property
    def failed(self) -> bool:
        """Whether this evaluation raised instead of scoring."""
        return self.error is not None


def score_pipeline(
    pipeline: Pipeline,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    weights: ScoreWeights | None = None,
    time_scale: float = 1.0,
    injector=None,
) -> PipelineScore:
    """Train ``pipeline`` on one fold and score it on the test set.

    ``time_scale`` normalizes the wall-clock runtime: pass e.g. the maximum
    runtime observed among racing pipelines so ``norm_time`` stays in [0, 1].
    Pipelines that raise during fit/predict score ``-inf`` (they lose the
    race instead of crashing it).

    ``injector`` is an optional :class:`~repro.resilience.FaultInjector`
    evaluated at the ``classifier.fit`` site just before the fit (``None``
    falls back to the process-level injector); injected failures are
    *recorded* like real classifier failures — they produce a scored-as-
    failed result rather than retries.
    """
    weights = weights or ScoreWeights()
    if injector is None:
        from repro.resilience import get_fault_injector

        injector = get_fault_injector()
    timer = Timer()
    try:
        with timer:
            if injector is not None:
                injector.check("classifier.fit", pipeline.classifier_name)
            pipeline.fit(X_train, y_train)
            y_pred = pipeline.predict(X_test)
            rankings = pipeline.predict_rankings(X_test)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        _log.warning(
            "pipeline %s failed during scoring: %s", pipeline, error
        )
        get_metrics().counter(
            "repro_pipeline_failures_total",
            "Pipelines that raised during scoring fit/predict",
            labels={"classifier": pipeline.classifier_name},
        ).inc()
        return PipelineScore(
            0.0, 0.0, float("inf"), float("-inf"), error=error
        )
    f1 = f1_weighted(y_test, y_pred)
    r3 = recall_at_k(y_test, rankings, k=3)
    norm_time = min(1.0, timer.elapsed / max(time_scale, 1e-9))
    return PipelineScore(f1, r3, timer.elapsed, weights.combine(f1, r3, norm_time))
