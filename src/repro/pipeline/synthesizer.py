"""Pipeline synthesizer: generate neighbours of elite pipelines (Fig. 3, step 1).

The synthesis "is centered around the existing pipelines such that it
introduces only small changes to the parent pipeline by modifying only one
parameter at a time" (Section V-A).  A mutation changes exactly one of:

* one classifier hyperparameter (to an adjacent or random grid value),
* the scaler family (drawing a new configuration from the scaler space),
* one scaler parameter.

Duplicates of already-known configurations are filtered out.
"""

from __future__ import annotations

from repro.classifiers.spaces import param_space
from repro.exceptions import ValidationError
from repro.features.scaling import scaler_search_space
from repro.pipeline.pipeline import Pipeline
from repro.utils.rng import ensure_rng


class Synthesizer:
    """Generates derived pipelines from elite parents.

    Parameters
    ----------
    n_children_per_parent:
        How many mutations to attempt per parent per round.
    random_state:
        Seed for mutation choices.
    """

    def __init__(self, n_children_per_parent: int = 3, random_state=None):
        if n_children_per_parent < 1:
            raise ValidationError(
                f"n_children_per_parent must be >= 1, got {n_children_per_parent}"
            )
        self.n_children_per_parent = int(n_children_per_parent)
        self._rng = ensure_rng(random_state)
        self._scaler_space = scaler_search_space()

    # ------------------------------------------------------------------
    def _mutate_classifier_param(self, parent: Pipeline) -> Pipeline | None:
        space = param_space(parent.classifier_name)
        mutable = [
            name for name, values in space.items()
            if len(values) > 1
        ]
        if not mutable:
            return None
        pname = mutable[int(self._rng.integers(0, len(mutable)))]
        values = space[pname]
        current = parent.classifier_params.get(pname)
        # Prefer a neighbouring grid value ("small change"); fall back to
        # any other value when the current one is off-grid.
        if current in values:
            idx = values.index(current)
            candidates = [i for i in (idx - 1, idx + 1) if 0 <= i < len(values)]
            new_value = values[candidates[int(self._rng.integers(0, len(candidates)))]]
        else:
            new_value = values[int(self._rng.integers(0, len(values)))]
        params = dict(parent.classifier_params)
        params[pname] = new_value
        return Pipeline(
            parent.classifier_name, params, parent.scaler_name, parent.scaler_params
        )

    def _mutate_scaler(self, parent: Pipeline) -> Pipeline:
        name, params = self._scaler_space[
            int(self._rng.integers(0, len(self._scaler_space)))
        ]
        return Pipeline(
            parent.classifier_name, parent.classifier_params, name, params
        )

    def synthesize(
        self, parents: list[Pipeline], known: set | None = None
    ) -> list[Pipeline]:
        """Produce new unique pipelines derived from ``parents``.

        ``known`` is a set of :meth:`Pipeline.config_key` values already in
        the race; children colliding with it (or each other) are dropped.
        """
        known = set(known or ())
        for parent in parents:
            known.add(parent.config_key())
        children: list[Pipeline] = []
        for parent in parents:
            for _ in range(self.n_children_per_parent):
                if self._rng.random() < 0.5:
                    child = self._mutate_classifier_param(parent)
                    if child is None:
                        child = self._mutate_scaler(parent)
                else:
                    child = self._mutate_scaler(parent)
                key = child.config_key()
                if key in known:
                    continue
                known.add(key)
                children.append(child)
        return children
