"""Pipeline layer: <classifier, hyperparameters, scaler> tuples and scoring."""

from repro.pipeline.metrics import (
    accuracy_score,
    weighted_precision_recall_f1,
    f1_weighted,
    recall_at_k,
    mean_reciprocal_rank,
    classification_report,
)
from repro.pipeline.pipeline import Pipeline, make_seed_pipelines
from repro.pipeline.scoring import PipelineScore, ScoreWeights, score_pipeline
from repro.pipeline.synthesizer import Synthesizer

__all__ = [
    "accuracy_score",
    "weighted_precision_recall_f1",
    "f1_weighted",
    "recall_at_k",
    "mean_reciprocal_rank",
    "classification_report",
    "Pipeline",
    "make_seed_pipelines",
    "PipelineScore",
    "ScoreWeights",
    "score_pipeline",
    "Synthesizer",
]
