"""Command-line interface: train, recommend, and repair from CSV files.

CSV convention: one time series per row, comma-separated floats; empty
fields or the token ``nan`` mark missing values.

Examples
--------
Train on the built-in synthetic corpus and save the engine::

    python -m repro train --categories Water Climate --out engine.json

Recommend algorithms for faulty series::

    python -m repro recommend --engine engine.json --data faulty.csv

Repair them in place::

    python -m repro repair --engine engine.json --data faulty.csv \
        --out repaired.csv

List the available imputation algorithms::

    python -m repro list-imputers

Serve recommendations through the inference monitor and render the
serving-health document (latency quantiles, confidence, soft-vote
disagreement, drift scores, cache hit rates)::

    python -m repro monitor --engine engine.json --data faulty.csv \
        --out health.json --prom-out health.prom

Sample the inference path with the low-overhead profiler and write
flamegraph-ready collapsed stacks::

    python -m repro profile --engine engine.json --data faulty.csv \
        --out profile.collapsed

Every subcommand accepts ``--trace-out trace.json`` (Chrome
``trace_event`` export, open in ``chrome://tracing`` or Perfetto) and
``--metrics-out metrics.prom`` (Prometheus text; a ``.json`` suffix
selects JSON).  Saved traces are rendered into a human-readable run
summary by::

    python -m repro report --trace trace.json --metrics metrics.prom

Every subcommand also accepts ``--ledger-out ledger.jsonl``, appending a
repair-provenance row for every fit and repair of the run.  Audit the
scorecards and replay any single repair's decision path::

    python -m repro repair --engine engine.json --data faulty.csv \
        --out repaired.csv --ledger-out ledger.jsonl
    python -m repro audit --ledger ledger.jsonl --summary
    python -m repro explain rep_3f9a1c0d2e4b --ledger ledger.jsonl \
        --engine engine.json
"""

from __future__ import annotations

import argparse
import logging
import pathlib
import sys

import numpy as np

from repro.core.adarts import ADarts
from repro.core.config import ModelRaceConfig
from repro.core.serialization import load_engine, save_engine
from repro.datasets import CATEGORIES, load_category
from repro.exceptions import ReproError, ValidationError
from repro.imputation import available_imputers
from repro.observability import (
    DriftDetector,
    InferenceMonitor,
    LoggingObserver,
    MetricsRegistry,
    SamplingProfiler,
    Tracer,
    enable_console_logging,
    use_metrics,
    use_tracer,
)
from repro.observability.ledger import (
    RepairLedger,
    explain_repair,
    filter_records,
    read_ledger,
    render_explanation,
    render_summary,
    summarize_ledger,
    use_ledger,
)
from repro.observability.report import load_metrics, load_trace, render_report
from repro.parallel import BACKENDS, FeatureCache, ParallelConfig
from repro.resilience import FaultPolicy, use_fault_policy
from repro.timeseries.series import TimeSeries


def _parallel_from_args(args) -> ParallelConfig | None:
    """Build a ParallelConfig from --jobs/--backend (None = serial default)."""
    jobs = getattr(args, "jobs", 1)
    backend = getattr(args, "backend", "auto")
    if jobs == 1 and backend == "auto":
        return None
    return ParallelConfig(n_jobs=jobs, backend=backend)


def _fault_policy_from_args(args) -> FaultPolicy | None:
    """Build a FaultPolicy from the resilience flags (None = historical).

    ``None`` keeps the historical behaviour: no retries, no deadlines,
    failures scored as losses with quarantine after repeated failures.
    """
    max_retries = getattr(args, "max_retries", 0)
    eval_timeout = getattr(args, "eval_timeout", None)
    impute_timeout = getattr(args, "impute_timeout", None)
    fail_fast = getattr(args, "fail_fast", False)
    if not max_retries and eval_timeout is None and impute_timeout is None \
            and not fail_fast:
        return None
    return FaultPolicy(
        max_retries=max_retries,
        eval_deadline=eval_timeout,
        impute_deadline=impute_timeout,
        fail_fast=fail_fast,
    )


def read_series_csv(path) -> list[TimeSeries]:
    """Read one series per row; blank/'nan' fields are missing values."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no such file: {path}")
    series = []
    with path.open() as fh:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                values = [
                    float("nan")
                    if field.strip() in ("", "nan", "NaN")
                    else float(field)
                    for field in line.split(",")
                ]
            except ValueError as exc:
                raise ValidationError(
                    f"{path}, line {line_no + 1}: {exc}"
                ) from None
            series.append(TimeSeries(values, name=f"row_{line_no}"))
    if not series:
        raise ValidationError(f"{path} contains no series")
    return series


def write_series_csv(path, series_list) -> None:
    """Write one series per row (NaN becomes an empty field)."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        for series in series_list:
            fields = [
                "" if np.isnan(v) else repr(float(v)) for v in series.values
            ]
            fh.write(",".join(fields) + "\n")


def _cmd_train(args) -> int:
    for category in args.categories:
        if category not in CATEGORIES:
            raise ValidationError(
                f"unknown category {category!r}; choose from {CATEGORIES}"
            )
    datasets = []
    for category in args.categories:
        datasets.extend(
            load_category(
                category, n_series=args.series_per_dataset,
                n_datasets=args.datasets_per_category,
            )
        )
    labeler = None
    if args.shards_train > 1 or args.bank_path:
        from repro.clustering.labeling import ClusterLabeler

        labeler = ClusterLabeler(
            shards=max(1, args.shards_train), bank_path=args.bank_path
        )
    engine = ADarts(
        config=ModelRaceConfig(
            n_partial_sets=args.partial_sets,
            random_state=args.seed,
            fault_policy=_fault_policy_from_args(args),
        ),
        random_state=args.seed,
        observer=LoggingObserver() if args.verbose else None,
        parallel=_parallel_from_args(args),
        labeler=labeler,
    )
    print(
        f"training on {sum(len(d) for d in datasets)} series "
        f"from {len(datasets)} datasets ...",
        file=sys.stderr,
    )
    engine.fit_datasets(datasets)
    save_engine(engine, args.out)
    print(f"saved engine to {args.out}", file=sys.stderr)
    for pipeline in engine.winning_pipelines:
        print(f"winner: {pipeline}", file=sys.stderr)
    return 0


def _cmd_recommend(args) -> int:
    engine = load_engine(args.engine)
    parallel = _parallel_from_args(args)
    if parallel is not None:
        engine.extractor.parallel = parallel
    series_list = read_series_csv(args.data)
    for series, rec in zip(series_list, engine.recommend_many(series_list)):
        ranking = ",".join(rec.ranking)
        print(f"{series.name}\t{rec.algorithm}\t{ranking}")
    return 0


def _cmd_repair(args) -> int:
    engine = load_engine(args.engine)
    parallel = _parallel_from_args(args)
    if parallel is not None:
        engine.extractor.parallel = parallel
    series_list = read_series_csv(args.data)
    recommendations = engine.recommend_many(series_list)
    repaired = engine.repair_many(series_list, recommendations)
    for series, rec in zip(series_list, recommendations):
        print(f"{series.name}\t{rec.algorithm}", file=sys.stderr)
    write_series_csv(args.out, repaired)
    print(f"wrote {len(repaired)} repaired series to {args.out}", file=sys.stderr)
    return 0


def _cmd_list_imputers(args) -> int:
    for name in available_imputers():
        print(name)
    return 0


def _cmd_worker(args) -> int:
    """Cluster-backend worker: run one manifest, emit JSON-lines results.

    Exit code is the number of failed tasks (0 = all succeeded); the
    parent treats missing result *lines* — not a non-zero exit — as an
    infrastructure failure.
    """
    from repro.parallel.cluster import run_manifest

    if args.out == "-":
        return run_manifest(args.manifest, sys.stdout)
    out_path = pathlib.Path(args.out)
    tmp = out_path.with_suffix(out_path.suffix + ".tmp")
    with tmp.open("w") as fh:
        failures = run_manifest(args.manifest, fh)
        fh.flush()
    tmp.replace(out_path)
    return failures


def _load_serving_engine(args):
    """Load an engine for a serving subcommand (parallel + cache wired)."""
    engine = load_engine(args.engine)
    parallel = _parallel_from_args(args)
    if parallel is not None:
        engine.extractor.parallel = parallel
    if engine.extractor.cache is None:
        engine.extractor.cache = FeatureCache()
    return engine


def _build_monitor(args, engine) -> InferenceMonitor:
    """InferenceMonitor with the drift detector the flags describe."""
    if engine.feature_baseline_ is None:
        print(
            "note: engine has no feature baseline; drift monitoring disabled",
            file=sys.stderr,
        )
        detector = None
    else:
        detector = DriftDetector(
            engine.feature_baseline_,
            window_size=args.drift_window,
            min_samples=min(args.drift_window, args.drift_min_samples),
            psi_threshold=args.psi_threshold,
            ks_threshold=args.ks_threshold,
        )
    return InferenceMonitor(
        engine, window=args.window, drift_detector=detector
    )


def _replay(monitor, series_list, *, batch: int, repeat: int) -> None:
    """Push the CSV through the monitor in request-sized batches."""
    batch = max(1, batch)
    for _ in range(max(1, repeat)):
        for start in range(0, len(series_list), batch):
            monitor.recommend_many(series_list[start : start + batch])


def _cmd_monitor(args) -> int:
    import time

    from repro.observability.dashboard import ANSI_CLEAR

    engine = _load_serving_engine(args)
    series_list = read_series_csv(args.data)
    monitor = _build_monitor(args, engine)

    def render(snapshot) -> str:
        return (
            snapshot.to_prometheus() if args.format == "prometheus"
            else snapshot.to_json()
        )

    if args.watch is not None:
        # Periodic refresh: replay, clear the screen, re-render, sleep.
        # Ctrl-C exits cleanly (the accumulated windows keep their data,
        # so the final frame on screen is the freshest one).
        try:
            while True:
                _replay(monitor, series_list, batch=args.batch,
                        repeat=args.repeat)
                print(ANSI_CLEAR + render(monitor.snapshot()), flush=True)
                time.sleep(max(0.1, args.watch))
        except KeyboardInterrupt:
            print("monitor stopped", file=sys.stderr)
            return 0

    _replay(monitor, series_list, batch=args.batch, repeat=args.repeat)
    snapshot = monitor.snapshot()
    if args.out:
        path = snapshot.export(args.out)
        print(f"wrote health snapshot to {path}", file=sys.stderr)
    if args.prom_out:
        path = pathlib.Path(args.prom_out)
        path.write_text(snapshot.to_prometheus())
        print(f"wrote Prometheus health document to {path}", file=sys.stderr)
    print(render(snapshot))
    return 0


def _serve_selfcheck(daemon, server, args) -> int:
    """CI serving lane: seeded load through the real socket, zero tolerance.

    Drives ``--selfcheck N`` requests from the shared
    :class:`LoadGenerator` through the daemon's actual asyncio
    front-end, prints a one-line verdict, optionally exports the final
    :class:`HealthSnapshot`, and fails (exit 1) on *any* shed or error
    response — at idle load the daemon has no excuse.
    """
    import socket as socket_mod
    import threading

    from repro.serving import decode_response, encode_request
    from repro.serving.testing import LoadGenerator

    generator = LoadGenerator(
        args.seed, length=args.length, mode="repair"
    )
    requests = generator.requests(args.selfcheck)
    responses = []

    if isinstance(server.address, tuple):
        conn = socket_mod.create_connection(server.address)
    else:
        conn = socket_mod.socket(socket_mod.AF_UNIX)
        conn.connect(server.address)
    with conn:
        stream = conn.makefile("rwb")

        def read_all() -> None:
            for _ in range(len(requests)):
                responses.append(decode_response(stream.readline()))

        reader = threading.Thread(target=read_all, daemon=True)
        reader.start()
        for request in requests:
            stream.write(encode_request(request) + b"\n")
        stream.flush()
        reader.join(timeout=120.0)

    by_status: dict[int, int] = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    missing = len(requests) - len(responses)
    n_bad = sum(v for k, v in by_status.items() if k != 200) + missing
    snapshot = daemon.health()
    if args.snapshot_out:
        path = snapshot.export(args.snapshot_out)
        print(f"wrote health snapshot to {path}", file=sys.stderr)
    latency = snapshot.latency
    print(
        f"selfcheck: {len(responses)}/{len(requests)} responses, "
        f"statuses {dict(sorted(by_status.items()))}, "
        f"p50 {latency['p50'] * 1000:.2f}ms p99 {latency['p99'] * 1000:.2f}ms"
    )
    if n_bad:
        print(
            f"selfcheck FAILED: {n_bad} shed/error/missing responses "
            "at idle load",
            file=sys.stderr,
        )
        return 1
    print("selfcheck OK")
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import ServingDaemon, SocketServer

    engine = _load_serving_engine(args)
    daemon = ServingDaemon(
        engine,
        n_shards=args.shards,
        shard_backend=args.shard_backend,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        max_pending=args.max_pending,
    )
    server = SocketServer(
        daemon,
        host=args.host,
        # Self-check binds an ephemeral port so CI lanes never collide.
        port=0 if args.selfcheck else args.port,
        path=args.socket,
    )
    with daemon, server:
        address = (
            server.address
            if isinstance(server.address, str)
            else "{}:{}".format(*server.address)
        )
        print(
            f"repro serve: {daemon.pool.n_shards} "
            f"{daemon.pool.backend} shard(s) on {address}",
            file=sys.stderr,
        )
        if args.selfcheck:
            return _serve_selfcheck(daemon, server, args)
        try:
            import time

            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        if args.snapshot_out:
            path = daemon.health().export(args.snapshot_out)
            print(f"wrote health snapshot to {path}", file=sys.stderr)
    return 0


def _cmd_top(args) -> int:
    import time

    from repro.observability.dashboard import (
        ANSI_CLEAR,
        load_snapshot,
        render_top,
    )

    color = sys.stdout.isatty() and not args.no_color

    if args.snapshot:
        # Offline mode: render a previously exported health document
        # (re-reading the file every tick, so an external writer can
        # drive the dashboard).
        if args.once:
            print(render_top(load_snapshot(args.snapshot), color=color))
            return 0
        try:
            while True:
                frame = render_top(load_snapshot(args.snapshot), color=color)
                print(ANSI_CLEAR + frame, flush=True)
                time.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            return 0

    if not args.engine or not args.data:
        raise ValidationError(
            "repro top needs either --snapshot or --engine plus --data"
        )
    engine = _load_serving_engine(args)
    series_list = read_series_csv(args.data)
    monitor = _build_monitor(args, engine)
    if args.once:
        _replay(monitor, series_list, batch=args.batch, repeat=args.repeat)
        print(render_top(monitor.snapshot().as_dict(), color=color))
        return 0
    try:
        while True:
            _replay(monitor, series_list, batch=args.batch,
                    repeat=args.repeat)
            frame = render_top(monitor.snapshot().as_dict(), color=color)
            print(ANSI_CLEAR + frame, flush=True)
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        print("top stopped", file=sys.stderr)
        return 0


def _cmd_bench_trend(args) -> int:
    import glob
    import json

    from repro.observability.dashboard import render_bench_trend

    repo_root = pathlib.Path.cwd()
    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        raise ValidationError(f"no baseline document at {baseline_path}")
    baseline = json.loads(baseline_path.read_text())
    fresh_paths = []
    for pattern in args.fresh or [str(repo_root / "BENCH_*.json")]:
        matches = sorted(glob.glob(pattern))
        fresh_paths.extend(matches if matches else [pattern])
    fresh: dict = {}
    n_docs = 0
    for path in fresh_paths:
        path = pathlib.Path(path)
        if not path.exists():
            print(f"note: skipping missing document {path}", file=sys.stderr)
            continue
        document = json.loads(path.read_text())
        if isinstance(document, dict):
            fresh.update(document)
            n_docs += 1
    if not fresh:
        raise ValidationError(
            "no fresh benchmark documents found (pass --fresh BENCH_x.json)"
        )
    print(f"comparing {n_docs} document(s) against {baseline_path}",
          file=sys.stderr)
    table = render_bench_trend(
        baseline, fresh, threshold=args.threshold,
        color=sys.stdout.isatty() and not args.no_color,
        include_missing=args.all,
    )
    print(table)
    if args.out:
        pathlib.Path(args.out).write_text(table + "\n")
        print(f"wrote trend report to {args.out}", file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    engine = _load_serving_engine(args)
    series_list = read_series_csv(args.data)
    profiler = SamplingProfiler(
        interval=args.interval / 1000.0, mode=args.mode
    )
    with profiler:
        for _ in range(max(1, args.repeat)):
            engine.recommend_many(series_list)
    path = profiler.export(args.out)
    print(f"wrote collapsed stacks to {path}", file=sys.stderr)
    print(profiler.render_top(args.top))
    return 0


def _cmd_report(args) -> int:
    spans = load_trace(args.trace)
    metrics = load_metrics(args.metrics) if args.metrics else None
    print(render_report(spans, metrics=metrics, top=args.top))
    return 0


def _format_ledger_line(rec: dict) -> str:
    data = rec.get("data", {})
    parts = [
        str(rec.get("time") or "-"),
        f"{rec.get('kind', '?'):<7}",
        str(rec.get("id")),
    ]
    if rec.get("kind") == "repair":
        assignment = data.get("cluster") or {}
        flags = "".join(
            flag
            for flag, on in (
                (" DEGRADED", data.get("degraded")),
                (" FALLBACK", data.get("fallback")),
            )
            if on
        )
        parts.append(
            f"{data.get('series')} -> {data.get('algorithm')} "
            f"(conf {data.get('confidence') or 0.0:.3f}, "
            f"cluster {assignment.get('cluster', '-')}){flags}"
        )
    elif rec.get("kind") == "impute":
        quality = data.get("quality") or {}
        parts.append(
            f"{data.get('algorithm')} filled {data.get('n_missing')} "
            f"(plausibility_z {quality.get('plausibility_z', 0.0):.3f})"
        )
    elif rec.get("kind") == "race":
        parts.append(
            f"{len(data.get('elites', []))} elites, "
            f"{data.get('n_evaluations')} evals, "
            f"prune {data.get('prune_ratio', 0.0):.1%}"
        )
    elif rec.get("kind") == "label":
        parts.append(
            f"cluster {data.get('cluster_id')} "
            f"({data.get('pattern')}@{data.get('ratio')}) -> "
            f"{data.get('winner')}"
        )
    elif rec.get("kind") == "fit":
        parts.append(
            f"{data.get('n_samples')} samples, "
            f"{data.get('n_members')} members, "
            f"classes {data.get('classes')}"
        )
    return "  ".join(parts)


def _cmd_audit(args) -> int:
    import json

    records = filter_records(
        read_ledger(args.ledger),
        kind=args.kind,
        algorithm=args.algorithm,
        cluster=args.cluster,
        degraded_only=args.degraded_only,
    )
    if args.tail:
        records = records[-args.tail:]
    if args.summary:
        summary = summarize_ledger(records)
        print(
            json.dumps(summary, indent=2) if args.json
            else render_summary(summary)
        )
        return 0
    for rec in records:
        print(json.dumps(rec) if args.json else _format_ledger_line(rec))
    if not records:
        print("(no matching ledger records)", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    import json

    head = None
    if args.engine:
        head = load_engine(args.engine).ledger_head_
    explanation = explain_repair(
        read_ledger(args.ledger), args.repair_id, head=head
    )
    print(
        json.dumps(explanation, indent=2) if args.json
        else render_explanation(explanation)
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A-DARTS: automated data repair for time series",
    )
    # Observability flags shared by every subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of the run to PATH",
    )
    common.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write run metrics to PATH (.prom/.txt: Prometheus text, "
        "otherwise JSON)",
    )
    common.add_argument(
        "--ledger-out", default=None, metavar="PATH",
        help="append repair-provenance ledger rows (JSONL) to PATH; "
        "inspect them later with 'repro audit' / 'repro explain'",
    )
    common.add_argument(
        "--verbose", "-v", action="store_true",
        help="log progress to stderr via the repro logger",
    )
    common.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker count for parallel stages (1=serial, 0=all CPUs)",
    )
    common.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="parallel backend (auto selects by workload size)",
    )
    common.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retry transient evaluation failures up to N times "
        "(0 = historical no-retry behaviour)",
    )
    common.add_argument(
        "--eval-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per pipeline evaluation "
        "(default: no deadline)",
    )
    common.add_argument(
        "--impute-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per imputation call "
        "(default: no deadline)",
    )
    common.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first evaluation failure instead of scoring "
        "it as a loss",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser(
        "train", help="train an engine on built-in data", parents=[common]
    )
    train.add_argument(
        "--categories", nargs="+", default=["Water", "Climate"],
        help=f"dataset categories to train on (from {', '.join(CATEGORIES)})",
    )
    train.add_argument("--out", required=True, help="output engine JSON path")
    train.add_argument("--series-per-dataset", type=int, default=16)
    train.add_argument("--datasets-per-category", type=int, default=2)
    train.add_argument("--partial-sets", type=int, default=3)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--shards-train", type=int, default=1, metavar="K",
        help="cluster each dataset over K shards "
        "(shard-and-merge; 1 = single-shard)",
    )
    train.add_argument(
        "--bank-path", default=None, metavar="DIR",
        help="directory for disk-backed series banks (out-of-core "
        "training; one bank subdirectory per dataset)",
    )
    train.set_defaults(func=_cmd_train)

    recommend = sub.add_parser(
        "recommend",
        help="recommend imputation algorithms for faulty series",
        parents=[common],
    )
    recommend.add_argument("--engine", required=True, help="engine JSON path")
    recommend.add_argument("--data", required=True, help="faulty series CSV")
    recommend.set_defaults(func=_cmd_recommend)

    repair = sub.add_parser(
        "repair", help="recommend and impute in one step", parents=[common]
    )
    repair.add_argument("--engine", required=True, help="engine JSON path")
    repair.add_argument("--data", required=True, help="faulty series CSV")
    repair.add_argument("--out", required=True, help="repaired series CSV path")
    repair.set_defaults(func=_cmd_repair)

    lister = sub.add_parser(
        "list-imputers", help="list available algorithms", parents=[common]
    )
    lister.set_defaults(func=_cmd_list_imputers)

    monitor = sub.add_parser(
        "monitor",
        help="serve recommendations and render the serving-health document",
        parents=[common],
    )
    monitor.add_argument("--engine", required=True, help="engine JSON path")
    monitor.add_argument("--data", required=True, help="faulty series CSV")
    monitor.add_argument(
        "--repeat", type=int, default=1,
        help="times to replay the CSV through the monitor",
    )
    monitor.add_argument(
        "--batch", type=int, default=1,
        help="series per monitored request (1 = one request per series)",
    )
    monitor.add_argument(
        "--window", type=int, default=512,
        help="rolling-window capacity for latency/confidence stats",
    )
    monitor.add_argument(
        "--drift-window", type=int, default=256,
        help="feature vectors held by the drift detector",
    )
    monitor.add_argument(
        "--drift-min-samples", type=int, default=64,
        help="vectors required before drift scoring starts",
    )
    monitor.add_argument(
        "--psi-threshold", type=float, default=0.25,
        help="PSI alert threshold (population stability index)",
    )
    monitor.add_argument(
        "--ks-threshold", type=float, default=0.5,
        help="KS-statistic alert threshold",
    )
    monitor.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="stdout rendering of the health document",
    )
    monitor.add_argument(
        "--out", default=None, help="also write the health JSON here"
    )
    monitor.add_argument(
        "--prom-out", default=None,
        help="also write the Prometheus text exposition here",
    )
    monitor.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh mode: replay and re-render every SECONDS "
        "(clear screen between frames; Ctrl-C exits cleanly)",
    )
    monitor.set_defaults(func=_cmd_monitor)

    serve = sub.add_parser(
        "serve",
        help="run the sharded serving daemon (JSON-lines over a socket)",
        parents=[common],
    )
    serve.add_argument("--engine", required=True, help="engine JSON path")
    serve.add_argument(
        "--shards", type=int, default=2,
        help="worker shard count (each attaches the engine via shm)",
    )
    serve.add_argument(
        "--shard-backend", choices=("auto", "process", "inline"),
        default="auto",
        help="shard execution backend (auto: process when shm works)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16,
        help="micro-batch size bound",
    )
    serve.add_argument(
        "--max-delay-ms", type=float, default=5.0,
        help="micro-batch coalescing budget in milliseconds",
    )
    serve.add_argument(
        "--max-pending", type=int, default=1024,
        help="admission limit before requests are shed with a 503",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7653,
        help="TCP port (0 = ephemeral; printed on startup)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a unix socket instead of TCP",
    )
    serve.add_argument(
        "--selfcheck", type=int, default=None, metavar="N",
        help="CI lane: serve N seeded requests through the real socket, "
        "then exit non-zero on any shed/error response",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="selfcheck load-generator seed"
    )
    serve.add_argument(
        "--length", type=int, default=96,
        help="selfcheck series length",
    )
    serve.add_argument(
        "--snapshot-out", default=None, metavar="PATH",
        help="export the final HealthSnapshot JSON here",
    )
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="live ANSI dashboard: SLOs, burn rates, latency, resources",
        parents=[common],
    )
    top.add_argument(
        "--engine", default=None, help="engine JSON path (live mode)"
    )
    top.add_argument(
        "--data", default=None, help="faulty series CSV (live mode)"
    )
    top.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="render a health-snapshot JSON exported by 'repro monitor' "
        "instead of serving live traffic",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (CI-friendly, no ANSI clear)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period for the live loop",
    )
    top.add_argument(
        "--no-color", action="store_true",
        help="disable ANSI colors even on a TTY",
    )
    top.add_argument(
        "--repeat", type=int, default=1,
        help="times to replay the CSV per frame (live mode)",
    )
    top.add_argument(
        "--batch", type=int, default=1,
        help="series per monitored request (live mode)",
    )
    top.add_argument("--window", type=int, default=512)
    top.add_argument("--drift-window", type=int, default=256)
    top.add_argument("--drift-min-samples", type=int, default=64)
    top.add_argument("--psi-threshold", type=float, default=0.25)
    top.add_argument("--ks-threshold", type=float, default=0.5)
    top.set_defaults(func=_cmd_top)

    bench = sub.add_parser(
        "bench",
        help="benchmark utilities (trend: compare BENCH_*.json to baseline)",
        parents=[common],
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    trend = bench_sub.add_parser(
        "trend",
        help="per-workload trend table of fresh BENCH_*.json vs baseline",
    )
    trend.add_argument(
        "--baseline", default="benchmarks/bench_baseline.json",
        help="committed baseline document",
    )
    trend.add_argument(
        "--fresh", action="append", metavar="PATH_OR_GLOB",
        help="fresh benchmark document(s); repeat or glob "
        "(default: BENCH_*.json in the working directory)",
    )
    trend.add_argument(
        "--threshold", type=float, default=1.5,
        help="slowdown factor flagged REGRESSED (matches the CI gate)",
    )
    trend.add_argument(
        "--out", default=None, help="also write the table here"
    )
    trend.add_argument(
        "--no-color", action="store_true",
        help="disable ANSI colors even on a TTY",
    )
    trend.add_argument(
        "--all", action="store_true",
        help="also list baseline arms missing from the fresh documents",
    )
    trend.set_defaults(func=_cmd_bench_trend)

    profile = sub.add_parser(
        "profile",
        help="sample the inference path and write collapsed stacks",
        parents=[common],
    )
    profile.add_argument("--engine", required=True, help="engine JSON path")
    profile.add_argument("--data", required=True, help="faulty series CSV")
    profile.add_argument(
        "--out", required=True,
        help="collapsed-stack output path (flamegraph.pl / speedscope input)",
    )
    profile.add_argument(
        "--repeat", type=int, default=10,
        help="times to replay the CSV under the profiler",
    )
    profile.add_argument(
        "--interval", type=float, default=5.0,
        help="sampling interval in milliseconds",
    )
    profile.add_argument(
        "--mode", choices=("thread", "signal"), default="thread",
        help="sampler: thread (all threads, wall) or signal (main, CPU)",
    )
    profile.add_argument(
        "--top", type=int, default=10, help="rows in the hotspot table"
    )
    profile.set_defaults(func=_cmd_profile)

    report = sub.add_parser(
        "report",
        help="render a human-readable summary of a saved trace",
        parents=[common],
    )
    report.add_argument(
        "--trace", required=True, help="trace JSON written by --trace-out"
    )
    report.add_argument(
        "--metrics", default=None,
        help="optional metrics dump written by --metrics-out",
    )
    report.add_argument(
        "--top", type=int, default=10, help="rows in the slowest-span table"
    )
    report.set_defaults(func=_cmd_report)

    audit = sub.add_parser(
        "audit",
        help="filter/tail/summarize a repair-provenance ledger file",
        parents=[common],
    )
    audit.add_argument(
        "--ledger", required=True,
        help="ledger JSONL written via --ledger-out",
    )
    audit.add_argument(
        "--kind", default=None,
        choices=("fit", "race", "label", "repair", "impute"),
        help="only records of this kind",
    )
    audit.add_argument(
        "--algorithm", default=None,
        help="only repair/impute records for this imputer",
    )
    audit.add_argument(
        "--cluster", default=None,
        help="only repair records assigned to this cluster id",
    )
    audit.add_argument(
        "--degraded-only", action="store_true",
        help="only degraded/fallback repairs",
    )
    audit.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="only the last N matching records",
    )
    audit.add_argument(
        "--summary", action="store_true",
        help="render aggregate scorecards instead of individual records",
    )
    audit.add_argument(
        "--json", action="store_true",
        help="emit JSON instead of the text rendering",
    )
    audit.set_defaults(func=_cmd_audit)

    explain = sub.add_parser(
        "explain",
        help="render one repair's full decision path from a ledger",
        parents=[common],
    )
    explain.add_argument(
        "repair_id", help="repair id (rep_...) from a ledger/repair output"
    )
    explain.add_argument(
        "--ledger", required=True,
        help="ledger JSONL written via --ledger-out",
    )
    explain.add_argument(
        "--engine", default=None,
        help="optional engine JSON whose fit-time ledger head extends "
        "the lineage search (for ledgers written only at serving time)",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the structured explanation as JSON",
    )
    explain.set_defaults(func=_cmd_explain)

    worker = sub.add_parser(
        "worker",
        help="run one cluster-backend task manifest and emit JSON-lines "
        "results (spawned by the 'cluster' parallel backend)",
        parents=[common],
    )
    worker.add_argument(
        "--manifest", required=True,
        help="task manifest JSON written by repro.parallel.cluster",
    )
    worker.add_argument(
        "--out", default="-",
        help="result JSONL path ('-' = stdout)",
    )
    worker.set_defaults(func=_cmd_worker)
    return parser


def _run_with_observability(args) -> int:
    """Execute the subcommand, installing tracer/metrics when requested.

    The resilience flags install a process-level
    :class:`~repro.resilience.FaultPolicy` for the duration of the
    subcommand, so deadlines/retries apply to every instrumented site
    (race evaluations, imputation calls) without plumbing arguments
    through each code path.
    """
    if getattr(args, "verbose", False):
        enable_console_logging(logging.INFO)
    policy = _fault_policy_from_args(args)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    ledger_out = getattr(args, "ledger_out", None)
    if not trace_out and not metrics_out and not ledger_out:
        if policy is None:
            return args.func(args)
        with use_fault_policy(policy):
            return args.func(args)
    tracer = Tracer() if trace_out else None
    registry = MetricsRegistry() if metrics_out else None
    ledger = RepairLedger(ledger_out) if ledger_out else None
    try:
        with use_tracer(tracer), use_metrics(registry), \
                use_ledger(ledger), use_fault_policy(policy):
            return args.func(args)
    finally:
        if tracer is not None:
            path = tracer.export_chrome_trace(trace_out)
            print(f"wrote trace to {path}", file=sys.stderr)
        if registry is not None:
            path = registry.export(metrics_out)
            print(f"wrote metrics to {path}", file=sys.stderr)
        if ledger is not None:
            ledger.close()
            print(
                f"wrote {ledger.n_written} ledger records to {ledger.path}",
                file=sys.stderr,
            )


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_with_observability(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
