"""Command-line interface: train, recommend, and repair from CSV files.

CSV convention: one time series per row, comma-separated floats; empty
fields or the token ``nan`` mark missing values.

Examples
--------
Train on the built-in synthetic corpus and save the engine::

    python -m repro train --categories Water Climate --out engine.json

Recommend algorithms for faulty series::

    python -m repro recommend --engine engine.json --data faulty.csv

Repair them in place::

    python -m repro repair --engine engine.json --data faulty.csv \
        --out repaired.csv

List the available imputation algorithms::

    python -m repro list-imputers

Every subcommand accepts ``--trace-out trace.json`` (Chrome
``trace_event`` export, open in ``chrome://tracing`` or Perfetto) and
``--metrics-out metrics.prom`` (Prometheus text; a ``.json`` suffix
selects JSON).  Saved traces are rendered into a human-readable run
summary by::

    python -m repro report --trace trace.json --metrics metrics.prom
"""

from __future__ import annotations

import argparse
import logging
import pathlib
import sys

import numpy as np

from repro.core.adarts import ADarts
from repro.core.config import ModelRaceConfig
from repro.core.serialization import load_engine, save_engine
from repro.datasets import CATEGORIES, load_category
from repro.exceptions import ReproError, ValidationError
from repro.imputation import available_imputers
from repro.observability import (
    LoggingObserver,
    MetricsRegistry,
    Tracer,
    enable_console_logging,
    use_metrics,
    use_tracer,
)
from repro.observability.report import load_metrics, load_trace, render_report
from repro.parallel import BACKENDS, ParallelConfig
from repro.timeseries.series import TimeSeries


def _parallel_from_args(args) -> ParallelConfig | None:
    """Build a ParallelConfig from --jobs/--backend (None = serial default)."""
    jobs = getattr(args, "jobs", 1)
    backend = getattr(args, "backend", "auto")
    if jobs == 1 and backend == "auto":
        return None
    return ParallelConfig(n_jobs=jobs, backend=backend)


def read_series_csv(path) -> list[TimeSeries]:
    """Read one series per row; blank/'nan' fields are missing values."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no such file: {path}")
    series = []
    with path.open() as fh:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            values = [
                float("nan") if field.strip() in ("", "nan", "NaN") else float(field)
                for field in line.split(",")
            ]
            series.append(TimeSeries(values, name=f"row_{line_no}"))
    if not series:
        raise ValidationError(f"{path} contains no series")
    return series


def write_series_csv(path, series_list) -> None:
    """Write one series per row (NaN becomes an empty field)."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        for series in series_list:
            fields = [
                "" if np.isnan(v) else repr(float(v)) for v in series.values
            ]
            fh.write(",".join(fields) + "\n")


def _cmd_train(args) -> int:
    for category in args.categories:
        if category not in CATEGORIES:
            raise ValidationError(
                f"unknown category {category!r}; choose from {CATEGORIES}"
            )
    datasets = []
    for category in args.categories:
        datasets.extend(
            load_category(
                category, n_series=args.series_per_dataset,
                n_datasets=args.datasets_per_category,
            )
        )
    engine = ADarts(
        config=ModelRaceConfig(
            n_partial_sets=args.partial_sets, random_state=args.seed
        ),
        random_state=args.seed,
        observer=LoggingObserver() if args.verbose else None,
        parallel=_parallel_from_args(args),
    )
    print(
        f"training on {sum(len(d) for d in datasets)} series "
        f"from {len(datasets)} datasets ...",
        file=sys.stderr,
    )
    engine.fit_datasets(datasets)
    save_engine(engine, args.out)
    print(f"saved engine to {args.out}", file=sys.stderr)
    for pipeline in engine.winning_pipelines:
        print(f"winner: {pipeline}", file=sys.stderr)
    return 0


def _cmd_recommend(args) -> int:
    engine = load_engine(args.engine)
    parallel = _parallel_from_args(args)
    if parallel is not None:
        engine.extractor.parallel = parallel
    series_list = read_series_csv(args.data)
    for series, rec in zip(series_list, engine.recommend_many(series_list)):
        ranking = ",".join(rec.ranking)
        print(f"{series.name}\t{rec.algorithm}\t{ranking}")
    return 0


def _cmd_repair(args) -> int:
    engine = load_engine(args.engine)
    parallel = _parallel_from_args(args)
    if parallel is not None:
        engine.extractor.parallel = parallel
    series_list = read_series_csv(args.data)
    repaired = []
    for series, rec in zip(series_list, engine.recommend_many(series_list)):
        repaired.append(
            rec.impute(series) if series.has_missing else series
        )
        print(f"{series.name}\t{rec.algorithm}", file=sys.stderr)
    write_series_csv(args.out, repaired)
    print(f"wrote {len(repaired)} repaired series to {args.out}", file=sys.stderr)
    return 0


def _cmd_list_imputers(args) -> int:
    for name in available_imputers():
        print(name)
    return 0


def _cmd_report(args) -> int:
    spans = load_trace(args.trace)
    metrics = load_metrics(args.metrics) if args.metrics else None
    print(render_report(spans, metrics=metrics, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A-DARTS: automated data repair for time series",
    )
    # Observability flags shared by every subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of the run to PATH",
    )
    common.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write run metrics to PATH (.prom/.txt: Prometheus text, "
        "otherwise JSON)",
    )
    common.add_argument(
        "--verbose", "-v", action="store_true",
        help="log progress to stderr via the repro logger",
    )
    common.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker count for parallel stages (1=serial, 0=all CPUs)",
    )
    common.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="parallel backend (auto selects by workload size)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser(
        "train", help="train an engine on built-in data", parents=[common]
    )
    train.add_argument(
        "--categories", nargs="+", default=["Water", "Climate"],
        help=f"dataset categories to train on (from {', '.join(CATEGORIES)})",
    )
    train.add_argument("--out", required=True, help="output engine JSON path")
    train.add_argument("--series-per-dataset", type=int, default=16)
    train.add_argument("--datasets-per-category", type=int, default=2)
    train.add_argument("--partial-sets", type=int, default=3)
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(func=_cmd_train)

    recommend = sub.add_parser(
        "recommend",
        help="recommend imputation algorithms for faulty series",
        parents=[common],
    )
    recommend.add_argument("--engine", required=True, help="engine JSON path")
    recommend.add_argument("--data", required=True, help="faulty series CSV")
    recommend.set_defaults(func=_cmd_recommend)

    repair = sub.add_parser(
        "repair", help="recommend and impute in one step", parents=[common]
    )
    repair.add_argument("--engine", required=True, help="engine JSON path")
    repair.add_argument("--data", required=True, help="faulty series CSV")
    repair.add_argument("--out", required=True, help="repaired series CSV path")
    repair.set_defaults(func=_cmd_repair)

    lister = sub.add_parser(
        "list-imputers", help="list available algorithms", parents=[common]
    )
    lister.set_defaults(func=_cmd_list_imputers)

    report = sub.add_parser(
        "report",
        help="render a human-readable summary of a saved trace",
        parents=[common],
    )
    report.add_argument(
        "--trace", required=True, help="trace JSON written by --trace-out"
    )
    report.add_argument(
        "--metrics", default=None,
        help="optional metrics dump written by --metrics-out",
    )
    report.add_argument(
        "--top", type=int, default=10, help="rows in the slowest-span table"
    )
    report.set_defaults(func=_cmd_report)
    return parser


def _run_with_observability(args) -> int:
    """Execute the subcommand, installing tracer/metrics when requested."""
    if getattr(args, "verbose", False):
        enable_console_logging(logging.INFO)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace_out and not metrics_out:
        return args.func(args)
    tracer = Tracer() if trace_out else None
    registry = MetricsRegistry() if metrics_out else None
    try:
        with use_tracer(tracer), use_metrics(registry):
            return args.func(args)
    finally:
        if tracer is not None:
            path = tracer.export_chrome_trace(trace_out)
            print(f"wrote trace to {path}", file=sys.stderr)
        if registry is not None:
            path = registry.export(metrics_out)
            print(f"wrote metrics to {path}", file=sys.stderr)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_with_observability(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
