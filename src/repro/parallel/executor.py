"""Backend-pluggable execution engine for embarrassingly parallel batches.

:class:`ExecutionEngine` exposes one operation — :meth:`ExecutionEngine.map`
— which applies a function to a list of items and returns the results **in
input order**, regardless of backend.  Order preservation is what makes the
engine safe to drop into deterministic code paths: ModelRace's post-fold
pruning barrier, ``extract_many``'s feature-matrix assembly, and the
labeler's cluster-ranking loop all rely on it.

Every batch opens a span (``parallel.map``) on the process tracer tagged
with backend / task count / worker count, and increments per-backend
counters and batch-latency histograms on the process metrics registry, so
``repro report`` shows how work was spread across backends.

Resilience
----------
The engine never lets infrastructure failures escape to the caller:

* **Worker crashes** — a dead process-pool worker surfaces as
  ``BrokenProcessPool``; the engine tears the broken pool down, *demotes*
  the batch to the thread backend, and resubmits every task (map tasks
  must therefore be idempotent, which all repro call sites are).
* **Crash-class task errors** — :class:`~repro.exceptions.WorkerCrashError`
  (raised by fault injection or crash simulation on non-process backends)
  is retried in place a couple of times, then triggers thread→serial
  demotion as the last resort.
* **Fault injection** — pass a
  :class:`~repro.resilience.FaultInjector` and every task execution
  checks the ``executor.task`` site first, letting chaos tests kill
  workers or fail tasks deterministically.  With no injector the per-task
  overhead is a single ``is None`` branch.

Process-backend caveats: the mapped function and every item must be
picklable, and child processes see the *default* (no-op) tracer/metrics —
workers therefore return any timing they measured (e.g.
``PipelineScore.runtime``) so the parent can record it.  If the process
pool cannot be created at all (restricted environments without semaphore
support), the engine logs a warning and degrades to threads.
"""

from __future__ import annotations

import concurrent.futures as _futures
import functools
import threading
import time
from concurrent.futures.process import BrokenProcessPool

from repro.exceptions import WorkerCrashError
from repro.observability import get_logger, get_metrics, get_tracer
from repro.observability.resources import get_accounting
from repro.parallel.config import AUTO_SERIAL_MAX_TASKS, ParallelConfig
from repro.resilience.stats import tick

_log = get_logger(__name__)

#: In-place re-attempts for crash-class (transient) task errors.
TASK_CRASH_RETRIES = 2

#: Smoothing factor of the per-label task-cost EWMA (new observations
#: weigh this much).
COST_EWMA_ALPHA = 0.5

# ---------------------------------------------------------------------------
# Process-wide backend stats.  The engines themselves are ephemeral (the
# extractor builds one per batch), so serving-health documents read the
# per-backend aggregate here instead of holding engine references.
# ---------------------------------------------------------------------------
_STATS_LOCK = threading.Lock()
_BACKEND_STATS: dict[str, dict[str, float]] = {}


def _record_batch(backend: str, n_tasks: int, seconds: float) -> None:
    with _STATS_LOCK:
        stats = _BACKEND_STATS.setdefault(
            backend, {"batches": 0, "tasks": 0, "seconds": 0.0}
        )
        stats["batches"] += 1
        stats["tasks"] += n_tasks
        stats["seconds"] += seconds


def _record_crash(backend: str) -> None:
    with _STATS_LOCK:
        stats = _BACKEND_STATS.setdefault(
            backend, {"batches": 0, "tasks": 0, "seconds": 0.0}
        )
        stats["crashes"] = stats.get("crashes", 0) + 1


def _record_workers(backend: str, n_workers: int) -> None:
    """Record the high-water worker count of a backend (``repro top``)."""
    with _STATS_LOCK:
        stats = _BACKEND_STATS.setdefault(
            backend, {"batches": 0, "tasks": 0, "seconds": 0.0}
        )
        stats["workers"] = max(stats.get("workers", 0), n_workers)


def engine_stats() -> dict[str, dict[str, float]]:
    """Per-backend ``{batches, tasks, seconds[, crashes]}`` since process start.

    A copy; mutating the result does not affect the live counters.
    """
    with _STATS_LOCK:
        return {
            backend: dict(stats) for backend, stats in _BACKEND_STATS.items()
        }


def reset_engine_stats() -> None:
    """Zero the process-wide backend stats (tests / fresh monitoring)."""
    with _STATS_LOCK:
        _BACKEND_STATS.clear()


def _apply_chunk(fn, chunk, injector=None, label: str = "task"):
    """Module-level chunk runner (picklable for the process backend).

    With an injector, every task first checks the ``executor.task`` fault
    site; crash-class (transient) failures are retried in place up to
    :data:`TASK_CRASH_RETRIES` times before propagating.
    """
    if injector is None:
        return [fn(item) for item in chunk]
    from repro.exceptions import TransientError

    out = []
    for item in chunk:
        attempt = 0
        while True:
            try:
                injector.check("executor.task", label)
                out.append(fn(item))
                break
            except TransientError:
                attempt += 1
                if attempt > TASK_CRASH_RETRIES:
                    raise
    return out


def _chunked(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


class ExecutionEngine:
    """Run homogeneous task batches under a :class:`ParallelConfig`.

    Parameters
    ----------
    config:
        The parallelism knobs; ``None`` means serial execution.
    injector:
        Optional :class:`~repro.resilience.FaultInjector` checked at the
        ``executor.task`` site before every task (chaos testing).
    """

    def __init__(self, config: ParallelConfig | None = None, injector=None):
        self.config = config or ParallelConfig()
        self.injector = injector
        #: Lazily created, reused across batches; see :meth:`shutdown`.
        self._pools: dict[str, _futures.Executor] = {}
        self._process_pool_broken = False
        #: Backend demotions performed by this engine instance.
        self.n_demotions = 0
        #: Per-label EWMA of observed per-task wall seconds.  Fed by the
        #: first-task probe on unseen ``auto`` labels and by serial
        #: batches (parallel batches are overhead-polluted and skipped);
        #: consumed by ``ParallelConfig.resolve_backend`` /
        #: ``resolve_chunk_size`` so cheap workloads stay serial and tiny
        #: tasks get folded into larger chunks.
        self._cost_ewma: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _observe_cost(self, label: str, per_task_seconds: float) -> None:
        """Fold one per-task cost observation into the label's EWMA."""
        prev = self._cost_ewma.get(label)
        if prev is None:
            self._cost_ewma[label] = per_task_seconds
        else:
            self._cost_ewma[label] = (
                COST_EWMA_ALPHA * per_task_seconds
                + (1.0 - COST_EWMA_ALPHA) * prev
            )

    def task_cost_estimate(self, label: str) -> float | None:
        """Current per-task cost EWMA for ``label`` (None when unseen)."""
        return self._cost_ewma.get(label)

    # ------------------------------------------------------------------
    def map(
        self, fn, items, *, label: str = "parallel.map", shared: dict | None = None
    ) -> list:
        """Apply ``fn`` to every item; results come back in input order.

        Parameters
        ----------
        fn:
            Callable of one argument.  Must be picklable (a module-level
            function or ``functools.partial`` of one) when the process
            backend may be chosen.  Tasks should be idempotent: after a
            worker crash the engine resubmits the whole batch on a
            demoted backend.
        items:
            Iterable of task inputs (materialized internally).
        label:
            Span name recorded on the process tracer for this batch (and
            the fault-injection target for the ``executor.task`` site).
        shared:
            Optional ``{keyword: ndarray}`` of large read-only arrays
            every task needs; ``fn`` is then called as
            ``fn(item, **arrays)``.  On the process backend each array is
            copied once into a shared-memory segment and only its handle
            rides in the task pickles (see :mod:`repro.parallel.shm`);
            serial/thread backends bind the arrays directly.  Segments
            are unlinked when the batch finishes, including on
            worker-crash demotion.
        """
        items = list(items)
        if not items:
            return []
        if shared:
            return self._map_with_shared(fn, items, label, shared)
        cfg = self.config
        est = self._cost_ewma.get(label)
        # First-task probe: an ``auto`` batch with an unseen label runs
        # its first task serially and times it, so the backend decision
        # below is cost-informed instead of size-guessed.  The probe's
        # result is kept (tasks execute exactly once).
        head: list = []
        if (
            est is None
            and cfg.backend == "auto"
            and cfg.effective_jobs > 1
            and len(items) >= AUTO_SERIAL_MAX_TASKS
        ):
            probe_start = time.perf_counter()
            head = _apply_chunk(fn, items[:1], self.injector, label)
            self._observe_cost(label, time.perf_counter() - probe_start)
            est = self._cost_ewma[label]
        tail = items[len(head):]
        backend = cfg.resolve_backend(len(items), est)
        get_accounting().record_backend_decision(backend)
        jobs = min(cfg.effective_jobs, len(items))
        chunk = cfg.resolve_chunk_size(len(items), est)
        metrics = get_metrics()
        tracer = get_tracer()
        batch_timer = metrics.histogram(
            "repro_parallel_batch_seconds",
            "Wall seconds per ExecutionEngine.map batch",
            labels={"backend": backend},
        )
        batch_start = time.perf_counter()
        with tracer.span(
            label,
            subsystem="parallel",
            backend=backend,
            n_tasks=len(items),
            n_jobs=jobs,
            chunk_size=chunk,
            probed=bool(head),
        ), batch_timer.time():
            if backend == "serial":
                results = self._map_serial(fn, tail, label)
            elif backend == "thread":
                results = self._map_thread(fn, tail, chunk, label)
            elif backend == "process":
                results = self._map_process(fn, tail, chunk, label)
            elif backend == "cluster":
                results = self._map_cluster(fn, tail, label)
            else:  # pragma: no cover - ParallelConfig validates backends
                raise ValueError(f"unknown backend {backend!r}")
        results = head + results
        if backend == "serial" and tail:
            # Serial batches measure true per-task cost; keep the EWMA
            # fresh so workloads that grow expensive get promoted.
            self._observe_cost(
                label, (time.perf_counter() - batch_start) / len(tail)
            )
        metrics.counter(
            "repro_parallel_tasks_total",
            "Tasks executed through ExecutionEngine.map",
            labels={"backend": backend},
        ).inc(len(items))
        metrics.counter(
            "repro_parallel_batches_total",
            "Batches executed through ExecutionEngine.map",
            labels={"backend": backend},
        ).inc()
        _record_batch(backend, len(items), time.perf_counter() - batch_start)
        return results

    # ------------------------------------------------------------------
    def _map_with_shared(self, fn, items: list, label: str, shared: dict) -> list:
        """Run a batch whose tasks all read the same large arrays.

        Non-process backends bind the arrays to ``fn`` directly and go
        through the ordinary :meth:`map` machinery.  The process backend
        copies each array into a shared-memory segment exactly once and
        ships only handles in the task pickles; the segments are
        unlinked when the batch finishes — including when a worker crash
        demotes the batch to the thread backend, where the resubmitted
        tasks read the parent's arrays directly.  Worker-side segment
        mappings live until the engine (and its pools) shut down.
        """
        from repro.parallel import shm as _shm

        cfg = self.config
        est = self._cost_ewma.get(label)
        backend = cfg.resolve_backend(len(items), est)
        direct = functools.partial(_shm.call_with_arrays, fn, shared)
        if backend != "process" or not _shm.shm_available():
            return self.map(direct, items, label=label)
        pool = self._process_pool()
        if pool is None:
            return self.map(direct, items, label=label)
        # Record only on the shared-memory path: the fallbacks above run
        # through ``map``, which records its own (re-resolved) decision.
        get_accounting().record_backend_decision(backend)
        chunk = cfg.resolve_chunk_size(len(items), est)
        # Disk-backed arrays (memmap-bank matrices) are already files:
        # workers re-map them read-only instead of copying them into a
        # segment, so the batch moves ~bytes of handle either way.
        segments = {}
        handles = {}
        for key, array in shared.items():
            handle = _shm.mmap_handle(array)
            if handle is None:
                seg = _shm.SharedArray.create(array)
                segments[key] = seg
                handle = seg.handle
            handles[key] = handle
        task = functools.partial(_shm.call_with_handles, fn, handles)
        metrics = get_metrics()
        batch_start = time.perf_counter()
        backend_used = "process"
        try:
            with get_tracer().span(
                label,
                subsystem="parallel",
                backend="process",
                n_tasks=len(items),
                n_jobs=min(cfg.effective_jobs, len(items)),
                chunk_size=chunk,
                shared_arrays=len(segments),
            ), metrics.histogram(
                "repro_parallel_batch_seconds",
                "Wall seconds per ExecutionEngine.map batch",
                labels={"backend": "process"},
            ).time():
                try:
                    results = self._drain(pool, task, items, chunk, label)
                except BrokenProcessPool as exc:
                    tick("worker_crashes")
                    metrics.counter(
                        "repro_parallel_worker_crashes_total",
                        "Process-pool workers detected dead mid-batch",
                    ).inc()
                    self._process_pool_broken = True
                    broken = self._pools.pop("process", None)
                    if broken is not None:
                        broken.shutdown(wait=False, cancel_futures=True)
                    self._demote("process", "thread", exc)
                    # Unlink *before* resubmitting: the demoted thread
                    # batch binds the parent's arrays directly, so the
                    # segments must not outlive the crashed pool.
                    for seg in segments.values():
                        seg.close()
                        seg.unlink()
                    segments = {}
                    backend_used = "thread"
                    results = self._map_thread(direct, items, chunk, label)
        finally:
            for seg in segments.values():
                seg.close()
                seg.unlink()
        for metric_name, help_text, amount in (
            (
                "repro_parallel_tasks_total",
                "Tasks executed through ExecutionEngine.map",
                len(items),
            ),
            (
                "repro_parallel_batches_total",
                "Batches executed through ExecutionEngine.map",
                1,
            ),
        ):
            metrics.counter(
                metric_name, help_text, labels={"backend": backend_used}
            ).inc(amount)
        _record_batch(
            backend_used, len(items), time.perf_counter() - batch_start
        )
        return results

    # ------------------------------------------------------------------
    # Pool lifecycle.  Pools are created lazily on first use and *reused*
    # across map() calls — ModelRace issues one batch per fold, and paying
    # process-pool startup per fold would dominate small fold times.  Call
    # :meth:`shutdown` (or use the engine as a context manager) when the
    # batches are done; garbage collection is the best-effort fallback.
    # ------------------------------------------------------------------
    def _thread_pool(self) -> _futures.Executor:
        pool = self._pools.get("thread")
        if pool is None:
            pool = _futures.ThreadPoolExecutor(
                max_workers=self.config.effective_jobs
            )
            self._pools["thread"] = pool
        return pool

    def _process_pool(self) -> _futures.Executor | None:
        """The process pool, or ``None`` when unavailable (use threads)."""
        if self._process_pool_broken:
            return None
        pool = self._pools.get("process")
        if pool is None:
            try:
                pool = _futures.ProcessPoolExecutor(
                    max_workers=self.config.effective_jobs
                )
            except (OSError, ValueError, NotImplementedError) as exc:
                _log.warning(
                    "process pool unavailable (%s: %s); falling back to threads",
                    type(exc).__name__,
                    exc,
                )
                self._process_pool_broken = True
                return None
            self._pools["process"] = pool
        return pool

    def shutdown(self) -> None:
        """Tear down any pools created by previous :meth:`map` calls."""
        pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.shutdown(wait=True)

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            for pool in self._pools.values():
                pool.shutdown(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _map_serial(self, fn, items: list, label: str) -> list:
        return _apply_chunk(fn, items, self.injector, label)

    def _drain(
        self, pool: _futures.Executor, fn, items: list, chunk: int, label: str
    ) -> list:
        chunks = _chunked(items, chunk)
        futures = [
            pool.submit(_apply_chunk, fn, c, self.injector, label)
            for c in chunks
        ]
        try:
            out: list = []
            for future in futures:  # submission order == input order
                out.extend(future.result())
            return out
        except BaseException:
            # A failed chunk abandons the batch; don't leave siblings
            # running (or queued) against a pool we may be tearing down.
            for future in futures:
                future.cancel()
            raise

    def _demote(self, from_backend: str, to_backend: str, exc) -> None:
        """Record one backend demotion (logging + counters)."""
        self.n_demotions += 1
        tick("backend_demotions")
        _record_crash(from_backend)
        get_metrics().counter(
            "repro_parallel_backend_demotions_total",
            "Batches demoted to a weaker backend after worker failure",
            labels={"from": from_backend, "to": to_backend},
        ).inc()
        _log.warning(
            "%s backend failed (%s: %s); demoting batch to %s and resubmitting",
            from_backend,
            type(exc).__name__,
            exc,
            to_backend,
        )

    def _map_thread(self, fn, items: list, chunk: int, label: str) -> list:
        try:
            return self._drain(self._thread_pool(), fn, items, chunk, label)
        except WorkerCrashError as exc:
            # Crash-class error survived the in-place retries: last-resort
            # serial resubmission, where one more failure is terminal.
            self._demote("thread", "serial", exc)
            return self._map_serial(fn, items, label)

    def _map_cluster(self, fn, items: list, label: str) -> list:
        """Fan the batch out across ``repro worker`` subprocesses.

        Task inputs/outputs cross the boundary through the manifest +
        blob-store codec of :mod:`repro.parallel.cluster` (byte-exact for
        arrays, pickle fallback otherwise).  Infrastructure failures —
        a worker dying or producing truncated output — demote the batch
        to the process backend, mirroring the process→thread demotion.
        The fault injector is not forwarded to cluster workers: chaos
        tests target in-process backends, and a real dead worker already
        exercises this demotion path.
        """
        from repro.parallel import cluster as _cluster

        jobs = min(self.config.effective_jobs, len(items))
        _record_workers("cluster", jobs)
        try:
            return _cluster.dispatch(fn, items, jobs=jobs, label=label)
        except _cluster.ClusterUnavailableError as exc:
            tick("worker_crashes")
            get_metrics().counter(
                "repro_parallel_worker_crashes_total",
                "Process-pool workers detected dead mid-batch",
            ).inc()
            self._demote("cluster", "process", exc)
            chunk = self.config.resolve_chunk_size(
                len(items), self._cost_ewma.get(label)
            )
            return self._map_process(fn, items, chunk, label)

    def _map_process(self, fn, items: list, chunk: int, label: str) -> list:
        pool = self._process_pool()
        if pool is None:
            return self._map_thread(fn, items, chunk, label)
        try:
            return self._drain(pool, fn, items, chunk, label)
        except BrokenProcessPool as exc:
            # A worker died (OOM-kill, segfault, os._exit, ...).  The pool
            # is unusable from here on: tear it down, mark it broken, and
            # resubmit the *entire* batch on the thread backend.
            tick("worker_crashes")
            get_metrics().counter(
                "repro_parallel_worker_crashes_total",
                "Process-pool workers detected dead mid-batch",
            ).inc()
            self._process_pool_broken = True
            broken = self._pools.pop("process", None)
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)
            self._demote("process", "thread", exc)
            return self._map_thread(fn, items, chunk, label)
