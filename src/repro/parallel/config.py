"""Parallel execution configuration.

:class:`ParallelConfig` is the single knob bundle threaded through every
parallelizable subsystem (``ModelRaceConfig.parallel``,
``FeatureExtractor(parallel=...)``, ``ClusterLabeler(parallel=...)``,
``ADarts(parallel=...)``, and the CLI's ``--jobs/--backend`` flags).

Backend semantics
-----------------
``serial``
    Plain in-process loop — byte-identical to the historical code path
    and the reference the determinism tests compare against.
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  Cheap to spin up; wins
    when tasks release the GIL (numpy/scipy kernels) or batches are
    small enough that process startup would dominate.
``process``
    ``concurrent.futures.ProcessPoolExecutor``.  True multi-core
    parallelism for CPU-bound pure-Python work; pays fork/pickle
    overhead, so it is only worth it for large batches.
``cluster``
    Manifest-driven ``repro worker`` subprocesses (see
    :mod:`repro.parallel.cluster`): task inputs are content-addressed to
    a blob store and each worker is a fresh process consuming a JSON
    manifest — the scale-out seam for running batches on machines that
    share only a filesystem.  Never chosen by ``auto``; opt in
    explicitly.
``auto``
    Picks one of serial/thread/process from the workload size at call
    time (see :meth:`ParallelConfig.resolve_backend`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ValidationError

#: Legal backend names.
BACKENDS = ("auto", "serial", "thread", "process", "cluster")

#: ``auto`` falls back to ``serial`` below this many tasks — pool setup
#: would cost more than it saves.
AUTO_SERIAL_MAX_TASKS = 2

#: ``auto`` prefers ``thread`` below this many tasks and ``process`` at or
#: above it (fork + pickle overhead amortizes only over large batches).
AUTO_PROCESS_MIN_TASKS = 16

#: ``auto`` with a known per-task cost stays serial when the whole batch
#: is estimated under this many seconds — thread-pool dispatch overhead
#: alone would eat the win (the <1x "speedups" PR 2's benchmark recorded
#: on tiny labeling/race workloads).
AUTO_MIN_BATCH_SECONDS = 0.05

#: ``auto`` with a known per-task cost requires at least this much total
#: work before paying process fork/pickle overhead.
AUTO_PROCESS_MIN_SECONDS = 0.5

#: Target wall seconds per dispatched chunk when the per-task cost is
#: known — tiny tasks get folded into larger chunks so per-dispatch
#: overhead stays a small fraction of chunk runtime.
TARGET_CHUNK_SECONDS = 0.02


def available_cpus() -> int:
    """Best-effort CPU count (always >= 1)."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ParallelConfig:
    """How a batch of independent tasks should be executed.

    Attributes
    ----------
    n_jobs:
        Worker count.  ``1`` means serial regardless of backend;
        ``0``/negative means "all available CPUs".
    backend:
        One of :data:`BACKENDS`.  ``auto`` selects per-batch by
        workload size.
    chunk_size:
        Tasks per worker dispatch.  ``None`` derives
        ``ceil(n_tasks / (4 * n_jobs))`` so each worker sees ~4 chunks
        (good load balancing without per-task dispatch overhead).
    """

    n_jobs: int = 1
    backend: str = "auto"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    @property
    def effective_jobs(self) -> int:
        """Resolved worker count (``n_jobs <= 0`` → all CPUs)."""
        if self.n_jobs <= 0:
            return available_cpus()
        return self.n_jobs

    def resolve_backend(
        self, n_tasks: int, est_task_seconds: float | None = None
    ) -> str:
        """Concrete backend for a batch of ``n_tasks`` tasks.

        Serial whenever only one worker or a trivial batch; otherwise the
        configured backend, with ``auto`` choosing ``thread`` for small
        batches and ``process`` for large ones.

        ``est_task_seconds`` — an estimated per-task cost (the engine
        probes the first task of an unseen label and keeps a per-label
        EWMA) — refines the ``auto`` decision with a min-batch-cost
        threshold: batches estimated under
        :data:`AUTO_MIN_BATCH_SECONDS` of total work stay serial, and the
        process backend is reserved for at least
        :data:`AUTO_PROCESS_MIN_SECONDS` of work.
        """
        if self.effective_jobs <= 1 or n_tasks < AUTO_SERIAL_MAX_TASKS:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if est_task_seconds is not None:
            total = n_tasks * max(0.0, est_task_seconds)
            if total < AUTO_MIN_BATCH_SECONDS:
                return "serial"
            if total < AUTO_PROCESS_MIN_SECONDS:
                return "thread"
            if n_tasks < AUTO_PROCESS_MIN_TASKS:
                return "thread"
            return "process"
        if n_tasks < AUTO_PROCESS_MIN_TASKS:
            return "thread"
        return "process"

    def resolve_chunk_size(
        self, n_tasks: int, est_task_seconds: float | None = None
    ) -> int:
        """Tasks per dispatched chunk for a batch of ``n_tasks``.

        With a known per-task cost, tiny tasks are folded together until
        each chunk is worth about :data:`TARGET_CHUNK_SECONDS` of work
        (per-dispatch overhead then stays a small fraction of chunk
        runtime); the load-balancing floor of ~4 chunks per worker still
        applies to expensive tasks.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        jobs = self.effective_jobs
        base = max(1, -(-n_tasks // (4 * jobs)))
        if est_task_seconds is not None and est_task_seconds > 0.0:
            by_cost = int(TARGET_CHUNK_SECONDS / est_task_seconds) or 1
            return max(base, min(by_cost, n_tasks))
        return base

    # ------------------------------------------------------------------
    def with_jobs(self, n_jobs: int) -> "ParallelConfig":
        """Copy of this config with a different worker count."""
        return ParallelConfig(
            n_jobs=n_jobs, backend=self.backend, chunk_size=self.chunk_size
        )


#: Shared serial default — the zero-surprise configuration.
SERIAL = ParallelConfig(n_jobs=1, backend="serial")
