"""Parallel execution configuration.

:class:`ParallelConfig` is the single knob bundle threaded through every
parallelizable subsystem (``ModelRaceConfig.parallel``,
``FeatureExtractor(parallel=...)``, ``ClusterLabeler(parallel=...)``,
``ADarts(parallel=...)``, and the CLI's ``--jobs/--backend`` flags).

Backend semantics
-----------------
``serial``
    Plain in-process loop — byte-identical to the historical code path
    and the reference the determinism tests compare against.
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  Cheap to spin up; wins
    when tasks release the GIL (numpy/scipy kernels) or batches are
    small enough that process startup would dominate.
``process``
    ``concurrent.futures.ProcessPoolExecutor``.  True multi-core
    parallelism for CPU-bound pure-Python work; pays fork/pickle
    overhead, so it is only worth it for large batches.
``auto``
    Picks one of the above from the workload size at call time (see
    :meth:`ParallelConfig.resolve_backend`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ValidationError

#: Legal backend names.
BACKENDS = ("auto", "serial", "thread", "process")

#: ``auto`` falls back to ``serial`` below this many tasks — pool setup
#: would cost more than it saves.
AUTO_SERIAL_MAX_TASKS = 2

#: ``auto`` prefers ``thread`` below this many tasks and ``process`` at or
#: above it (fork + pickle overhead amortizes only over large batches).
AUTO_PROCESS_MIN_TASKS = 16


def available_cpus() -> int:
    """Best-effort CPU count (always >= 1)."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ParallelConfig:
    """How a batch of independent tasks should be executed.

    Attributes
    ----------
    n_jobs:
        Worker count.  ``1`` means serial regardless of backend;
        ``0``/negative means "all available CPUs".
    backend:
        One of :data:`BACKENDS`.  ``auto`` selects per-batch by
        workload size.
    chunk_size:
        Tasks per worker dispatch.  ``None`` derives
        ``ceil(n_tasks / (4 * n_jobs))`` so each worker sees ~4 chunks
        (good load balancing without per-task dispatch overhead).
    """

    n_jobs: int = 1
    backend: str = "auto"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1 or None, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    @property
    def effective_jobs(self) -> int:
        """Resolved worker count (``n_jobs <= 0`` → all CPUs)."""
        if self.n_jobs <= 0:
            return available_cpus()
        return self.n_jobs

    def resolve_backend(self, n_tasks: int) -> str:
        """Concrete backend for a batch of ``n_tasks`` tasks.

        Serial whenever only one worker or a trivial batch; otherwise the
        configured backend, with ``auto`` choosing ``thread`` for small
        batches and ``process`` for large ones.
        """
        if self.effective_jobs <= 1 or n_tasks < AUTO_SERIAL_MAX_TASKS:
            return "serial"
        if self.backend != "auto":
            return self.backend
        if n_tasks < AUTO_PROCESS_MIN_TASKS:
            return "thread"
        return "process"

    def resolve_chunk_size(self, n_tasks: int) -> int:
        """Tasks per dispatched chunk for a batch of ``n_tasks``."""
        if self.chunk_size is not None:
            return self.chunk_size
        jobs = self.effective_jobs
        return max(1, -(-n_tasks // (4 * jobs)))

    # ------------------------------------------------------------------
    def with_jobs(self, n_jobs: int) -> "ParallelConfig":
        """Copy of this config with a different worker count."""
        return ParallelConfig(
            n_jobs=n_jobs, backend=self.backend, chunk_size=self.chunk_size
        )


#: Shared serial default — the zero-surprise configuration.
SERIAL = ParallelConfig(n_jobs=1, backend="serial")
