"""repro.parallel — backend-pluggable execution engine and hot-path caches.

The performance substrate of the reproduction:

* :class:`ParallelConfig` — the ``n_jobs`` / ``backend`` / ``chunk_size``
  knob bundle threaded through ``ModelRaceConfig``, ``ADarts``,
  ``ClusterLabeler``, ``FeatureExtractor``, and the CLI;
* :class:`ExecutionEngine` — order-preserving ``map`` over ``serial`` /
  ``thread`` / ``process`` backends (``auto`` selects by workload size),
  instrumented into the process tracer/metrics registry;
* :class:`FeatureCache` — content-hash keyed series→feature-vector cache
  with optional on-disk persistence under ``~/.cache/repro``;
* the ``cluster`` backend — manifest-driven dispatch to ``repro worker``
  subprocesses (:mod:`repro.parallel.cluster`), the fourth
  :class:`ExecutionEngine` backend;
* :class:`ScoreMemo` — per-race memo of (pipeline, fold-content) →
  :class:`~repro.pipeline.scoring.PipelineScore`.

Everything degrades gracefully: with the default configuration
(``n_jobs=1``) every instrumented call site executes the exact
historical serial code path.
"""

from repro.parallel.cache import (
    FeatureCache,
    ScoreMemo,
    default_cache_dir,
    hash_array,
    hash_arrays,
)
from repro.parallel.cluster import (
    BlobStore,
    ClusterUnavailableError,
    dispatch,
    run_manifest,
    write_manifest,
)
from repro.parallel.config import (
    AUTO_MIN_BATCH_SECONDS,
    AUTO_PROCESS_MIN_SECONDS,
    AUTO_PROCESS_MIN_TASKS,
    AUTO_SERIAL_MAX_TASKS,
    BACKENDS,
    TARGET_CHUNK_SECONDS,
    ParallelConfig,
    SERIAL,
    available_cpus,
)
from repro.parallel.executor import (
    ExecutionEngine,
    engine_stats,
    reset_engine_stats,
)
from repro.parallel.shm import (
    SharedArray,
    active_segments,
    attach_cached,
    clear_attach_cache,
    shm_available,
)

__all__ = [
    "AUTO_MIN_BATCH_SECONDS",
    "AUTO_PROCESS_MIN_SECONDS",
    "AUTO_PROCESS_MIN_TASKS",
    "AUTO_SERIAL_MAX_TASKS",
    "BACKENDS",
    "BlobStore",
    "ClusterUnavailableError",
    "TARGET_CHUNK_SECONDS",
    "ExecutionEngine",
    "FeatureCache",
    "ParallelConfig",
    "SERIAL",
    "ScoreMemo",
    "SharedArray",
    "active_segments",
    "attach_cached",
    "available_cpus",
    "clear_attach_cache",
    "default_cache_dir",
    "dispatch",
    "engine_stats",
    "hash_array",
    "hash_arrays",
    "reset_engine_stats",
    "run_manifest",
    "shm_available",
    "write_manifest",
]
