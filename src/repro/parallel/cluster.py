"""Pluggable "cluster" backend: manifest-driven worker processes.

The serial/thread/process backends of
:class:`~repro.parallel.ExecutionEngine` all live inside one Python
process tree.  This module is the seam that lets the same ``map`` batches
fan out across *independent* worker processes — spawned locally today,
remote machines later — without the callers changing:

* a **blob store** keeps every large array input content-addressed on
  disk (``<sha1>.npy``, written atomically), so N fold tasks sharing one
  training matrix ship the matrix once, not N times;
* a **task manifest** is a self-contained JSON document naming the
  function, the items, and the blob root — anything a fresh
  ``repro worker`` process needs to run its slice of the batch;
* the **worker protocol** reuses the JSON-lines codec idiom of
  :mod:`repro.serving.protocol`: one result line per task with an ``id``
  and a ``status`` (200/500), flushed as produced, so a parent (or a
  future remote scheduler) can stream results.

Values cross the boundary through :func:`encode_value` /
:func:`decode_value`: JSON scalars pass through, ndarrays become blob
references (byte-exact — ``.npy`` serialization round-trips bit
patterns), ``functools.partial`` of module-level callables is encoded
structurally so its array keywords are content-addressed too, and
anything else falls back to pickle (base64) — still exact, just not
shareable or human-readable.

Infrastructure failures (worker died, output missing or truncated)
raise :class:`ClusterUnavailableError`; the engine demotes the batch to
the process backend the same way process crashes demote to threads.
Ordinary task exceptions are pickled into the result line and re-raised
in the parent with their original type, matching in-process semantics.
"""

from __future__ import annotations

import base64
import functools
import hashlib
import importlib
import io
import json
import os
import pathlib
import pickle
import subprocess
import sys
import tempfile
import traceback

import numpy as np

from repro.observability import get_logger

_log = get_logger(__name__)

#: Manifest layout version.
MANIFEST_VERSION = 1

#: Result-line status codes (mirrors ``repro.serving.protocol``).
STATUS_OK = 200
STATUS_ERROR = 500

#: Default wall-clock budget for one worker process (seconds).
WORKER_TIMEOUT = float(os.environ.get("REPRO_CLUSTER_TIMEOUT", 600.0))


class ClusterUnavailableError(RuntimeError):
    """The cluster backend infrastructure failed (not a task error).

    Raised when a worker process dies, produces truncated output, or
    cannot be spawned at all.  The engine treats it like a process-pool
    crash: demote the batch and resubmit.
    """


# ---------------------------------------------------------------------------
# Content-addressed blob store
# ---------------------------------------------------------------------------
class BlobStore:
    """Content-addressed ``.npy`` files under one directory.

    ``put_array`` serializes the array, names the file by the sha1 of
    those exact bytes, and writes it atomically (temp file + rename) —
    so concurrent writers of the same content are idempotent and a
    killed writer can't leave a truncated blob behind.  ``get_array``
    memory-maps on demand-sized reads are unnecessary here: task inputs
    are loaded once per worker.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def put_array(self, array: np.ndarray) -> str:
        buf = io.BytesIO()
        np.save(buf, np.ascontiguousarray(array))
        payload = buf.getvalue()
        digest = hashlib.sha1(payload).hexdigest()
        path = self.root / f"{digest}.npy"
        if not path.exists():
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=digest, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return digest

    def get_array(self, digest: str) -> np.ndarray:
        path = self.root / f"{digest}.npy"
        if not path.exists():
            raise ClusterUnavailableError(f"missing blob {digest}")
        return np.load(path, allow_pickle=False)


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------
def _encode_callable(fn) -> dict | None:
    """Structural encoding for module-level callables, else ``None``."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        return None
    try:
        if _resolve_callable(module, qualname) is not fn:
            return None
    except (ImportError, AttributeError):
        return None
    return {"__callable__": [module, qualname]}


def _resolve_callable(module: str, qualname: str):
    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def encode_value(value, store: BlobStore):
    """JSON-encode an arbitrary task value (see module docstring)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            # Object arrays (label vectors) need pickle on load; keep
            # them out of the blob store so workers can always read
            # blobs with ``allow_pickle=False``.
            return {
                "__pickle__": base64.b64encode(pickle.dumps(value)).decode()
            }
        return {"__blob__": store.put_array(value)}
    if isinstance(value, np.generic):
        # Numpy scalars subclass Python numbers; pickle keeps the exact
        # dtype so round-tripped results compare byte-identical.
        return {"__pickle__": base64.b64encode(pickle.dumps(value)).decode()}
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v, store) for v in value]}
    if isinstance(value, list):
        return [encode_value(v, store) for v in value]
    if isinstance(value, dict) and all(isinstance(k, str) for k in value):
        return {"__map__": {k: encode_value(v, store) for k, v in value.items()}}
    if isinstance(value, functools.partial):
        fn = _encode_callable(value.func)
        if fn is not None:
            return {
                "__partial__": {
                    "fn": fn,
                    "args": [encode_value(v, store) for v in value.args],
                    "keywords": {
                        k: encode_value(v, store)
                        for k, v in value.keywords.items()
                    },
                }
            }
    if callable(value):
        fn = _encode_callable(value)
        if fn is not None:
            return fn
    return {"__pickle__": base64.b64encode(pickle.dumps(value)).decode()}


def decode_value(value, store: BlobStore):
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v, store) for v in value]
    if not isinstance(value, dict):
        return value
    if "__blob__" in value:
        return store.get_array(value["__blob__"])
    if "__pickle__" in value:
        return pickle.loads(base64.b64decode(value["__pickle__"]))
    if "__tuple__" in value:
        return tuple(decode_value(v, store) for v in value["__tuple__"])
    if "__map__" in value:
        return {k: decode_value(v, store) for k, v in value["__map__"].items()}
    if "__callable__" in value:
        return _resolve_callable(*value["__callable__"])
    if "__partial__" in value:
        spec = value["__partial__"]
        return functools.partial(
            decode_value(spec["fn"], store),
            *[decode_value(v, store) for v in spec["args"]],
            **{k: decode_value(v, store) for k, v in spec["keywords"].items()},
        )
    raise ClusterUnavailableError(f"unknown manifest value tag: {sorted(value)}")


# ---------------------------------------------------------------------------
# Manifests and the worker loop
# ---------------------------------------------------------------------------
def write_manifest(
    path, fn, items: list, ids: list[int], store: BlobStore, label: str
) -> None:
    """Write one worker's task manifest (atomic)."""
    document = {
        "version": MANIFEST_VERSION,
        "label": label,
        "blob_root": str(store.root),
        "fn": encode_value(fn, store),
        "items": [
            {"id": task_id, "item": encode_value(item, store)}
            for task_id, item in zip(ids, items)
        ],
    }
    path = pathlib.Path(path)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(document))
    tmp.replace(path)


def run_manifest(manifest_path, out_stream) -> int:
    """Execute a manifest; emit one JSON result line per task.

    The worker entry point (``repro worker``).  Each line carries the
    task ``id``, a ``status``, and either the encoded ``result`` or the
    pickled exception — flushed as produced so the parent can stream.
    Returns the number of failed tasks (the worker's exit code).
    """
    manifest = json.loads(pathlib.Path(manifest_path).read_text())
    if manifest.get("version") != MANIFEST_VERSION:
        raise ClusterUnavailableError(
            f"unsupported manifest version {manifest.get('version')!r}"
        )
    store = BlobStore(manifest["blob_root"])
    fn = decode_value(manifest["fn"], store)
    failures = 0
    for entry in manifest["items"]:
        task_id = entry["id"]
        try:
            result = fn(decode_value(entry["item"], store))
            line = {
                "id": task_id,
                "status": STATUS_OK,
                "result": encode_value(result, store),
            }
        except Exception as exc:  # noqa: BLE001 - ferried to the parent
            failures += 1
            try:
                blob = base64.b64encode(pickle.dumps(exc)).decode()
            except Exception:  # noqa: BLE001 - unpicklable exception
                blob = None
            line = {
                "id": task_id,
                "status": STATUS_ERROR,
                "error": repr(exc),
                "exception": blob,
                "traceback": traceback.format_exc(),
            }
        out_stream.write(json.dumps(line) + "\n")
        out_stream.flush()
    return failures


def _worker_env() -> dict:
    """Subprocess environment with ``repro`` importable."""
    import repro

    env = dict(os.environ)
    src_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    return env


def dispatch(
    fn,
    items: list,
    *,
    jobs: int,
    label: str = "parallel.map",
    workdir=None,
    timeout: float | None = None,
) -> list:
    """Fan ``items`` out across ``repro worker`` processes.

    Items are split into up to ``jobs`` contiguous slices, one manifest
    and one worker process per slice; results are reassembled by task id
    into input order.  Any worker-level failure (bad exit, truncated
    output) raises :class:`ClusterUnavailableError` so the engine can
    demote; a task-level exception is re-raised with its original type.
    """
    if not items:
        return []
    jobs = max(1, min(int(jobs), len(items)))
    timeout = WORKER_TIMEOUT if timeout is None else timeout
    own_workdir = workdir is None
    if own_workdir:
        workdir = tempfile.mkdtemp(prefix="repro-cluster-")
    workdir = pathlib.Path(workdir)
    store = BlobStore(workdir / "blobs")
    bounds = np.linspace(0, len(items), jobs + 1).astype(int)
    procs = []
    try:
        for w in range(jobs):
            lo, hi = int(bounds[w]), int(bounds[w + 1])
            if lo == hi:
                continue
            manifest = workdir / f"manifest_{w}.json"
            out_path = workdir / f"results_{w}.jsonl"
            write_manifest(
                manifest, fn, items[lo:hi], list(range(lo, hi)), store, label
            )
            try:
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--manifest",
                        str(manifest),
                        "--out",
                        str(out_path),
                    ],
                    env=_worker_env(),
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.PIPE,
                )
            except OSError as exc:
                raise ClusterUnavailableError(
                    f"cannot spawn cluster worker: {exc}"
                ) from exc
            procs.append((proc, out_path, hi - lo))

        results: dict[int, object] = {}
        for proc, out_path, expected in procs:
            try:
                _, stderr = proc.communicate(timeout=timeout)
            except subprocess.TimeoutExpired as exc:
                proc.kill()
                proc.communicate()
                raise ClusterUnavailableError(
                    f"cluster worker timed out after {timeout}s"
                ) from exc
            lines = []
            if out_path.exists():
                lines = [
                    line
                    for line in out_path.read_text().splitlines()
                    if line.strip()
                ]
            if len(lines) < expected:
                # A complete worker writes one line per task even when
                # tasks fail — fewer lines means the process itself died.
                tail = (stderr or b"").decode(errors="replace")[-2000:]
                raise ClusterUnavailableError(
                    f"cluster worker exited with {proc.returncode} after "
                    f"{len(lines)}/{expected} results: {tail}"
                )
            for line in lines:
                try:
                    entry = json.loads(line)
                except ValueError as exc:
                    raise ClusterUnavailableError(
                        f"corrupt cluster result line: {line[:120]!r}"
                    ) from exc
                if entry.get("status") == STATUS_OK:
                    results[entry["id"]] = decode_value(entry["result"], store)
                else:
                    _raise_task_error(entry)
        missing = [i for i in range(len(items)) if i not in results]
        if missing:
            raise ClusterUnavailableError(
                f"cluster batch is missing task ids {missing[:8]}"
            )
        return [results[i] for i in range(len(items))]
    finally:
        for proc, _, _ in procs:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if own_workdir:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)


def _raise_task_error(entry: dict):
    """Re-raise a worker-side task exception with its original type."""
    blob = entry.get("exception")
    if blob:
        try:
            exc = pickle.loads(base64.b64decode(blob))
        except Exception:  # noqa: BLE001 - fall through to RuntimeError
            exc = None
        if isinstance(exc, BaseException):
            raise exc
    raise RuntimeError(
        f"cluster task {entry.get('id')} failed: {entry.get('error')}\n"
        f"{entry.get('traceback', '')}"
    )
