"""Content-addressed caches for the feature-extraction and race hot paths.

Two caches, both with hit/miss counters on the process metrics registry:

* :class:`FeatureCache` — maps ``sha1(series bytes + extractor
  fingerprint)`` to the extracted feature vector.  Optionally persists
  each vector as an ``.npy`` file under a cache directory (default
  ``~/.cache/repro/features``, overridable via ``REPRO_CACHE_DIR``), so
  repeated runs over the same corpus skip extraction entirely.
* :class:`ScoreMemo` — a per-race memo of ``(pipeline config key, fold
  content hash)`` → :class:`~repro.pipeline.scoring.PipelineScore`.
  Because the key hashes the *content* of the fold's training data, any
  repeat of identical work — nested partial sets that resolve to the
  same fold, or back-to-back races over the same corpus when the memo is
  shared — returns the cached score instead of refitting the pipeline.

Keys are content hashes, never object identities, so cache correctness
is invariant to how the caller arrived at the data.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import sys
import threading

import numpy as np

from repro.observability import get_logger, get_metrics
from repro.observability.resources import get_accounting

_log = get_logger(__name__)


def hash_array(array: np.ndarray) -> str:
    """Stable content hash of a numpy array (dtype/shape aware).

    Numeric arrays hash their raw bytes; object/string arrays (e.g.
    label vectors) hash the string rendering of their elements.
    """
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha1()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    if arr.dtype.kind in "OUS":  # object / unicode / bytes
        digest.update("\x1f".join(str(v) for v in arr.ravel()).encode())
    else:
        digest.update(arr.tobytes())
    return digest.hexdigest()


def hash_arrays(*arrays: np.ndarray, extra: str = "") -> str:
    """Joint content hash of several arrays plus an optional context tag."""
    digest = hashlib.sha1()
    for array in arrays:
        digest.update(hash_array(array).encode())
    if extra:
        digest.update(extra.encode())
    return digest.hexdigest()


def default_cache_dir() -> pathlib.Path:
    """Root of the on-disk cache (``REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return pathlib.Path(root).expanduser()
    return pathlib.Path("~/.cache/repro").expanduser()


class FeatureCache:
    """Thread-safe feature-vector cache, optionally disk-persistent.

    Parameters
    ----------
    directory:
        Where to persist vectors as ``<key>.npy``.  ``None`` keeps the
        cache memory-only; :meth:`persistent` builds one rooted at
        :func:`default_cache_dir`.
    """

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = pathlib.Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._mem: dict[str, np.ndarray] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Live bytes held in ``_mem`` by this instance (accounting).
        self._bytes = 0

    @classmethod
    def persistent(cls) -> "FeatureCache":
        """Disk-backed cache under the default cache directory."""
        return cls(default_cache_dir() / "features")

    # ------------------------------------------------------------------
    @staticmethod
    def key(values: np.ndarray, fingerprint: tuple) -> str:
        """Cache key: content hash of the series plus the extractor config."""
        return hash_arrays(
            np.asarray(values, dtype=float), extra=repr(fingerprint)
        )

    def get(self, key: str) -> np.ndarray | None:
        """Cached vector for ``key`` (a fresh copy), or ``None``."""
        with self._lock:
            vector = self._mem.get(key)
        if vector is None and self.directory is not None:
            path = self.directory / f"{key}.npy"
            if path.exists():
                try:
                    vector = np.load(path)
                except (OSError, ValueError) as exc:  # corrupt entry
                    _log.warning("dropping unreadable cache entry %s: %s", path, exc)
                    vector = None
                else:
                    with self._lock:
                        if key not in self._mem:
                            self._bytes += vector.nbytes
                            get_accounting().account_add(
                                "feature_cache", vector.nbytes
                            )
                        self._mem[key] = vector
        if vector is None:
            self.misses += 1
            get_metrics().counter(
                "repro_feature_cache_misses_total",
                "Feature-cache lookups that required extraction",
            ).inc()
            return None
        self.hits += 1
        get_metrics().counter(
            "repro_feature_cache_hits_total",
            "Feature-cache lookups served without extraction",
        ).inc()
        return vector.copy()

    def put(self, key: str, vector: np.ndarray) -> None:
        """Store ``vector`` under ``key`` (memory, plus disk if configured)."""
        vector = np.asarray(vector, dtype=float).copy()
        with self._lock:
            old = self._mem.get(key)
            self._mem[key] = vector
            delta = vector.nbytes - (old.nbytes if old is not None else 0)
            self._bytes += delta
        if old is None:
            get_accounting().account_add("feature_cache", vector.nbytes)
        elif delta:
            if delta > 0:
                get_accounting().account_add("feature_cache", delta, items=0)
            else:
                get_accounting().account_sub("feature_cache", -delta, items=0)
        if self.directory is not None:
            path = self.directory / f"{key}.npy"
            # fsync-then-rename for atomicity *and* durability: a rename
            # alone leaves a window where a crash (or a killed worker)
            # publishes a name pointing at unflushed data — a truncated
            # entry that poisons every later run sharing the directory.
            # The tmp name keeps the ``.npy`` ending so ``np.save`` does
            # not append another one.
            tmp = path.with_name(f"{key}.tmp.npy")
            try:
                with tmp.open("wb") as fh:
                    np.save(fh, vector)
                    fh.flush()
                    os.fsync(fh.fileno())
                tmp.replace(path)
                try:  # best effort: persist the rename itself
                    dir_fd = os.open(self.directory, os.O_RDONLY)
                    try:
                        os.fsync(dir_fd)
                    finally:
                        os.close(dir_fd)
                except OSError:
                    pass
            except OSError as exc:  # disk full / read-only: stay memory-only
                _log.warning("feature cache write failed for %s: %s", path, exc)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Health-document payload: entries / hits / misses / hit_rate."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "persistent": self.directory is not None,
            "bytes": self._bytes,
        }

    def clear(self, *, disk: bool = False) -> None:
        """Drop in-memory entries; ``disk=True`` also removes persisted files."""
        with self._lock:
            dropped_bytes, dropped_items = self._bytes, len(self._mem)
            self._mem.clear()
            self._bytes = 0
        get_accounting().account_sub(
            "feature_cache", dropped_bytes, items=dropped_items
        )
        self.hits = 0
        self.misses = 0
        if disk and self.directory is not None:
            for path in self.directory.glob("*.npy"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.directory) if self.directory else "memory"
        return (
            f"FeatureCache({where}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class ScoreMemo:
    """Memo of pipeline evaluation outcomes keyed by work content.

    The key is ``(pipeline config key, fold content hash)`` where the
    fold hash covers the training slice, the evaluation context (test
    set, weights, time scale), and nothing else — identical work always
    collides, different work never does.
    """

    def __init__(self):
        self._store: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Estimated live bytes held by this memo (accounting).
        self._bytes = 0

    def get(self, key: tuple):
        """Cached :class:`PipelineScore` for ``key``, or ``None``."""
        with self._lock:
            result = self._store.get(key)
        if result is None:
            self.misses += 1
            get_metrics().counter(
                "repro_race_score_memo_misses_total",
                "Race evaluations that had to be executed",
            ).inc()
            return None
        self.hits += 1
        get_metrics().counter(
            "repro_race_score_memo_hits_total",
            "Race evaluations served from the score memo",
        ).inc()
        return result

    def put(self, key: tuple, score) -> None:
        # Scores are small objects; the shallow size is an estimate, but
        # it keeps the memo's growth visible in the accounts.
        nbytes = sys.getsizeof(score)
        with self._lock:
            fresh = key not in self._store
            self._store[key] = score
            if fresh:
                self._bytes += nbytes
        if fresh:
            get_accounting().account_add("score_memo", nbytes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Health-document payload: entries / hits / misses / hit_rate."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        with self._lock:
            dropped_bytes, dropped_items = self._bytes, len(self._store)
            self._store.clear()
            self._bytes = 0
        if dropped_items:
            get_accounting().account_sub(
                "score_memo", dropped_bytes, items=dropped_items
            )
        self.hits = 0
        self.misses = 0
