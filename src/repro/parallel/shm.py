"""POSIX shared-memory transport for large read-only task arrays.

The process backend of :class:`~repro.parallel.ExecutionEngine` pickles
every task, so mapping a worker over rows of a corpus matrix used to
serialize the *data* once per task.  This module provides the zero-copy
alternative: the parent copies an array once into a
:mod:`multiprocessing.shared_memory` segment, each task's pickle carries
only the tiny ``(name, shape, dtype)`` handle, and workers attach the
segment once per process (see :func:`attach_cached`) and read the rows
in place.

Lifecycle rules:

* the **creator** owns the segment and must :meth:`SharedArray.unlink`
  it (``ExecutionEngine.map(..., shared=...)`` does this when the batch
  finishes — including when a worker crash demotes the batch to the
  thread backend mid-flight);
* **attachers** only :meth:`SharedArray.close`; they never unlink.
  Attaching also unregisters the segment from the attacher's resource
  tracker (CPython registers on attach too, which would otherwise
  produce spurious "leaked shared_memory" noise at worker shutdown);
* :func:`active_segments` lists the names created by this process and
  not yet unlinked, so tests can assert nothing leaked.

On platforms or sandboxes without shared-memory support
(:func:`shm_available` is False) callers fall back to ordinary pickling.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.observability.resources import get_accounting

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic minimal builds
    resource_tracker = None
    shared_memory = None


_REGISTRY_LOCK = threading.Lock()
#: Segment names created (and not yet unlinked) by this process.
_CREATED: set[str] = set()
#: Per-process cache of attached segments, keyed by segment name.
_ATTACHED: dict[str, "SharedArray"] = {}


def shm_available() -> bool:
    """Whether shared-memory segments can be created in this process."""
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=1)
    except (OSError, ValueError, NotImplementedError):
        return False
    probe.close()
    probe.unlink()
    return True


def active_segments() -> tuple[str, ...]:
    """Names of segments created by this process and not yet unlinked."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_CREATED))


class SharedArray:
    """A numpy array backed by a named shared-memory segment.

    Build with :meth:`create` (copies an existing array in, owner side)
    or :meth:`attach` (maps an existing segment by handle, worker side).
    ``array`` is a zero-copy view of the segment; it is invalidated by
    :meth:`close`.
    """

    def __init__(self, shm, array: np.ndarray, *, owner: bool):
        self._shm = shm
        self.array = array
        self.owner = owner
        self._closed = False
        # Snapshot the descriptor: ``handle`` must survive ``close()``
        # (which drops the array view).
        self._handle = (shm.name, array.shape, array.dtype.str)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh segment owned by this process."""
        if shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        source = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, source.nbytes)
        )
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=shm.buf)
        view[...] = source
        with _REGISTRY_LOCK:
            _CREATED.add(shm.name)
        registry = get_accounting()
        registry.account_add("shared_memory", shm.size)
        registry.record_kernel("shm_create", bytes_moved=source.nbytes)
        return cls(shm, view, owner=True)

    @property
    def handle(self) -> tuple:
        """Picklable ``(name, shape, dtype)`` descriptor of the segment."""
        return self._handle

    @classmethod
    def attach(cls, handle: tuple) -> "SharedArray":
        """Map an existing segment by :attr:`handle` (non-owning view)."""
        if shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        name, shape, dtype = handle
        # CPython registers the segment with the resource tracker on
        # attach as well as on create.  Forked pool workers share the
        # parent's tracker, so that extra registration (or undoing it
        # with ``unregister``) unbalances the creator's register/unlink
        # pair and the tracker logs spurious KeyErrors at shutdown.
        # Suppress the attach-side registration instead: only the
        # creator's tracker feels responsible for cleanup.
        with _REGISTRY_LOCK:
            if resource_tracker is not None:
                original_register = resource_tracker.register
                resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                if resource_tracker is not None:
                    resource_tracker.register = original_register
        view = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf
        )
        return cls(shm, view, owner=False)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent)."""
        with _REGISTRY_LOCK:
            was_live = self._shm.name in _CREATED
            _CREATED.discard(self._shm.name)
        if was_live:
            get_accounting().account_sub("shared_memory", self._shm.size)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


def attach_cached(handle: tuple) -> SharedArray:
    """Attach a segment once per process and reuse the mapping.

    Pool workers run many tasks against the same corpus segment; caching
    the attachment keeps the per-task cost at one dict lookup.

    Segment names are recycled by the OS, so a cached mapping is only
    reused when its geometry still matches the incoming handle: a
    same-named segment recreated with a different shape or dtype (a new
    batch after the old segment was unlinked) drops the stale mapping
    and re-attaches instead of serving a view into the wrong memory.
    """
    name = handle[0]
    shape = tuple(handle[1])
    dtype = np.dtype(handle[2]).str
    with _REGISTRY_LOCK:
        seg = _ATTACHED.get(name)
    if seg is not None:
        stale = (
            seg.array is None
            or tuple(seg.handle[1]) != shape
            or np.dtype(seg.handle[2]).str != dtype
        )
        if stale:
            with _REGISTRY_LOCK:
                if _ATTACHED.get(name) is seg:
                    del _ATTACHED[name]
            seg.close()
            seg = None
    if seg is None:
        seg = SharedArray.attach(handle)
        with _REGISTRY_LOCK:
            _ATTACHED[name] = seg
    return seg


#: Per-process cache of attached file memmaps, keyed by mmap handle.
_MMAPPED: dict[tuple, np.ndarray] = {}


def mmap_handle(array) -> tuple | None:
    """Picklable descriptor of a whole-file ``.npy`` memmap, else ``None``.

    Disk-backed :class:`~repro.timeseries.batch.SeriesBank` matrices are
    already files — copying them into a shared-memory segment would
    defeat the out-of-core path, so the process backend ships
    ``("__mmap__", path, dtype, shape, offset)`` and workers re-map the
    file read-only instead.
    """
    import os as _os

    if not isinstance(array, np.memmap):
        return None
    filename = getattr(array, "filename", None)
    if filename is None or not array.flags.c_contiguous:
        return None
    try:
        file_size = _os.path.getsize(filename)
    except OSError:
        return None
    # Only whole-array mappings: slices inherit the parent's offset, so a
    # row block would silently re-map the wrong region.  A full mapping
    # covers the file exactly from its offset to the end.
    if array.size * array.itemsize + int(array.offset) != file_size:
        return None
    return (
        "__mmap__",
        str(filename),
        array.dtype.str,
        tuple(array.shape),
        int(array.offset),
    )


def attach_mmap_cached(handle: tuple) -> np.ndarray:
    """Re-map a :func:`mmap_handle` file once per process and reuse it."""
    key = (handle[1], handle[2], tuple(handle[3]), int(handle[4]))
    with _REGISTRY_LOCK:
        arr = _MMAPPED.get(key)
    if arr is None:
        arr = np.memmap(
            key[0],
            dtype=np.dtype(key[1]),
            mode="r",
            shape=key[2],
            offset=key[3],
        )
        with _REGISTRY_LOCK:
            _MMAPPED[key] = arr
    return arr


def clear_attach_cache() -> None:
    """Close and drop every cached attachment (tests / batch teardown)."""
    with _REGISTRY_LOCK:
        segments = list(_ATTACHED.values())
        _ATTACHED.clear()
        _MMAPPED.clear()
    for seg in segments:
        seg.close()


# ---------------------------------------------------------------------------
# Picklable task wrappers used by ``ExecutionEngine.map(..., shared=...)``.
# ---------------------------------------------------------------------------
def call_with_arrays(fn, arrays: dict, item):
    """Run ``fn(item, **arrays)`` with the arrays bound directly.

    The serial/thread binding: workers share the parent's address space,
    so the arrays are passed as-is with no copies or segments.
    """
    return fn(item, **arrays)


def call_with_handles(fn, handles: dict, item):
    """Run ``fn(item, **arrays)`` with arrays attached from shared memory.

    The process-backend binding: ``handles`` maps keyword names to
    :attr:`SharedArray.handle` tuples — or :func:`mmap_handle`
    descriptors for disk-backed arrays — attached once per worker via
    the per-process caches.
    """
    arrays = {}
    for key, handle in handles.items():
        if handle and handle[0] == "__mmap__":
            arrays[key] = attach_mmap_cached(handle)
        else:
            arrays[key] = attach_cached(handle).array
    return fn(item, **arrays)
