"""Forecasting models: seasonal naive, Holt-Winters, and AR(p).

Kept deliberately standard — the downstream experiment measures how much a
*repair choice* helps a fixed forecaster, so the forecaster itself should be
ordinary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import NotFittedError, RegistryError, ValidationError
from repro.utils.validation import check_1d


def detect_period(x: np.ndarray, max_period: int | None = None) -> int:
    """Dominant period via the autocorrelation peak (>= 2; 1 if aperiodic)."""
    n = x.shape[0]
    max_period = max_period or max(2, n // 3)
    x0 = x - x.mean()
    denom = float(x0 @ x0)
    if denom == 0:
        return 1
    best_lag, best_val = 1, 0.25  # require a material correlation peak
    for lag in range(2, min(max_period, n - 1) + 1):
        val = float(x0[:-lag] @ x0[lag:] / denom)
        if val > best_val:
            best_val, best_lag = val, lag
    return best_lag


class BaseForecaster(ABC):
    """Fit on history, forecast a fixed horizon."""

    name: str = "base"

    def __init__(self) -> None:
        self._history: np.ndarray | None = None

    def fit(self, history) -> "BaseForecaster":
        """Store and learn from the historical values (no NaNs allowed)."""
        x = check_1d(history, name="history", allow_nan=False)
        if x.shape[0] < 4:
            raise ValidationError("history must have at least 4 observations")
        self._history = x
        self._fit(x)
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` future values."""
        if self._history is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        if horizon < 1:
            raise ValidationError(f"horizon must be >= 1, got {horizon}")
        return self._forecast(int(horizon))

    @abstractmethod
    def _fit(self, x: np.ndarray) -> None: ...

    @abstractmethod
    def _forecast(self, horizon: int) -> np.ndarray: ...


class SeasonalNaiveForecaster(BaseForecaster):
    """Repeat the last observed season (period auto-detected if None)."""

    name = "seasonal_naive"

    def __init__(self, period: int | None = None):
        super().__init__()
        if period is not None and period < 1:
            raise ValidationError(f"period must be >= 1, got {period}")
        self.period = period

    def _fit(self, x: np.ndarray) -> None:
        self._period = self.period or detect_period(x)

    def _forecast(self, horizon: int) -> np.ndarray:
        p = min(self._period, self._history.shape[0])
        last_season = self._history[-p:]
        reps = int(np.ceil(horizon / p))
        return np.tile(last_season, reps)[:horizon]


class HoltWintersForecaster(BaseForecaster):
    """Additive Holt-Winters (level + trend + seasonal) exponential smoothing.

    Parameters
    ----------
    period:
        Season length (None = auto-detect).
    alpha, beta, gamma:
        Smoothing parameters for level, trend, season.
    """

    name = "holt_winters"

    def __init__(
        self,
        period: int | None = None,
        alpha: float = 0.3,
        beta: float = 0.05,
        gamma: float = 0.2,
    ):
        super().__init__()
        for pname, v in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0 <= v <= 1:
                raise ValidationError(f"{pname} must be in [0, 1], got {v}")
        self.period = period
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)

    def _fit(self, x: np.ndarray) -> None:
        p = self.period or detect_period(x)
        n = x.shape[0]
        if p < 2 or 2 * p > n:
            p = 1  # degenerate: falls back to Holt's linear trend
        self._period = p
        if p > 1:
            season = np.array(
                [x[i::p][: n // p].mean() for i in range(p)]
            )
            season -= season.mean()
            level = x[:p].mean()
        else:
            season = np.zeros(1)
            level = x[0]
        trend = (x[-1] - x[0]) / max(n - 1, 1)
        seasonal = season.copy()
        for t in range(n):
            s_idx = t % p
            prev_level = level
            level = self.alpha * (x[t] - seasonal[s_idx]) + (1 - self.alpha) * (
                level + trend
            )
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
            seasonal[s_idx] = self.gamma * (x[t] - level) + (
                1 - self.gamma
            ) * seasonal[s_idx]
        self._level, self._trend, self._seasonal = level, trend, seasonal

    def _forecast(self, horizon: int) -> np.ndarray:
        p = self._period
        steps = np.arange(1, horizon + 1)
        seasonal = np.array(
            [self._seasonal[(self._history.shape[0] + h - 1) % p] for h in steps]
        )
        return self._level + steps * self._trend + seasonal


class ARForecaster(BaseForecaster):
    """AR(p) model fit by ridge-regularized least squares.

    Parameters
    ----------
    order:
        Number of lags.
    ridge:
        L2 penalty on the AR coefficients.
    """

    name = "ar"

    def __init__(self, order: int = 8, ridge: float = 1e-3):
        super().__init__()
        if order < 1:
            raise ValidationError(f"order must be >= 1, got {order}")
        self.order = int(order)
        self.ridge = float(ridge)

    def _fit(self, x: np.ndarray) -> None:
        p = min(self.order, x.shape[0] - 1)
        self._p = p
        self._mean = x.mean()
        z = x - self._mean
        rows = np.array([z[i : i + p] for i in range(z.shape[0] - p)])
        targets = z[p:]
        A = rows.T @ rows + self.ridge * np.eye(p)
        self._coef = np.linalg.solve(A, rows.T @ targets)

    def _forecast(self, horizon: int) -> np.ndarray:
        z = (self._history - self._mean).tolist()
        out = []
        for _ in range(horizon):
            window = np.array(z[-self._p :])
            nxt = float(window @ self._coef)
            z.append(nxt)
            out.append(nxt + self._mean)
        return np.asarray(out)


FORECASTER_REGISTRY: dict[str, type[BaseForecaster]] = {
    cls.name: cls
    for cls in (SeasonalNaiveForecaster, HoltWintersForecaster, ARForecaster)
}


def get_forecaster(name: str, **params) -> BaseForecaster:
    """Instantiate a forecaster by registry name."""
    try:
        cls = FORECASTER_REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown forecaster {name!r}; available: {sorted(FORECASTER_REGISTRY)}"
        ) from None
    return cls(**params)
