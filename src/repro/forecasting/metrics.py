"""Forecast accuracy metrics."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def smape(y_true, y_pred) -> float:
    """Symmetric mean absolute percentage error in [0, 2].

    sMAPE = mean( 2 * |y - yhat| / (|y| + |yhat|) ), with the convention
    that terms where both values are zero contribute 0.
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValidationError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} must be equal-length 1-D"
        )
    if y_true.size == 0:
        raise ValidationError("empty forecast arrays")
    denom = np.abs(y_true) + np.abs(y_pred)
    terms = np.where(denom > 0, 2.0 * np.abs(y_true - y_pred) / np.maximum(denom, 1e-12), 0.0)
    return float(terms.mean())


def mase(y_true, y_pred, history, period: int = 1) -> float:
    """Mean absolute scaled error against the seasonal-naive baseline."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    history = np.asarray(history, dtype=float)
    if history.shape[0] <= period:
        raise ValidationError("history too short for the given period")
    scale = np.abs(history[period:] - history[:-period]).mean()
    if scale == 0:
        scale = 1e-12
    return float(np.abs(y_true - y_pred).mean() / scale)
