"""Downstream forecasting experiment harness (Section VII-F, Fig. 12).

Protocol: hide the final 20% of each series (a block "at the tip"), repair
it with the recommended imputation algorithm, fit a forecaster on the
repaired series, and compare a 12-step forecast against the true future.
"with A-DARTS" uses the trained recommendation engine; "without" uses the
static binary-vector recommendation of the ImputeBench study ([32]): each
algorithm carries a score vector over dataset properties, the dataset is
described by a binary property vector, and the best dot product wins.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.forecasting.metrics import smape
from repro.forecasting.models import BaseForecaster, HoltWintersForecaster
from repro.imputation.base import get_imputer
from repro.timeseries.missing import inject_tip_block
from repro.timeseries.series import TimeSeries, TimeSeriesDataset

#: Property axes of the binary recommendation vector ([32]'s decision table).
_PROPERTY_AXES = ("high_correlation", "periodic", "irregular", "trending")

#: Static per-algorithm scores along the property axes — encodes the
#: qualitative guidance of the ImputeBench study.
_ALGORITHM_SCORES: dict[str, tuple[float, float, float, float]] = {
    "cdrec":      (0.9, 0.5, 0.2, 0.5),
    "svdimp":     (0.8, 0.5, 0.2, 0.4),
    "softimpute": (0.7, 0.4, 0.3, 0.4),
    "stmvl":      (0.6, 0.6, 0.4, 0.6),
    "knn":        (0.8, 0.4, 0.3, 0.3),
    "linear":     (0.2, 0.2, 0.5, 0.7),
    "tkcm":       (0.3, 0.9, 0.2, 0.2),
    "iim":        (0.7, 0.3, 0.4, 0.4),
}


class BinaryVectorRecommender:
    """The static recommendation rule of the ImputeBench study.

    Builds a binary dataset-property vector from cheap diagnostics and
    recommends the algorithm with the highest dot product against the
    static score table.  Configuration-free but *data-blind*: every series
    of a dataset gets the same recommendation.
    """

    def __init__(self, algorithm_scores: dict | None = None):
        if algorithm_scores is None:
            algorithm_scores = _ALGORITHM_SCORES
        if not algorithm_scores:
            raise ValidationError("algorithm_scores must be non-empty")
        self.algorithm_scores = dict(algorithm_scores)

    @staticmethod
    def dataset_properties(dataset: TimeSeriesDataset) -> np.ndarray:
        """Binary property vector (high_correlation, periodic, irregular, trending)."""
        from repro.timeseries.batch import SeriesBank
        from repro.features.statistical import trend_features

        sample = list(dataset.series)[: min(8, len(dataset))]
        # One SeriesBank pass (clean + truncate + z-norm once, blockwise
        # GEMM) instead of the O(n²) per-pair correlation loop.
        corr = SeriesBank.from_series(sample).average_correlation()
        per_series = [trend_features(s) for s in sample]
        seasonality = float(
            np.mean([f["trend_seasonality_strength"] for f in per_series])
        )
        entropy = float(np.mean([f["trend_spectral_entropy"] for f in per_series]))
        slope_r2 = float(np.mean([f["trend_r2"] for f in per_series]))
        return np.array(
            [
                1.0 if corr > 0.6 else 0.0,
                1.0 if seasonality > 0.5 else 0.0,
                1.0 if entropy > 0.75 else 0.0,
                1.0 if slope_r2 > 0.3 else 0.0,
            ]
        )

    def recommend(self, dataset: TimeSeriesDataset) -> str:
        """One algorithm name for the whole dataset."""
        props = self.dataset_properties(dataset)
        best_name, best_score = None, -np.inf
        for name, scores in sorted(self.algorithm_scores.items()):
            value = float(np.asarray(scores) @ props)
            if value > best_score:
                best_name, best_score = name, value
        assert best_name is not None
        return best_name


def downstream_forecast_error(
    series: TimeSeries,
    future: np.ndarray,
    imputer_name: str,
    context_matrix: np.ndarray | None = None,
    tip_ratio: float = 0.2,
    horizon: int = 12,
    forecaster: BaseForecaster | None = None,
) -> float:
    """sMAPE of forecasting after repairing a tip block with one algorithm.

    Parameters
    ----------
    series:
        The complete historical series (no NaNs).
    future:
        The true next ``horizon`` values.
    imputer_name:
        Algorithm used to repair the injected tip block.
    context_matrix:
        Optional (n_series, length) matrix of sibling series giving the
        matrix methods cross-series context; the faulty series is appended
        as the final row.
    """
    future = np.asarray(future, dtype=float)
    if future.shape[0] < horizon:
        raise ValidationError(
            f"need {horizon} future values, got {future.shape[0]}"
        )
    faulty, _spec = inject_tip_block(series, ratio=tip_ratio)
    imputer = get_imputer(imputer_name)
    if context_matrix is not None:
        stacked = np.vstack([context_matrix, faulty.values[None, :]])
        repaired_values = imputer.impute(stacked)[-1]
    else:
        repaired_values = imputer.impute(faulty.values[None, :])[0]
    model = forecaster or HoltWintersForecaster()
    model.fit(repaired_values)
    prediction = model.forecast(horizon)
    return smape(future[:horizon], prediction)


def run_downstream_experiment(
    dataset: TimeSeriesDataset,
    recommend_fn,
    horizon: int = 12,
    tip_ratio: float = 0.2,
    forecaster_factory=None,
) -> float:
    """Average sMAPE over a dataset under a per-series recommendation function.

    ``recommend_fn(faulty_series) -> imputer name``.  Each series is split
    into history (all but the last ``horizon`` points) and future; the tip
    block is injected into the history.  Sibling histories provide context.
    """
    matrix = dataset.to_matrix()
    n, length = matrix.shape
    if length <= horizon + 8:
        raise ValidationError("series too short for the downstream protocol")
    histories = matrix[:, : length - horizon]
    futures = matrix[:, length - horizon :]
    errors = []
    for i in range(n):
        history = TimeSeries(histories[i], name=f"{dataset.name}_{i}")
        faulty, _ = inject_tip_block(history, ratio=tip_ratio)
        name = recommend_fn(faulty)
        context = np.delete(histories, i, axis=0)
        factory = forecaster_factory or HoltWintersForecaster
        errors.append(
            downstream_forecast_error(
                history,
                futures[i],
                name,
                context_matrix=context,
                tip_ratio=tip_ratio,
                horizon=horizon,
                forecaster=factory(),
            )
        )
    return float(np.mean(errors))
