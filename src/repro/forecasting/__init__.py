"""Forecasting substrate for the downstream experiment (Section VII-F)."""

from repro.forecasting.models import (
    BaseForecaster,
    SeasonalNaiveForecaster,
    HoltWintersForecaster,
    ARForecaster,
    FORECASTER_REGISTRY,
    get_forecaster,
)
from repro.forecasting.metrics import smape
from repro.forecasting.downstream import (
    BinaryVectorRecommender,
    downstream_forecast_error,
    run_downstream_experiment,
)

__all__ = [
    "BaseForecaster",
    "SeasonalNaiveForecaster",
    "HoltWintersForecaster",
    "ARForecaster",
    "FORECASTER_REGISTRY",
    "get_forecaster",
    "smape",
    "BinaryVectorRecommender",
    "downstream_forecast_error",
    "run_downstream_experiment",
]
