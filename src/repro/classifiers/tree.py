"""CART decision tree (gini/entropy) with vectorized split search.

Shared by :mod:`repro.classifiers.forest` and
:mod:`repro.classifiers.boosting`, so the split machinery lives here.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.exceptions import ValidationError


def _impurity(counts: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity per row of class counts; supports gini and entropy."""
    totals = counts.sum(axis=-1, keepdims=True)
    p = counts / np.maximum(totals, 1e-12)
    if criterion == "gini":
        return 1.0 - (p**2).sum(axis=-1)
    return -(p * np.log2(p + 1e-12)).sum(axis=-1)


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "proba")

    def __init__(self, proba):
        self.feature = -1
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.proba = proba


def best_split(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    criterion: str,
    feature_indices: np.ndarray,
    min_leaf: int,
    rng: np.random.Generator | None = None,
    extra_random: bool = False,
) -> tuple[int, float, float] | None:
    """Find the best (feature, threshold, gain) over the given features.

    ``extra_random`` draws a single random threshold per feature
    (Extra-Trees style) instead of scanning all candidate thresholds.
    Returns None when no split improves impurity.
    """
    n = X.shape[0]
    parent_counts = np.bincount(y, minlength=n_classes).astype(float)
    parent_imp = float(_impurity(parent_counts[None, :], criterion)[0])
    best: tuple[int, float, float] | None = None
    best_gain = 1e-12
    for feat in feature_indices:
        col = X[:, feat]
        if extra_random:
            lo, hi = col.min(), col.max()
            if hi <= lo:
                continue
            assert rng is not None
            thresholds = np.array([rng.uniform(lo, hi)])
            order = None
        else:
            order = np.argsort(col, kind="stable")
            sorted_col = col[order]
            distinct = np.flatnonzero(np.diff(sorted_col) > 0)
            if distinct.size == 0:
                continue
            thresholds = None
        if extra_random:
            for thr in thresholds:
                left_mask = col <= thr
                n_left = int(left_mask.sum())
                if n_left < min_leaf or n - n_left < min_leaf:
                    continue
                left_counts = np.bincount(y[left_mask], minlength=n_classes).astype(
                    float
                )
                right_counts = parent_counts - left_counts
                gain = parent_imp - (
                    n_left / n * float(_impurity(left_counts[None, :], criterion)[0])
                    + (n - n_left)
                    / n
                    * float(_impurity(right_counts[None, :], criterion)[0])
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feat), float(thr), gain)
            continue
        # Exhaustive scan: prefix class counts along the sorted order.
        sorted_y = y[order]
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), sorted_y] = 1.0
        prefix = onehot.cumsum(axis=0)
        # Candidate split after position i (1-indexed sizes).
        sizes_left = distinct + 1
        valid = (sizes_left >= min_leaf) & (n - sizes_left >= min_leaf)
        if not valid.any():
            continue
        cand = distinct[valid]
        left_counts = prefix[cand]
        right_counts = parent_counts[None, :] - left_counts
        n_left = (cand + 1).astype(float)
        n_right = n - n_left
        child_imp = (
            n_left * _impurity(left_counts, criterion)
            + n_right * _impurity(right_counts, criterion)
        ) / n
        gains = parent_imp - child_imp
        j = int(np.argmax(gains))
        if gains[j] > best_gain:
            sorted_col = col[order]
            pos = cand[j]
            thr = 0.5 * (sorted_col[pos] + sorted_col[pos + 1])
            best_gain = float(gains[j])
            best = (int(feat), float(thr), best_gain)
    return best


def build_tree(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    max_depth: int,
    min_split: int,
    min_leaf: int,
    criterion: str,
    max_features: int | None = None,
    rng: np.random.Generator | None = None,
    extra_random: bool = False,
    depth: int = 0,
) -> _Node:
    """Recursively grow a CART tree; returns the root node."""
    counts = np.bincount(y, minlength=n_classes).astype(float)
    node = _Node(counts / max(counts.sum(), 1e-12))
    if (
        depth >= max_depth
        or X.shape[0] < min_split
        or np.unique(y).size == 1
    ):
        return node
    n_features = X.shape[1]
    if max_features is not None and max_features < n_features:
        assert rng is not None
        feature_indices = rng.choice(n_features, size=max_features, replace=False)
    else:
        feature_indices = np.arange(n_features)
    split = best_split(
        X, y, n_classes, criterion, feature_indices, min_leaf,
        rng=rng, extra_random=extra_random,
    )
    if split is None:
        return node
    feat, thr, _ = split
    mask = X[:, feat] <= thr
    node.feature = feat
    node.threshold = thr
    node.left = build_tree(
        X[mask], y[mask], n_classes, max_depth, min_split, min_leaf, criterion,
        max_features, rng, extra_random, depth + 1,
    )
    node.right = build_tree(
        X[~mask], y[~mask], n_classes, max_depth, min_split, min_leaf, criterion,
        max_features, rng, extra_random, depth + 1,
    )
    return node


def tree_predict_proba(node: _Node, X: np.ndarray, n_classes: int) -> np.ndarray:
    """Probability matrix from a grown tree (iterative traversal)."""
    out = np.empty((X.shape[0], n_classes))
    for i, row in enumerate(X):
        cur = node
        while cur.left is not None:
            cur = cur.left if row[cur.feature] <= cur.threshold else cur.right
        out[i] = cur.proba
    return out


@register_classifier
class DecisionTreeClassifier(BaseClassifier):
    """CART decision tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples in each child.
    criterion:
        ``"gini"`` or ``"entropy"``.
    """

    name = "decision_tree"

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
    ):
        super().__init__()
        if max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        if criterion not in ("gini", "entropy"):
            raise ValidationError(f"criterion must be gini/entropy, got {criterion!r}")
        self.max_depth = int(max_depth)
        self.min_samples_split = max(2, int(min_samples_split))
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.criterion = criterion

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._root = build_tree(
            X, y, self.n_classes_,
            self.max_depth, self.min_samples_split, self.min_samples_leaf,
            self.criterion,
        )

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return tree_predict_proba(self._root, X, self.n_classes_)
