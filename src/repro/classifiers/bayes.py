"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.exceptions import ValidationError


@register_classifier
class GaussianNBClassifier(BaseClassifier):
    """Gaussian naive Bayes with variance smoothing.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to all variances
        for numerical stability.
    """

    name = "gaussian_nb"

    def __init__(self, var_smoothing: float = 1e-6):
        super().__init__()
        if var_smoothing < 0:
            raise ValidationError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = float(var_smoothing)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        k = self.n_classes_
        d = X.shape[1]
        self._means = np.zeros((k, d))
        self._vars = np.zeros((k, d))
        self._priors = np.zeros(k)
        for c in range(k):
            members = X[y == c]
            self._means[c] = members.mean(axis=0)
            self._vars[c] = members.var(axis=0)
            self._priors[c] = members.shape[0] / X.shape[0]
        eps = self.var_smoothing * float(X.var(axis=0).max() or 1.0) + 1e-12
        self._vars += eps

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        # Log joint likelihood per class, then softmax.
        log_proba = np.empty((X.shape[0], self.n_classes_))
        for c in range(self.n_classes_):
            diff = X - self._means[c]
            log_like = -0.5 * (
                np.log(2 * np.pi * self._vars[c]) + diff**2 / self._vars[c]
            ).sum(axis=1)
            log_proba[:, c] = np.log(self._priors[c] + 1e-12) + log_like
        log_proba -= log_proba.max(axis=1, keepdims=True)
        proba = np.exp(log_proba)
        return proba / proba.sum(axis=1, keepdims=True)
