"""Multi-layer perceptron classifier (one or two hidden layers, numpy SGD)."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng


@register_classifier
class MLPClassifier(BaseClassifier):
    """Feed-forward network with ReLU hidden layers and softmax output.

    Parameters
    ----------
    hidden:
        Tuple of hidden-layer widths (one or two layers supported).
    lr:
        Learning rate for mini-batch SGD with momentum.
    epochs:
        Training epochs.
    batch_size:
        Mini-batch size.
    l2:
        Weight decay.
    random_state:
        Seed for initialization and shuffling.
    """

    name = "mlp"

    def __init__(
        self,
        hidden: tuple[int, ...] = (32,),
        lr: float = 0.05,
        epochs: int = 120,
        batch_size: int = 32,
        l2: float = 1e-4,
        random_state: int | None = 0,
    ):
        super().__init__()
        hidden = tuple(int(h) for h in hidden)
        if not hidden or len(hidden) > 2 or any(h < 1 for h in hidden):
            raise ValidationError(
                f"hidden must be 1-2 positive layer widths, got {hidden}"
            )
        self.hidden = hidden
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.l2 = float(l2)
        self.random_state = random_state

    def _init_params(self, sizes: list[int], rng: np.random.Generator):
        weights, biases = [], []
        for n_in, n_out in zip(sizes[:-1], sizes[1:]):
            weights.append(rng.normal(0.0, np.sqrt(2.0 / n_in), size=(n_in, n_out)))
            biases.append(np.zeros(n_out))
        return weights, biases

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = ensure_rng(self.random_state)
        n, d = X.shape
        k = self.n_classes_
        # Standardize inputs internally: MLPs are scale-sensitive and the
        # pipeline's scaler choice should tune, not break, training.
        self._mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        sigma[sigma == 0] = 1.0
        self._sigma = sigma
        Z = (X - self._mu) / self._sigma
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        sizes = [d, *self.hidden, k]
        W, b = self._init_params(sizes, rng)
        vel_W = [np.zeros_like(w) for w in W]
        vel_b = [np.zeros_like(v) for v in b]
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                acts = [Z[idx]]
                for layer, (w, bias) in enumerate(zip(W, b)):
                    pre = acts[-1] @ w + bias
                    if layer < len(W) - 1:
                        acts.append(np.maximum(pre, 0.0))
                    else:
                        pre -= pre.max(axis=1, keepdims=True)
                        proba = np.exp(pre)
                        proba /= proba.sum(axis=1, keepdims=True)
                        acts.append(proba)
                delta = (acts[-1] - onehot[idx]) / idx.size
                for layer in range(len(W) - 1, -1, -1):
                    gw = acts[layer].T @ delta + self.l2 * W[layer]
                    gb = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ W[layer].T) * (acts[layer] > 0)
                    vel_W[layer] = 0.9 * vel_W[layer] - self.lr * gw
                    vel_b[layer] = 0.9 * vel_b[layer] - self.lr * gb
                    W[layer] += vel_W[layer]
                    b[layer] += vel_b[layer]
        self._W, self._b = W, b

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        act = (X - self._mu) / self._sigma
        for layer, (w, bias) in enumerate(zip(self._W, self._b)):
            act = act @ w + bias
            if layer < len(self._W) - 1:
                act = np.maximum(act, 0.0)
        act -= act.max(axis=1, keepdims=True)
        proba = np.exp(act)
        return proba / proba.sum(axis=1, keepdims=True)
