"""Bagged tree ensembles: random forest and extremely randomized trees."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.classifiers.tree import build_tree, tree_predict_proba
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng, spawn_rng


class _BaseForest(BaseClassifier):
    """Shared machinery for bootstrap/perturbed tree ensembles."""

    #: Extra-Trees draw random thresholds instead of scanning; forests don't.
    _extra_random = False
    #: Random forests bootstrap rows; Extra-Trees use the full sample.
    _bootstrap = True

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: str | int = "sqrt",
        criterion: str = "gini",
        random_state: int | None = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        if criterion not in ("gini", "entropy"):
            raise ValidationError(f"criterion must be gini/entropy, got {criterion!r}")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = max(1, int(min_samples_leaf))
        self.max_features = max_features
        self.criterion = criterion
        self.random_state = random_state

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        if self.max_features == "all":
            return n_features
        return max(1, min(int(self.max_features), n_features))

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = ensure_rng(self.random_state)
        rngs = spawn_rng(rng, self.n_estimators)
        k = self._resolve_max_features(X.shape[1])
        n = X.shape[0]
        self._trees = []
        for tree_rng in rngs:
            if self._bootstrap:
                idx = tree_rng.integers(0, n, size=n)
                Xb, yb = X[idx], y[idx]
            else:
                Xb, yb = X, y
            self._trees.append(
                build_tree(
                    Xb, yb, self.n_classes_,
                    self.max_depth, 2, self.min_samples_leaf, self.criterion,
                    max_features=k, rng=tree_rng, extra_random=self._extra_random,
                )
            )

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        acc = np.zeros((X.shape[0], self.n_classes_))
        for tree in self._trees:
            acc += tree_predict_proba(tree, X, self.n_classes_)
        return acc / len(self._trees)


@register_classifier
class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated CART forest with feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_leaf, criterion:
        Per-tree growth controls.
    max_features:
        Features considered per split: ``"sqrt"``, ``"log2"``, ``"all"``,
        or an int.
    random_state:
        Seed for bootstraps and feature subsampling.
    """

    name = "random_forest"
    _extra_random = False
    _bootstrap = True


@register_classifier
class ExtraTreesClassifier(_BaseForest):
    """Extremely randomized trees: random thresholds, no bootstrap.

    Same parameters as :class:`RandomForestClassifier`.
    """

    name = "extra_trees"
    _extra_random = True
    _bootstrap = False
