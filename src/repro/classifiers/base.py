"""Classifier base class and registry.

Contract
--------
* ``fit(X, y)`` — ``X`` is (n_samples, n_features) float, ``y`` any hashable
  labels; the base class encodes labels into 0..K-1 and exposes ``classes_``.
* ``predict_proba(X)`` — (n_samples, K) rows summing to 1.
* ``predict(X)`` — argmax of the probabilities, decoded to original labels.
* ``get_params`` / ``clone`` — hyperparameter reflection used by the
  pipeline synthesizer.

Classes seen once at fit time remain predictable: classifiers never emit
labels outside ``classes_``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import NotFittedError, RegistryError, ValidationError
from repro.utils.validation import check_2d


class BaseClassifier(ABC):
    """Abstract multi-class probabilistic classifier."""

    #: Registry key; subclasses must override.
    name: str = "base"

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "BaseClassifier":
        """Fit on features X and labels y; returns self."""
        X = check_2d(X, name="X", allow_nan=False)
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValidationError(f"y must be 1-D, got shape {y.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValidationError(
                f"X has {X.shape[0]} samples but y has {y.shape[0]}"
            )
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self._fit(X, y_enc.astype(int))
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability matrix aligned with ``classes_``."""
        if self.classes_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        X = check_2d(X, name="X", allow_nan=False)
        proba = self._predict_proba(X)
        proba = np.clip(np.nan_to_num(proba, nan=0.0), 0.0, None)
        row_sums = proba.sum(axis=1, keepdims=True)
        uniform = np.full_like(proba, 1.0 / proba.shape[1])
        return np.where(row_sums > 0, proba / np.maximum(row_sums, 1e-12), uniform)

    def predict(self, X) -> np.ndarray:
        """Predicted labels (decoded to the original label space)."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------
    # Reflection
    # ------------------------------------------------------------------
    def get_params(self) -> dict:
        """Constructor hyperparameters (public attributes set in __init__)."""
        return {
            k: v
            for k, v in vars(self).items()
            if not k.startswith("_") and not k.endswith("_")
        }

    def clone(self) -> "BaseClassifier":
        """Fresh unfitted instance with identical hyperparameters."""
        return type(self)(**self.get_params())

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @property
    def n_classes_(self) -> int:
        """Number of classes seen at fit time."""
        if self.classes_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return len(self.classes_)

    @abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Fit on encoded labels y in 0..K-1."""

    @abstractmethod
    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Return raw (possibly unnormalized) non-negative class scores."""


CLASSIFIER_REGISTRY: dict[str, type[BaseClassifier]] = {}


def register_classifier(cls: type[BaseClassifier]) -> type[BaseClassifier]:
    """Class decorator adding a classifier to the registry by name."""
    key = cls.name
    if not key or key == "base":
        raise RegistryError(f"classifier {cls.__name__} must define a unique name")
    if key in CLASSIFIER_REGISTRY and CLASSIFIER_REGISTRY[key] is not cls:
        raise RegistryError(f"classifier name {key!r} already registered")
    CLASSIFIER_REGISTRY[key] = cls
    return cls


def available_classifiers() -> list[str]:
    """Sorted registered classifier names."""
    return sorted(CLASSIFIER_REGISTRY)


def get_classifier(name: str, **params) -> BaseClassifier:
    """Instantiate a registered classifier by name."""
    try:
        cls = CLASSIFIER_REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown classifier {name!r}; available: {available_classifiers()}"
        ) from None
    return cls(**params)
