"""From-scratch classifier zoo (the 12 classifier families of Section VII-B)."""

from repro.classifiers.base import (
    BaseClassifier,
    CLASSIFIER_REGISTRY,
    available_classifiers,
    get_classifier,
    register_classifier,
)
from repro.classifiers.knn import KNNClassifier
from repro.classifiers.tree import DecisionTreeClassifier
from repro.classifiers.forest import RandomForestClassifier, ExtraTreesClassifier
from repro.classifiers.boosting import GradientBoostingClassifier, AdaBoostClassifier
from repro.classifiers.linear import (
    SoftmaxRegressionClassifier,
    RidgeClassifier,
    LinearSVMClassifier,
)
from repro.classifiers.mlp import MLPClassifier
from repro.classifiers.bayes import GaussianNBClassifier
from repro.classifiers.centroid import NearestCentroidClassifier
from repro.classifiers.spaces import (
    CLASSIFIER_PARAM_SPACES,
    default_params,
    param_space,
    sample_params,
)

__all__ = [
    "BaseClassifier",
    "CLASSIFIER_REGISTRY",
    "available_classifiers",
    "get_classifier",
    "register_classifier",
    "KNNClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "ExtraTreesClassifier",
    "GradientBoostingClassifier",
    "AdaBoostClassifier",
    "SoftmaxRegressionClassifier",
    "RidgeClassifier",
    "LinearSVMClassifier",
    "MLPClassifier",
    "GaussianNBClassifier",
    "NearestCentroidClassifier",
    "CLASSIFIER_PARAM_SPACES",
    "default_params",
    "param_space",
    "sample_params",
]
