"""k-nearest-neighbour classifier with distance weighting."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.exceptions import ValidationError


@register_classifier
class KNNClassifier(BaseClassifier):
    """kNN with uniform or inverse-distance vote weighting.

    Parameters
    ----------
    k:
        Number of neighbours.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance vote weights).
    p:
        Minkowski exponent: 1 = Manhattan, 2 = Euclidean.
    """

    name = "knn"

    def __init__(self, k: int = 5, weights: str = "distance", p: int = 2):
        super().__init__()
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if weights not in ("uniform", "distance"):
            raise ValidationError(f"weights must be uniform/distance, got {weights!r}")
        if p not in (1, 2):
            raise ValidationError(f"p must be 1 or 2, got {p}")
        self.k = int(k)
        self.weights = weights
        self.p = int(p)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._X = X
        self._y = y

    def _distances(self, X: np.ndarray) -> np.ndarray:
        if self.p == 2:
            # Squared Euclidean via the expansion trick (monotone in distance).
            d = (
                (X**2).sum(axis=1)[:, None]
                + (self._X**2).sum(axis=1)[None, :]
                - 2.0 * X @ self._X.T
            )
            return np.sqrt(np.maximum(d, 0.0))
        return np.abs(X[:, None, :] - self._X[None, :, :]).sum(axis=2)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        dist = self._distances(X)
        k = min(self.k, self._X.shape[0])
        nn_idx = np.argpartition(dist, k - 1, axis=1)[:, :k]
        proba = np.zeros((X.shape[0], self.n_classes_))
        for i in range(X.shape[0]):
            neighbours = nn_idx[i]
            if self.weights == "distance":
                w = 1.0 / (dist[i, neighbours] + 1e-9)
            else:
                w = np.ones(k)
            np.add.at(proba[i], self._y[neighbours], w)
        return proba
