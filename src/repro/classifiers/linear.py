"""Linear classifiers: softmax regression, ridge, and linear SVM."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.exceptions import ValidationError


def _add_bias(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((X.shape[0], 1))])


@register_classifier
class SoftmaxRegressionClassifier(BaseClassifier):
    """Multinomial logistic regression trained by full-batch gradient descent.

    Parameters
    ----------
    l2:
        Ridge penalty on the weights (bias excluded).
    lr:
        Learning rate.
    max_iter:
        Gradient steps.
    """

    name = "softmax"

    def __init__(self, l2: float = 0.01, lr: float = 0.5, max_iter: int = 200):
        super().__init__()
        if l2 < 0:
            raise ValidationError(f"l2 must be >= 0, got {l2}")
        self.l2 = float(l2)
        self.lr = float(lr)
        self.max_iter = int(max_iter)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        Xb = _add_bias(X)
        n, d = Xb.shape
        k = self.n_classes_
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        W = np.zeros((d, k))
        for _ in range(self.max_iter):
            logits = Xb @ W
            logits -= logits.max(axis=1, keepdims=True)
            proba = np.exp(logits)
            proba /= proba.sum(axis=1, keepdims=True)
            grad = Xb.T @ (proba - onehot) / n
            grad[:-1] += self.l2 * W[:-1]
            W -= self.lr * grad
        self._W = W

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        logits = _add_bias(X) @ self._W
        logits -= logits.max(axis=1, keepdims=True)
        proba = np.exp(logits)
        return proba / proba.sum(axis=1, keepdims=True)


@register_classifier
class RidgeClassifier(BaseClassifier):
    """One-hot ridge regression classifier (closed form).

    Parameters
    ----------
    alpha:
        Ridge penalty.
    """

    name = "ridge"

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        if alpha < 0:
            raise ValidationError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        Xb = _add_bias(X)
        n, d = Xb.shape
        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y] = 1.0
        reg = self.alpha * np.eye(d)
        reg[-1, -1] = 0.0  # don't penalize bias
        self._W = np.linalg.solve(Xb.T @ Xb + reg, Xb.T @ onehot)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = _add_bias(X) @ self._W
        # Regression scores aren't probabilities; softmax them for ranking.
        scores -= scores.max(axis=1, keepdims=True)
        proba = np.exp(scores * 3.0)  # temperature sharpens flat scores
        return proba / proba.sum(axis=1, keepdims=True)


@register_classifier
class LinearSVMClassifier(BaseClassifier):
    """One-vs-rest linear SVM trained by sub-gradient descent on hinge loss.

    Parameters
    ----------
    C:
        Inverse regularization strength.
    lr:
        Learning rate.
    max_iter:
        Sub-gradient steps.
    """

    name = "linear_svm"

    def __init__(self, C: float = 1.0, lr: float = 0.1, max_iter: int = 200):
        super().__init__()
        if C <= 0:
            raise ValidationError(f"C must be > 0, got {C}")
        self.C = float(C)
        self.lr = float(lr)
        self.max_iter = int(max_iter)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        Xb = _add_bias(X)
        n, d = Xb.shape
        k = self.n_classes_
        W = np.zeros((d, k))
        targets = np.where(
            np.arange(k)[None, :] == y[:, None], 1.0, -1.0
        )  # (n, k) in {-1, +1}
        lam = 1.0 / (self.C * n)
        for step in range(self.max_iter):
            lr = self.lr / (1 + 0.01 * step)
            margins = targets * (Xb @ W)
            active = margins < 1.0  # violating samples per class
            grad = np.zeros_like(W)
            for c in range(k):
                rows = active[:, c]
                if rows.any():
                    grad[:, c] = -(targets[rows, c][None, :] @ Xb[rows]).ravel() / n
            grad[:-1] += lam * W[:-1]
            W -= lr * grad
        self._W = W

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = _add_bias(X) @ self._W
        scores -= scores.max(axis=1, keepdims=True)
        proba = np.exp(scores)
        return proba / proba.sum(axis=1, keepdims=True)
