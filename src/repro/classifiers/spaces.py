"""Hyperparameter search spaces for the classifier zoo.

The paper counts "12 classifiers, 1650 possible parameterizations and 60
different feature scaling options, leading to 99,000 possible pipelines".
These discrete grids define the parameterization axis; combined with
:func:`repro.features.scaling.scaler_search_space` they span a search space
of the same order of magnitude.

Each space maps parameter name to the ordered list of candidate values; the
synthesizer mutates one parameter at a time along these lists.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng

CLASSIFIER_PARAM_SPACES: dict[str, dict[str, list]] = {
    "knn": {
        "k": [1, 3, 5, 7, 9, 11, 15, 21],
        "weights": ["uniform", "distance"],
        "p": [1, 2],
    },
    "decision_tree": {
        "max_depth": [2, 4, 6, 8, 12, 16],
        "min_samples_split": [2, 4, 8],
        "min_samples_leaf": [1, 2, 4],
        "criterion": ["gini", "entropy"],
    },
    "random_forest": {
        "n_estimators": [10, 20, 30, 50],
        "max_depth": [4, 8, 12],
        "min_samples_leaf": [1, 2, 4],
        "max_features": ["sqrt", "log2", "all"],
        "criterion": ["gini", "entropy"],
    },
    "extra_trees": {
        "n_estimators": [10, 20, 30, 50],
        "max_depth": [4, 8, 12],
        "min_samples_leaf": [1, 2, 4],
        "max_features": ["sqrt", "log2", "all"],
        "criterion": ["gini", "entropy"],
    },
    "gradient_boosting": {
        "n_estimators": [20, 40, 60],
        "learning_rate": [0.05, 0.1, 0.2, 0.3],
        "max_depth": [2, 3, 4],
        "subsample": [0.7, 1.0],
    },
    "adaboost": {
        "n_estimators": [10, 20, 30, 50],
        "max_depth": [1, 2, 3],
        "learning_rate": [0.5, 1.0],
    },
    "softmax": {
        "l2": [0.0, 0.001, 0.01, 0.1],
        "lr": [0.1, 0.5, 1.0],
        "max_iter": [100, 200, 400],
    },
    "ridge": {
        "alpha": [0.01, 0.1, 0.5, 1.0, 5.0, 10.0],
    },
    "linear_svm": {
        "C": [0.1, 0.5, 1.0, 5.0, 10.0],
        "lr": [0.05, 0.1, 0.2],
        "max_iter": [100, 200],
    },
    "mlp": {
        "hidden": [(16,), (32,), (64,), (32, 16), (64, 32)],
        "lr": [0.01, 0.05, 0.1],
        "epochs": [60, 120],
        "l2": [0.0, 1e-4, 1e-3],
    },
    "gaussian_nb": {
        "var_smoothing": [1e-9, 1e-6, 1e-3, 1e-1],
    },
    "nearest_centroid": {
        "metric": ["euclidean", "manhattan"],
        "shrink": [0.0, 0.1, 0.3, 0.5],
    },
}


def param_space(classifier_name: str) -> dict[str, list]:
    """Return the (copied) parameter grid of one classifier family."""
    try:
        space = CLASSIFIER_PARAM_SPACES[classifier_name]
    except KeyError:
        raise ValidationError(
            f"no parameter space for classifier {classifier_name!r}"
        ) from None
    return {k: list(v) for k, v in space.items()}


def default_params(classifier_name: str) -> dict:
    """Mid-grid default parameterization for one classifier family."""
    space = param_space(classifier_name)
    return {k: v[len(v) // 2] for k, v in space.items()}


def sample_params(classifier_name: str, random_state=None) -> dict:
    """Draw one random parameterization from a classifier's grid."""
    rng = ensure_rng(random_state)
    space = param_space(classifier_name)
    return {k: v[int(rng.integers(0, len(v)))] for k, v in space.items()}


def total_parameterizations() -> int:
    """Total number of distinct parameterizations across all classifiers."""
    total = 0
    for space in CLASSIFIER_PARAM_SPACES.values():
        total += int(np.prod([len(v) for v in space.values()]))
    return total
