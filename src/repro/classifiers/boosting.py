"""Boosted ensembles: gradient boosting (the CatBoost stand-in) and AdaBoost."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.classifiers.tree import build_tree, tree_predict_proba, _Node
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng


class _RegressionStump:
    """Depth-limited regression tree on residuals (for gradient boosting)."""

    def __init__(self, max_depth: int, min_leaf: int):
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._root: dict | None = None

    def fit(self, X: np.ndarray, residual: np.ndarray) -> "_RegressionStump":
        self._root = self._grow(X, residual, 0)
        return self

    def _grow(self, X: np.ndarray, r: np.ndarray, depth: int) -> dict:
        node = {"value": float(r.mean()) if r.size else 0.0}
        if depth >= self.max_depth or X.shape[0] < 2 * self.min_leaf:
            return node
        best_gain, best = 1e-12, None
        total_sum, total_n = r.sum(), r.shape[0]
        parent_sse_gain = (total_sum**2) / total_n
        for feat in range(X.shape[1]):
            order = np.argsort(X[:, feat], kind="stable")
            sorted_x = X[order, feat]
            sorted_r = r[order]
            prefix = np.cumsum(sorted_r)
            distinct = np.flatnonzero(np.diff(sorted_x) > 0)
            if distinct.size == 0:
                continue
            n_left = distinct + 1
            valid = (n_left >= self.min_leaf) & (total_n - n_left >= self.min_leaf)
            if not valid.any():
                continue
            cand = distinct[valid]
            left_sum = prefix[cand]
            n_l = (cand + 1).astype(float)
            n_r = total_n - n_l
            gain = left_sum**2 / n_l + (total_sum - left_sum) ** 2 / n_r - parent_sse_gain
            j = int(np.argmax(gain))
            if gain[j] > best_gain:
                best_gain = float(gain[j])
                pos = cand[j]
                best = (feat, 0.5 * (sorted_x[pos] + sorted_x[pos + 1]))
        if best is None:
            return node
        feat, thr = best
        mask = X[:, feat] <= thr
        node.update(
            feature=feat,
            threshold=thr,
            left=self._grow(X[mask], r[mask], depth + 1),
            right=self._grow(X[~mask], r[~mask], depth + 1),
        )
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while "feature" in node:
                node = (
                    node["left"] if row[node["feature"]] <= node["threshold"]
                    else node["right"]
                )
            out[i] = node["value"]
        return out


@register_classifier
class GradientBoostingClassifier(BaseClassifier):
    """Multi-class gradient boosting with softmax loss (CatBoost stand-in).

    One regression tree per class per round fits the softmax gradient.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of the per-round regression trees.
    subsample:
        Row-sampling fraction per round (stochastic gradient boosting).
    random_state:
        Seed for subsampling.
    """

    name = "gradient_boosting"

    def __init__(
        self,
        n_estimators: int = 40,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        subsample: float = 1.0,
        random_state: int | None = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0 < learning_rate <= 1:
            raise ValidationError(f"learning_rate must be in (0,1], got {learning_rate}")
        if not 0 < subsample <= 1:
            raise ValidationError(f"subsample must be in (0,1], got {subsample}")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.subsample = float(subsample)
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n, k = X.shape[0], self.n_classes_
        rng = ensure_rng(self.random_state)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        scores = np.zeros((n, k))
        self._stages: list[list[_RegressionStump]] = []
        for _ in range(self.n_estimators):
            exp = np.exp(scores - scores.max(axis=1, keepdims=True))
            proba = exp / exp.sum(axis=1, keepdims=True)
            gradient = onehot - proba
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            stage = []
            for c in range(k):
                stump = _RegressionStump(self.max_depth, min_leaf=1)
                stump.fit(X[idx], gradient[idx, c])
                scores[:, c] += self.learning_rate * stump.predict(X)
                stage.append(stump)
            self._stages.append(stage)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = np.zeros((X.shape[0], self.n_classes_))
        for stage in self._stages:
            for c, stump in enumerate(stage):
                scores[:, c] += self.learning_rate * stump.predict(X)
        exp = np.exp(scores - scores.max(axis=1, keepdims=True))
        return exp / exp.sum(axis=1, keepdims=True)


@register_classifier
class AdaBoostClassifier(BaseClassifier):
    """SAMME AdaBoost over shallow CART trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    max_depth:
        Depth of the weak learners.
    learning_rate:
        Shrinkage on the stage weights.
    random_state:
        Seed for weighted resampling.
    """

    name = "adaboost"

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 2,
        learning_rate: float = 1.0,
        random_state: int | None = 0,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValidationError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.learning_rate = float(learning_rate)
        self.random_state = random_state

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n, k = X.shape[0], self.n_classes_
        rng = ensure_rng(self.random_state)
        weights = np.full(n, 1.0 / n)
        self._trees: list[_Node] = []
        self._alphas: list[float] = []
        for _ in range(self.n_estimators):
            # Weighted resampling approximates weighted impurity fitting.
            idx = rng.choice(n, size=n, replace=True, p=weights)
            tree = build_tree(
                X[idx], y[idx], k, self.max_depth, 2, 1, "gini",
            )
            pred = np.argmax(tree_predict_proba(tree, X, k), axis=1)
            err = float(weights[pred != y].sum())
            if err >= 1.0 - 1.0 / k:
                continue  # worse than chance; skip stage
            err = max(err, 1e-10)
            alpha = self.learning_rate * (np.log((1 - err) / err) + np.log(k - 1))
            weights *= np.exp(alpha * (pred != y))
            weights /= weights.sum()
            self._trees.append(tree)
            self._alphas.append(alpha)
        if not self._trees:
            # Degenerate input: keep one unweighted tree as fallback.
            self._trees.append(build_tree(X, y, k, self.max_depth, 2, 1, "gini"))
            self._alphas.append(1.0)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = np.zeros((X.shape[0], self.n_classes_))
        for alpha, tree in zip(self._alphas, self._trees):
            pred = np.argmax(tree_predict_proba(tree, X, self.n_classes_), axis=1)
            scores[np.arange(X.shape[0]), pred] += alpha
        exp = np.exp(scores - scores.max(axis=1, keepdims=True))
        return exp / exp.sum(axis=1, keepdims=True)
