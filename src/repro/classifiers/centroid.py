"""Nearest-centroid classifier with optional shrinkage."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BaseClassifier, register_classifier
from repro.exceptions import ValidationError


@register_classifier
class NearestCentroidClassifier(BaseClassifier):
    """Classify by distance to class centroids.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or ``"manhattan"`` (centroid becomes the median).
    shrink:
        Shrink centroids toward the global mean by this fraction —
        a light regularizer for small classes.
    """

    name = "nearest_centroid"

    def __init__(self, metric: str = "euclidean", shrink: float = 0.0):
        super().__init__()
        if metric not in ("euclidean", "manhattan"):
            raise ValidationError(
                f"metric must be euclidean/manhattan, got {metric!r}"
            )
        if not 0.0 <= shrink < 1.0:
            raise ValidationError(f"shrink must be in [0, 1), got {shrink}")
        self.metric = metric
        self.shrink = float(shrink)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        k = self.n_classes_
        center = np.median if self.metric == "manhattan" else np.mean
        global_center = center(X, axis=0)
        self._centroids = np.empty((k, X.shape[1]))
        for c in range(k):
            members = X[y == c]
            centroid = center(members, axis=0)
            self._centroids[c] = (
                (1 - self.shrink) * centroid + self.shrink * global_center
            )

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            dist = np.sqrt(
                np.maximum(
                    ((X[:, None, :] - self._centroids[None, :, :]) ** 2).sum(axis=2),
                    0.0,
                )
            )
        else:
            dist = np.abs(X[:, None, :] - self._centroids[None, :, :]).sum(axis=2)
        # Convert distances to soft scores.
        return 1.0 / (dist + 1e-9)
