"""repro — reproduction of A-DARTS (ICDE 2025).

A-DARTS automatically selects the best missing-value imputation algorithm
for a faulty time series.  The public API surface:

* :class:`~repro.core.ADarts` — the recommendation engine facade;
* :mod:`repro.imputation` — 16 imputation algorithms with a registry;
* :mod:`repro.features` — statistical + topological feature extraction;
* :mod:`repro.classifiers` — the 12-family classifier zoo;
* :mod:`repro.core.modelrace` — the racing pipeline selector;
* :mod:`repro.clustering` — incremental labeling clustering and K-Shape;
* :mod:`repro.baselines` — FLAML/Tune/AutoFolio/RAHA-style comparators;
* :mod:`repro.forecasting` — downstream forecasting substrate.
"""

from repro.core import ADarts, ModelRace, ModelRaceConfig, Recommendation
from repro.parallel import ExecutionEngine, FeatureCache, ParallelConfig
from repro.timeseries import TimeSeries, TimeSeriesDataset

__version__ = "1.0.0"

__all__ = [
    "ADarts",
    "ExecutionEngine",
    "FeatureCache",
    "ModelRace",
    "ModelRaceConfig",
    "ParallelConfig",
    "Recommendation",
    "TimeSeries",
    "TimeSeriesDataset",
    "__version__",
]
