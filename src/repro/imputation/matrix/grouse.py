"""GROUSE: Grassmannian rank-one update subspace estimation (Balzano et al.).

GROUSE tracks a low-dimensional subspace from incomplete column vectors,
performing one gradient step on the Grassmann manifold per column.  We treat
each *time step* of the series matrix as an incomplete vector over the
series dimension, stream the columns (several passes), and reconstruct
missing coordinates from the learned subspace.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    interpolate_rows_block,
    register_imputer,
)
from repro.utils.rng import ensure_rng


@register_imputer
class GROUSEImputer(BaseImputer):
    """Streaming subspace-tracking imputation.

    Parameters
    ----------
    rank:
        Subspace dimension (None = auto: ~n/3 of the series count).
    n_passes:
        Number of sweeps over all columns.
    step:
        Gradient step size on the Grassmannian.
    random_state:
        Seed for subspace initialization.
    """

    name = "grouse"

    def __init__(
        self,
        rank: int | None = None,
        n_passes: int = 3,
        step: float = 0.2,
        random_state: int | None = 0,
    ):
        if rank is not None and rank < 1:
            raise ValidationError(f"rank must be >= 1, got {rank}")
        if n_passes < 1:
            raise ValidationError(f"n_passes must be >= 1, got {n_passes}")
        self.rank = rank
        self.n_passes = int(n_passes)
        self.step = float(step)
        self.random_state = random_state

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        n_series, length = X.shape
        if n_series < 2:
            return interpolate_rows(X)
        rng = ensure_rng(self.random_state)
        observed = ~mask
        # Standardize rows on observed values: subspace tracking assumes
        # centered, comparable-scale coordinates.
        row_mean = np.zeros((n_series, 1))
        row_std = np.ones((n_series, 1))
        for i in range(n_series):
            obs = X[i, observed[i]]
            if obs.size:
                row_mean[i] = obs.mean()
                std = obs.std()
                row_std[i] = std if std > 0 else 1.0
        X = (X - row_mean) / row_std
        # Warm-start the subspace from the SVD of an interpolated fill
        # rather than a random basis: far fewer passes to converge.  When
        # rank is unset, pick the smallest dimension explaining 90% of the
        # warm fill's energy — oversized subspaces extrapolate noise.
        warm = interpolate_rows(X)
        U_full, s_full, _ = np.linalg.svd(warm, full_matrices=False)
        if self.rank is not None:
            rank = min(self.rank, n_series)
        else:
            energy = np.cumsum(s_full**2) / max(float((s_full**2).sum()), 1e-12)
            rank = int(np.searchsorted(energy, 0.9) + 1)
            rank = min(max(1, rank), n_series)
        U = U_full[:, :rank]
        if U.shape[1] < rank:
            extra, _ = np.linalg.qr(rng.normal(size=(n_series, rank - U.shape[1])))
            U = np.hstack([U, extra])
        for sweep in range(self.n_passes):
            eta = self.step / (1 + sweep)  # decaying step per pass
            for t in range(length):
                omega = observed[:, t]
                if omega.sum() <= rank:
                    continue  # not enough observations to update safely
                v = X[omega, t]
                U_omega = U[omega]
                # Least-squares weights of the observed part in the subspace.
                w, *_ = np.linalg.lstsq(U_omega, v, rcond=None)
                p = U @ w  # current prediction (full vector)
                r = np.zeros(n_series)
                r[omega] = v - p[omega]  # residual on observed coords
                r_norm = np.linalg.norm(r)
                p_norm = np.linalg.norm(p)
                w_norm = np.linalg.norm(w)
                if r_norm < 1e-12 or p_norm < 1e-12 or w_norm < 1e-12:
                    continue
                # Grassmannian geodesic step (rank-one update).  The greedy
                # step angle atan(||r||/||p||) is bounded, so a warm-started
                # subspace is refined rather than destroyed.
                angle = eta * np.arctan(r_norm / p_norm)
                U = U + (
                    (np.cos(angle) - 1.0) * np.outer(p / p_norm, w / w_norm)
                    + np.sin(angle) * np.outer(r / r_norm, w / w_norm)
                )
                # Re-orthonormalize occasionally for numerical hygiene.
                if t % 64 == 0:
                    U, _ = np.linalg.qr(U)
        U, _ = np.linalg.qr(U)
        # Final reconstruction of missing coordinates per column.  Ridge
        # regularization keeps overparameterized subspaces (rank above the
        # data's true rank) from extrapolating noise into the gap.
        out = X.copy()
        fallback = interpolate_rows(X)
        eye_r = np.eye(U.shape[1])
        for t in range(length):
            miss = mask[:, t]
            if not miss.any():
                continue
            omega = ~miss
            if omega.sum() <= rank:
                out[miss, t] = fallback[miss, t]
                continue
            U_omega = U[omega]
            w = np.linalg.solve(
                U_omega.T @ U_omega + 0.1 * eye_r, U_omega.T @ X[omega, t]
            )
            pred = U @ w
            out[miss, t] = pred[miss]
        # Undo the row standardization.
        return out * row_std + row_mean

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        # Single-series problems hit the scalar n_series < 2 shortcut
        # (plain interpolation), which vectorizes across the stack; true
        # multi-series subspace tracking stays sequential per problem.
        if X3.shape[1] < 2:
            return interpolate_rows_block(X3, mask3)
        return super()._impute_block(X3, mask3)
