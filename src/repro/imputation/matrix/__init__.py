"""Matrix-completion style imputers (low-rank recovery)."""

from repro.imputation.matrix.cdrec import CDRecImputer
from repro.imputation.matrix.svdimp import SVDImputer
from repro.imputation.matrix.softimpute import SoftImputer
from repro.imputation.matrix.svt import SVTImputer
from repro.imputation.matrix.rosl import ROSLImputer
from repro.imputation.matrix.grouse import GROUSEImputer

__all__ = [
    "CDRecImputer",
    "SVDImputer",
    "SoftImputer",
    "SVTImputer",
    "ROSLImputer",
    "GROUSEImputer",
]
