"""ROSL: robust orthonormal subspace learning (Shu, Porikli, Ahuja).

ROSL decomposes the data as ``X = D*alpha + E`` with an orthonormal subspace
``D``, group-sparse coefficients ``alpha``, and a sparse error term ``E``
that absorbs outliers.  The robustness to sparse corruption is why it shines
on anomaly-laden datasets (e.g. Water).  We implement a compact alternating
scheme: low-rank fit via truncated SVD, sparse residual via soft
thresholding, iterated on the filled matrix.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    interpolate_rows_block,
    register_imputer,
)
from repro.imputation.matrix._kernels import (
    ActiveStack,
    reconstruct_truncated,
    svd_block,
)


def _soft(arr: np.ndarray, threshold: float) -> np.ndarray:
    return np.sign(arr) * np.maximum(np.abs(arr) - threshold, 0.0)


@register_imputer
class ROSLImputer(BaseImputer):
    """Robust low-rank + sparse imputation.

    Parameters
    ----------
    rank:
        Subspace dimension (None = auto: ~n/3).
    sparsity:
        Sparse-term threshold as a fraction of the residual's robust scale;
        larger values treat more structure as outliers.
    max_iter:
        Alternating iterations.
    tol:
        Relative-change convergence tolerance on imputed entries.
    """

    name = "rosl"

    def __init__(
        self,
        rank: int | None = None,
        sparsity: float = 2.5,
        max_iter: int = 50,
        tol: float = 1e-4,
    ):
        if rank is not None and rank < 1:
            raise ValidationError(f"rank must be >= 1, got {rank}")
        if sparsity <= 0:
            raise ValidationError(f"sparsity must be > 0, got {sparsity}")
        self.rank = rank
        self.sparsity = float(sparsity)
        self.max_iter = int(max_iter)
        self.tol = float(tol)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        current = interpolate_rows(X)
        n = X.shape[0]
        rank = self.rank if self.rank is not None else max(1, n // 3)
        rank = min(rank, min(current.shape))
        E = np.zeros_like(current)
        prev = current[mask]
        for _ in range(self.max_iter):
            # Subspace step on the outlier-cleaned matrix.
            U, s, Vt = np.linalg.svd(current - E, full_matrices=False)
            low_rank = (U[:, :rank] * s[:rank]) @ Vt[:rank]
            # Sparse step: residual entries beyond a robust scale are outliers.
            residual = current - low_rank
            scale = np.median(np.abs(residual - np.median(residual))) + 1e-12
            E = _soft(residual, self.sparsity * scale)
            # Missing entries take the *clean* low-rank value: outliers do
            # not propagate into the gap.
            current[mask] = low_rank[mask]
            new = current[mask]
            denom = np.linalg.norm(prev) + 1e-12
            if np.linalg.norm(new - prev) / denom < self.tol:
                break
            prev = new
        return current

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        B, n, L = X3.shape
        cur3 = interpolate_rows_block(X3, mask3)
        rank = self.rank if self.rank is not None else max(1, n // 3)
        rank = min(rank, min(n, L))
        E = np.zeros_like(cur3)
        state = ActiveStack(cur3, mask3, self.tol)
        for it in range(1, self.max_iter + 1):
            if not state.alive:
                break
            U, s, Vt = svd_block(state.cur - E)
            low_rank = reconstruct_truncated(U, s, Vt, rank)
            residual = state.cur - low_rank
            flat = residual.reshape(residual.shape[0], -1)
            med = np.median(flat, axis=1)
            scale = (
                np.median(np.abs(flat - med[:, None]), axis=1) + 1e-12
            )
            E = np.sign(residual) * np.maximum(
                np.abs(residual) - (self.sparsity * scale)[:, None, None], 0.0
            )
            (E,) = state.advance(
                np.where(state.mask, low_rank, state.cur), it, (E,)
            )
        return state.finalize()
