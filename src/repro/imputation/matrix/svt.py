"""SVT: singular value thresholding for matrix completion (Cai, Candès, Shen).

SVT runs a Uzawa-style iteration on the dual variable ``Y``:

    X_k = shrink(Y_{k-1}, tau)          (soft-threshold the SVD)
    Y_k = Y_{k-1} + delta * P_Omega(M - X_k)

where ``P_Omega`` projects onto the observed entries.  We follow the paper's
recommended defaults: ``tau ~ 5 * sqrt(n*m)`` and step ``delta ~ 1.2 / p``
with ``p`` the observed fraction.
"""

from __future__ import annotations

import numpy as np

from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    interpolate_rows_block,
    register_imputer,
)
from repro.imputation.matrix._kernels import (
    masked_norms,
    reconstruct_shrunk,
    svd_block,
)


@register_imputer
class SVTImputer(BaseImputer):
    """Singular value thresholding.

    Parameters
    ----------
    tau:
        Threshold; None uses ``tau_scale * sqrt(n * m)``.
    tau_scale:
        Multiplier for the automatic tau.
    max_iter:
        Maximum Uzawa iterations.
    tol:
        Relative residual tolerance on observed entries.
    """

    name = "svt"

    def __init__(
        self,
        tau: float | None = None,
        tau_scale: float = 5.0,
        max_iter: int = 120,
        tol: float = 1e-4,
    ):
        self.tau = tau
        self.tau_scale = float(tau_scale)
        self.max_iter = int(max_iter)
        self.tol = float(tol)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        observed = ~mask
        M = np.where(observed, X, 0.0)
        n, m = X.shape
        tau = self.tau if self.tau is not None else self.tau_scale * np.sqrt(n * m)
        p = observed.mean()
        delta = 1.2 / max(p, 1e-6)
        norm_M = np.linalg.norm(M[observed]) + 1e-12
        Y = np.zeros_like(M)
        best = interpolate_rows(X)
        for _ in range(self.max_iter):
            U, s, Vt = np.linalg.svd(Y, full_matrices=False)
            s_shrunk = np.maximum(s - tau, 0.0)
            Xk = (U * s_shrunk) @ Vt
            residual = np.where(observed, M - Xk, 0.0)
            rel = np.linalg.norm(residual[observed]) / norm_M
            best = Xk
            if rel < self.tol:
                break
            Y = Y + delta * residual
        out = X.copy()
        # If SVT collapsed to zero rank (threshold too high for the data),
        # fall back to interpolation rather than filling zeros.
        if not np.any(best):
            return interpolate_rows(X)
        out[mask] = best[mask]
        return out

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        B, n, m = X3.shape
        obs3 = ~mask3
        M3 = np.where(obs3, X3, 0.0)
        tau = self.tau if self.tau is not None else self.tau_scale * np.sqrt(n * m)
        p = obs3.mean(axis=(1, 2))
        delta = 1.2 / np.maximum(p, 1e-6)
        # M3 is already zero at unobserved cells, so the full-matrix norm
        # equals the scalar path's observed-entry extraction norm.
        norm_M = masked_norms(M3) + 1e-12
        best3 = interpolate_rows_block(X3, mask3)
        # Compacted active-problem state: converged problems are dropped
        # from the working arrays; their best iterate is already in best3.
        idx = np.arange(B)
        Y = np.zeros_like(M3)
        M_act, obs_act, norm_act, delta_act = M3, obs3, norm_M, delta
        for _ in range(self.max_iter):
            if idx.size == 0:
                break
            U, s, Vt = svd_block(Y)
            s_shrunk = np.maximum(s - tau, 0.0)
            Xk = reconstruct_shrunk(U, s_shrunk, Vt)
            residual = np.where(obs_act, M_act - Xk, 0.0)
            rel = masked_norms(residual) / norm_act
            best3[idx] = Xk
            conv = rel < self.tol
            if conv.any():
                keep = ~conv
                Y = (Y + delta_act[:, None, None] * residual)[keep]
                idx = idx[keep]
                M_act, obs_act = M_act[keep], obs_act[keep]
                norm_act, delta_act = norm_act[keep], delta_act[keep]
            else:
                Y = Y + delta_act[:, None, None] * residual
        out3 = X3.copy()
        for b in range(B):
            if not np.any(best3[b]):
                out3[b] = interpolate_rows(X3[b])
            else:
                out3[b][mask3[b]] = best3[b][mask3[b]]
        return out3
