"""SoftImpute: spectral regularization via soft-thresholded SVD (Mazumder et al.).

Each iteration replaces the missing entries with the current low-rank
estimate, computes an SVD, and *soft-thresholds* the singular values by
``lam`` (the nuclear-norm proximal operator).  Unlike hard-truncated SVD,
the effective rank adapts to the data.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    interpolate_rows_block,
    register_imputer,
)
from repro.imputation.matrix._kernels import (
    ActiveStack,
    reconstruct_shrunk,
    svd_block,
    svdvals_block,
)


@register_imputer
class SoftImputer(BaseImputer):
    """Soft-thresholded SVD imputation.

    Parameters
    ----------
    lam:
        Shrinkage applied to singular values, as a *fraction of the largest
        singular value* of the initial fill (keeps the scale data-free).
    max_iter:
        Maximum iterations.
    tol:
        Relative-change convergence threshold on imputed entries.
    """

    name = "softimpute"

    def __init__(self, lam: float = 0.1, max_iter: int = 80, tol: float = 1e-5):
        if lam < 0:
            raise ValidationError(f"lam must be >= 0, got {lam}")
        self.lam = float(lam)
        self.max_iter = int(max_iter)
        self.tol = float(tol)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        current = interpolate_rows(X)
        s0 = np.linalg.svd(current, compute_uv=False)
        threshold = self.lam * (s0[0] if s0.size else 1.0)
        prev = current[mask]
        for _ in range(self.max_iter):
            U, s, Vt = np.linalg.svd(current, full_matrices=False)
            s_shrunk = np.maximum(s - threshold, 0.0)
            approx = (U * s_shrunk) @ Vt
            current[mask] = approx[mask]
            new = current[mask]
            denom = np.linalg.norm(prev) + 1e-12
            if np.linalg.norm(new - prev) / denom < self.tol:
                break
            prev = new
        return current

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        cur3 = interpolate_rows_block(X3, mask3)
        # Per-problem threshold from each problem's own initial spectrum,
        # exactly as the scalar path derives it.
        s0 = svdvals_block(cur3)
        thresholds = self.lam * (
            s0[:, 0] if s0.shape[1] else np.ones(cur3.shape[0])
        )
        state = ActiveStack(cur3, mask3, self.tol)
        thr = thresholds
        for it in range(1, self.max_iter + 1):
            if not state.alive:
                break
            U, s, Vt = svd_block(state.cur)
            s_shrunk = np.maximum(s - thr[:, None], 0.0)
            approx = reconstruct_shrunk(U, s_shrunk, Vt)
            (thr,) = state.advance(
                np.where(state.mask, approx, state.cur), it, (thr,)
            )
        return state.finalize()
