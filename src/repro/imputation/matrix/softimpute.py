"""SoftImpute: spectral regularization via soft-thresholded SVD (Mazumder et al.).

Each iteration replaces the missing entries with the current low-rank
estimate, computes an SVD, and *soft-thresholds* the singular values by
``lam`` (the nuclear-norm proximal operator).  Unlike hard-truncated SVD,
the effective rank adapts to the data.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer


@register_imputer
class SoftImputer(BaseImputer):
    """Soft-thresholded SVD imputation.

    Parameters
    ----------
    lam:
        Shrinkage applied to singular values, as a *fraction of the largest
        singular value* of the initial fill (keeps the scale data-free).
    max_iter:
        Maximum iterations.
    tol:
        Relative-change convergence threshold on imputed entries.
    """

    name = "softimpute"

    def __init__(self, lam: float = 0.1, max_iter: int = 80, tol: float = 1e-5):
        if lam < 0:
            raise ValidationError(f"lam must be >= 0, got {lam}")
        self.lam = float(lam)
        self.max_iter = int(max_iter)
        self.tol = float(tol)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        current = interpolate_rows(X)
        s0 = np.linalg.svd(current, compute_uv=False)
        threshold = self.lam * (s0[0] if s0.size else 1.0)
        prev = current[mask]
        for _ in range(self.max_iter):
            U, s, Vt = np.linalg.svd(current, full_matrices=False)
            s_shrunk = np.maximum(s - threshold, 0.0)
            approx = (U * s_shrunk) @ Vt
            current[mask] = approx[mask]
            new = current[mask]
            denom = np.linalg.norm(prev) + 1e-12
            if np.linalg.norm(new - prev) / denom < self.tol:
                break
            prev = new
        return current
