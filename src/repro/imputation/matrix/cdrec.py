"""CDRec: centroid-decomposition based recovery (Khayati et al.).

CDRec recovers missing blocks by iterating a truncated *centroid
decomposition* (CD) of the series matrix.  CD approximates SVD using sign
vectors: each step finds a sign vector ``z`` maximizing ``||X^T z||`` (via the
scalable sign-vector search), extracts a centroid (loading) pair, deflates,
and repeats.  Reconstruction from the first ``k`` centroid pairs replaces the
missing values; the loop stops when the imputed entries converge.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    interpolate_rows_block,
    register_imputer,
)
from repro.imputation.matrix._kernels import ActiveStack


def _sign_vector(X: np.ndarray, max_passes: int = 100) -> np.ndarray:
    """Find a local-optimum sign vector z in {-1, 1}^n maximizing ||X^T z||.

    Greedy single-flip ascent (the "SSV" strategy): flip any coordinate whose
    flip increases the objective until no improvement remains.
    """
    n = X.shape[0]
    z = np.ones(n)
    v = X.T @ z  # current projection, kept incrementally updated
    for _ in range(max_passes):
        # Gain of flipping coordinate i: changes v by -2 z_i X[i].
        improved = False
        for i in range(n):
            delta = v - 2.0 * z[i] * X[i]
            if delta @ delta > v @ v + 1e-12:
                v = delta
                z[i] = -z[i]
                improved = True
        if not improved:
            break
    return z


def centroid_decomposition(
    X: np.ndarray, k: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Truncated centroid decomposition X ~= L R^T.

    Returns loading matrix ``L`` of shape (n, k) and relevance matrix ``R``
    of shape (m, k) such that ``L @ R.T`` approximates ``X``.
    """
    X = np.asarray(X, dtype=float)
    n, m = X.shape
    rank = min(n, m) if k is None else min(k, n, m)
    residual = X.copy()
    L = np.zeros((n, rank))
    R = np.zeros((m, rank))
    for j in range(rank):
        z = _sign_vector(residual)
        c = residual.T @ z
        norm = np.linalg.norm(c)
        if norm < 1e-12:
            break
        r = c / norm
        l = residual @ r
        L[:, j] = l
        R[:, j] = r
        residual = residual - np.outer(l, r)
    return L, R


@register_imputer
class CDRecImputer(BaseImputer):
    """Iterative centroid-decomposition recovery.

    Parameters
    ----------
    rank:
        Truncation rank ``k`` of the decomposition (None = auto: ~n/3).
    max_iter:
        Maximum refinement iterations.
    tol:
        Convergence threshold on the relative change of imputed entries.
    """

    name = "cdrec"

    def __init__(self, rank: int | None = None, max_iter: int = 50, tol: float = 1e-4):
        if rank is not None and rank < 1:
            raise ValidationError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.max_iter = int(max_iter)
        self.tol = float(tol)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        current = interpolate_rows(X)
        n = X.shape[0]
        rank = self.rank if self.rank is not None else max(1, n // 3)
        prev = current[mask]
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            L, R = centroid_decomposition(current, k=rank)
            approx = L @ R.T
            current[mask] = approx[mask]
            new = current[mask]
            denom = np.linalg.norm(prev) + 1e-12
            if np.linalg.norm(new - prev) / denom < self.tol:
                converged = True
                break
            prev = new
        self._record_convergence(n_iter, converged)
        return current

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        B, n, L = X3.shape
        if n != 1:
            # The greedy sign-vector search is sequential per matrix;
            # multi-series problems keep the scalar loop.
            return super()._impute_block(X3, mask3)
        # Single-series problems: the sign vector of a 1-row matrix is
        # always [1] (a flip never improves ||X^T z||), so the centroid
        # decomposition degenerates to the rank-1 pair
        # r = row/||row||, l = row @ r — vectorizable across the stack.
        cur3 = interpolate_rows_block(X3, mask3)
        state = ActiveStack(cur3, mask3, self.tol)
        for it in range(1, self.max_iter + 1):
            if not state.alive:
                break
            rows = state.cur[:, 0, :]
            norms = np.linalg.norm(rows, axis=1)
            live = norms >= 1e-12  # scalar loop's deflation break
            safe = np.maximum(norms, 1e-300)
            r = rows / safe[:, None]
            loading = np.einsum("al,al->a", rows, r)
            approx = np.where(
                live[:, None], loading[:, None] * r, 0.0
            )
            state.advance(
                np.where(state.mask, approx[:, None, :], state.cur), it
            )
        result = state.finalize()
        for b in range(B):
            self._record_convergence(state.iters[b], state.converged[b])
        return result
