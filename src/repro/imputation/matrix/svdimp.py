"""SVDImpute: iterative truncated-SVD imputation (Troyanskaya et al.).

Initialize missing entries, compute a rank-``k`` SVD, replace the missing
entries with the reconstruction, and repeat until convergence.  The classic
expectation-maximization view of low-rank matrix completion.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    interpolate_rows_block,
    register_imputer,
)
from repro.imputation.matrix._kernels import (
    ActiveStack,
    reconstruct_truncated,
    svd_block,
)


@register_imputer
class SVDImputer(BaseImputer):
    """Iterative rank-k SVD imputation.

    Parameters
    ----------
    rank:
        Number of singular triplets kept (None = auto: ~n/3).
    max_iter:
        Maximum EM iterations.
    tol:
        Relative-change convergence threshold on imputed entries.
    """

    name = "svdimp"

    def __init__(self, rank: int | None = None, max_iter: int = 60, tol: float = 1e-5):
        if rank is not None and rank < 1:
            raise ValidationError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.max_iter = int(max_iter)
        self.tol = float(tol)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        current = interpolate_rows(X)
        n = X.shape[0]
        rank = self.rank if self.rank is not None else max(1, n // 3)
        rank = min(rank, min(current.shape))
        prev = current[mask]
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            U, s, Vt = np.linalg.svd(current, full_matrices=False)
            approx = (U[:, :rank] * s[:rank]) @ Vt[:rank]
            current[mask] = approx[mask]
            new = current[mask]
            denom = np.linalg.norm(prev) + 1e-12
            if np.linalg.norm(new - prev) / denom < self.tol:
                converged = True
                break
            prev = new
        self._record_convergence(n_iter, converged)
        return current

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        B, n, L = X3.shape
        cur3 = interpolate_rows_block(X3, mask3)
        rank = self.rank if self.rank is not None else max(1, n // 3)
        rank = min(rank, min(n, L))
        state = ActiveStack(cur3, mask3, self.tol)
        for it in range(1, self.max_iter + 1):
            if not state.alive:
                break
            U, s, Vt = svd_block(state.cur)
            approx = reconstruct_truncated(U, s, Vt, rank)
            state.advance(np.where(state.mask, approx, state.cur), it)
        result = state.finalize()
        for b in range(B):
            self._record_convergence(state.iters[b], state.converged[b])
        return result
