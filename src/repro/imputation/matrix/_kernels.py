"""Shared batched linear-algebra kernels for the matrix-imputer family.

The SVD-family imputers (SVDImp, SoftImpute, SVT, ROSL) all iterate
"decompose → reconstruct → refill missing → check convergence" loops.
:meth:`BaseImputer.impute_many <repro.imputation.base.BaseImputer.impute_many>`
hands them a ``(B, n, L)`` stack of *independent* problems, and numpy's
gufunc ``svd`` runs the same LAPACK factorization over the whole stack in
one call — one Python-loop iteration per *corpus* instead of per series.

Parity with the scalar loops (``<= 1e-9``) holds because the batched
ops are the same BLAS/LAPACK routines per matrix; the only reordering is
in the convergence norms, which are taken as masked full-matrix sums
instead of per-problem extractions (identical values up to summation
order, ~1e-16 relative).  A problem that converges is *frozen*: dropped
from the active stack while the rest keep iterating, so mixed-difficulty
corpora don't pay for their hardest member.
"""

from __future__ import annotations

import numpy as np

from repro.observability.resources import get_accounting


def svd_block(stack: np.ndarray):
    """Thin SVD of every matrix in a ``(B, n, L)`` stack.

    Single-row matrices — the dominant corpus-repair case — have the
    closed form ``s = ||row||, Vt = row / s`` (up to sign, which cancels
    in every reconstruction below), avoiding one LAPACK call per matrix
    per iteration.  Everything else goes through the gufunc ``svd``.
    """
    B, n, L = stack.shape
    get_accounting().record_kernel(
        "svd_block",
        bytes_moved=stack.nbytes,
        chunks=1,
        scratch_allocations=3,
    )
    if n == 1:
        rows = stack[:, 0, :]
        s = np.linalg.norm(rows, axis=1)
        safe = np.where(s > 0, s, 1.0)
        return (
            np.ones((B, 1, 1)),
            s[:, None],
            (rows / safe[:, None])[:, None, :],
        )
    return np.linalg.svd(stack, full_matrices=False)


def svdvals_block(stack: np.ndarray) -> np.ndarray:
    """Singular values of every matrix in a stack (same fast path)."""
    if stack.shape[1] == 1:
        return np.linalg.norm(stack[:, 0, :], axis=1)[:, None]
    return np.linalg.svd(stack, compute_uv=False)


def reconstruct_truncated(
    U: np.ndarray, s: np.ndarray, Vt: np.ndarray, rank: int
) -> np.ndarray:
    """Batched rank-``rank`` reconstruction from a stacked SVD."""
    return (U[:, :, :rank] * s[:, None, :rank]) @ Vt[:, :rank, :]


def reconstruct_shrunk(
    U: np.ndarray, s_shrunk: np.ndarray, Vt: np.ndarray
) -> np.ndarray:
    """Batched full-rank reconstruction with (already shrunk) spectra."""
    return (U * s_shrunk[:, None, :]) @ Vt


def masked_norms(values3: np.ndarray) -> np.ndarray:
    """Frobenius norm of each matrix in a stack (zeros where unmasked)."""
    return np.sqrt(np.einsum("bij,bij->b", values3, values3))


class ActiveStack:
    """Compacted active-problem state for a frozen-stack iteration loop.

    Reproduces the scalar loops' relative-change test
    ``||new - prev|| / (||prev|| + 1e-12) < tol`` over each problem's
    imputed entries, batched: ``prev`` is held as a masked full matrix
    (zeros at observed cells) so the norms reduce over the whole stack
    in one einsum.  Converged problems are written back to the output
    stack and *compacted away* — on iterations where nothing converges
    (the common case) no fancy indexing happens at all, so a steady
    iteration costs a handful of whole-stack array passes.
    """

    def __init__(self, cur3: np.ndarray, mask3: np.ndarray, tol: float):
        B = cur3.shape[0]
        self.tol = float(tol)
        self.out = cur3
        self.idx = np.arange(B)
        self.cur = cur3.copy()
        self.mask = mask3
        self.prev = np.where(mask3, cur3, 0.0)
        self.converged = np.zeros(B, dtype=bool)
        self.iters = np.zeros(B, dtype=int)

    @property
    def alive(self) -> bool:
        return self.idx.size > 0

    def advance(self, new_cur: np.ndarray, iteration: int, extras=()):
        """Fold one iteration's refreshed stack into the state.

        ``extras`` are optional per-problem arrays (thresholds, sparse
        terms, ...) compacted alongside; the (possibly shrunk) tuple is
        returned for the caller to keep using.
        """
        newm = np.where(self.mask, new_cur, 0.0)
        num = masked_norms(newm - self.prev)
        den = masked_norms(self.prev) + 1e-12
        conv = num / den < self.tol
        self.iters[self.idx] = iteration
        if conv.any():
            frozen = self.idx[conv]
            self.converged[frozen] = True
            self.out[frozen] = new_cur[conv]
            keep = ~conv
            self.idx = self.idx[keep]
            self.cur = new_cur[keep]
            self.mask = self.mask[keep]
            self.prev = newm[keep]
            return tuple(e[keep] for e in extras)
        self.cur = new_cur
        self.prev = newm
        return extras

    def finalize(self) -> np.ndarray:
        """Write any still-active problems back; returns the full stack."""
        if self.idx.size:
            self.out[self.idx] = self.cur
        return self.out
