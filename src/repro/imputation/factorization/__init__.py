"""Factorization-based imputers with temporal regularization."""

from repro.imputation.factorization.trmf import TRMFImputer
from repro.imputation.factorization.tenmf import TeNMFImputer

__all__ = ["TRMFImputer", "TeNMFImputer"]
