"""TeNMF: nonnegative matrix factorization for time-series recovery (Mei et al.).

Factorizes the (shifted-to-nonnegative) series matrix with multiplicative
updates masked to observed entries, adding a temporal-smoothness penalty on
the time-factor matrix.  The nonnegativity constraint yields parts-based
factors that work well on load-curve-like data (Power).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer
from repro.utils.rng import ensure_rng

_EPS = 1e-10


@register_imputer
class TeNMFImputer(BaseImputer):
    """Temporal nonnegative matrix factorization.

    Parameters
    ----------
    rank:
        Inner factorization dimension (None = auto: ~n/3).
    smoothness:
        Weight of the temporal first-difference penalty on H.
    max_iter:
        Multiplicative-update iterations.
    random_state:
        Seed for factor initialization.
    """

    name = "tenmf"

    def __init__(
        self,
        rank: int | None = None,
        smoothness: float = 0.5,
        max_iter: int = 150,
        random_state: int | None = 0,
    ):
        if rank is not None and rank < 1:
            raise ValidationError(f"rank must be >= 1, got {rank}")
        if smoothness < 0:
            raise ValidationError(f"smoothness must be >= 0, got {smoothness}")
        self.rank = rank
        self.smoothness = float(smoothness)
        self.max_iter = int(max_iter)
        self.random_state = random_state

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        n, m = X.shape
        rng = ensure_rng(self.random_state)
        rank = self.rank if self.rank is not None else max(1, n // 3)
        rank = min(rank, n, m)
        observed = ~mask
        # Shift to nonnegative domain on observed values.
        obs_vals = X[observed]
        shift = float(obs_vals.min())
        V = np.where(observed, X - shift, 0.0)
        Omega = observed.astype(float)
        scale = max(float(V[observed].mean()), _EPS)
        W = rng.uniform(0.1, 1.0, size=(n, rank)) * np.sqrt(scale / rank)
        H = rng.uniform(0.1, 1.0, size=(rank, m)) * np.sqrt(scale / rank)
        for _ in range(self.max_iter):
            WH = W @ H
            # Masked multiplicative updates (Lee–Seung restricted to Omega).
            numer_w = (Omega * V) @ H.T
            denom_w = (Omega * WH) @ H.T + _EPS
            W *= numer_w / denom_w
            WH = W @ H
            numer_h = W.T @ (Omega * V)
            denom_h = W.T @ (Omega * WH) + _EPS
            if self.smoothness > 0:
                # Temporal smoothness: neighbours attract (numerator),
                # self-weight repels (denominator) — standard graph-NMF form.
                neighbour = np.zeros_like(H)
                neighbour[:, 1:] += H[:, :-1]
                neighbour[:, :-1] += H[:, 1:]
                degree = np.full(m, 2.0)
                degree[0] = degree[-1] = 1.0
                numer_h = numer_h + self.smoothness * neighbour
                denom_h = denom_h + self.smoothness * H * degree
            H *= numer_h / denom_h
        approx = W @ H + shift
        if not np.isfinite(approx).all():
            return interpolate_rows(X)
        out = X.copy()
        out[mask] = approx[mask]
        return out
