"""TRMF: temporal regularized matrix factorization (Yu, Rao, Dhillon).

Factorizes the series matrix ``X ~= W F`` (W: series loadings, F: temporal
factors of shape (rank, length)) with an autoregressive penalty on the rows
of ``F``: each temporal factor should follow an AR model over a small lag
set.  Missing entries are excluded from the data term, and after alternating
minimization, imputed from ``W F``.  The AR regularizer is what lets TRMF
extrapolate inside long gaps where pure low-rank methods flatten out.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imputation.base import BaseImputer, interpolate_rows, register_imputer
from repro.utils.rng import ensure_rng


@register_imputer
class TRMFImputer(BaseImputer):
    """Temporal regularized matrix factorization.

    Parameters
    ----------
    rank:
        Number of latent temporal factors (None = auto: ~n/3).
    lags:
        AR lag set for the temporal regularizer.
    lambda_w, lambda_f:
        Ridge penalties on W and F.
    lambda_ar:
        Weight of the autoregressive temporal penalty.
    max_iter:
        Alternating-minimization iterations.
    random_state:
        Seed for factor initialization.
    """

    name = "trmf"

    def __init__(
        self,
        rank: int | None = None,
        lags: tuple[int, ...] = (1, 2),
        lambda_w: float = 0.1,
        lambda_f: float = 0.1,
        lambda_ar: float = 10.0,
        max_iter: int = 30,
        random_state: int | None = 0,
    ):
        if rank is not None and rank < 1:
            raise ValidationError(f"rank must be >= 1, got {rank}")
        if not lags or any(l < 1 for l in lags):
            raise ValidationError(f"lags must be positive integers, got {lags}")
        self.rank = rank
        self.lags = tuple(int(l) for l in lags)
        self.lambda_w = float(lambda_w)
        self.lambda_f = float(lambda_f)
        self.lambda_ar = float(lambda_ar)
        self.max_iter = int(max_iter)
        self.random_state = random_state

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        n, m = X.shape
        rng = ensure_rng(self.random_state)
        rank = self.rank if self.rank is not None else max(1, n // 3)
        rank = min(rank, n, m)
        observed = ~mask
        filled = interpolate_rows(X)
        # Warm-start factors from the SVD of the interpolated fill.
        U, s, Vt = np.linalg.svd(filled, full_matrices=False)
        W = U[:, :rank] * np.sqrt(s[:rank])
        F = (np.sqrt(s[:rank])[:, None] * Vt[:rank]) + 1e-3 * rng.normal(
            size=(rank, m)
        )
        max_lag = max(self.lags)
        ar = np.full(len(self.lags), 1.0 / len(self.lags))  # fixed AR weights
        eye_r = np.eye(rank)
        for _ in range(self.max_iter):
            # --- W step: per-series ridge regression on observed entries.
            for i in range(n):
                obs = observed[i]
                if obs.sum() == 0:
                    continue
                Fo = F[:, obs]
                A = Fo @ Fo.T + self.lambda_w * eye_r
                b = Fo @ X[i, obs]
                W[i] = np.linalg.solve(A, b)
            # --- F step: per-time-step ridge with AR coupling to neighbours.
            WtW = W.T @ W
            for t in range(m):
                obs = observed[:, t]
                A = (W[obs].T @ W[obs]) + self.lambda_f * eye_r
                b = W[obs].T @ X[obs, t] if obs.any() else np.zeros(rank)
                # AR penalty pulls f_t toward sum_l ar_l f_{t-l} (and couples
                # forward as f_t appears in the prediction of f_{t+l}).
                if t >= max_lag:
                    target = np.zeros(rank)
                    for coef, lag in zip(ar, self.lags):
                        target += coef * F[:, t - lag]
                    A += self.lambda_ar * eye_r
                    b += self.lambda_ar * target
                for coef, lag in zip(ar, self.lags):
                    t_fwd = t + lag
                    if t_fwd < m and t_fwd >= max_lag:
                        others = np.zeros(rank)
                        for c2, l2 in zip(ar, self.lags):
                            if l2 != lag:
                                others += c2 * F[:, t_fwd - l2]
                        A += self.lambda_ar * (coef**2) * eye_r
                        b += self.lambda_ar * coef * (F[:, t_fwd] - others)
                F[:, t] = np.linalg.solve(A, b)
        approx = W @ F
        out = X.copy()
        out[mask] = approx[mask]
        return out
