"""Baseline imputers: mean, linear interpolation, and cross-series kNN."""

from __future__ import annotations

import numpy as np

from repro.imputation.base import (
    BaseImputer,
    interpolate_rows,
    interpolate_rows_block,
    register_imputer,
)
from repro.exceptions import ValidationError


@register_imputer
class MeanImputer(BaseImputer):
    """Replace each missing value with its series' observed mean.

    The weakest sensible baseline: ignores time entirely.  Series with no
    observed values fall back to the global observed mean.
    """

    name = "mean"

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        observed_all = X[~mask]
        global_mean = float(observed_all.mean())
        for i in range(X.shape[0]):
            row_mask = mask[i]
            if not row_mask.any():
                continue
            observed = X[i, ~row_mask]
            fill = float(observed.mean()) if observed.size else global_mean
            X[i, row_mask] = fill
        return X

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        # Closed form over the whole (B, n, L) stack: masked row means
        # with a per-problem global-mean fallback for dead rows.
        obs3 = ~mask3
        counts = obs3.sum(axis=2)
        sums = np.where(obs3, X3, 0.0).sum(axis=2)
        with np.errstate(invalid="ignore", divide="ignore"):
            row_mean = sums / np.maximum(counts, 1)
        total = counts.sum(axis=1)
        global_mean = sums.sum(axis=1) / np.maximum(total, 1)
        fill = np.where(counts > 0, row_mean, global_mean[:, None])
        out = X3.copy()
        out[mask3] = np.broadcast_to(fill[:, :, None], out.shape)[mask3]
        return out


@register_imputer
class LinearImputer(BaseImputer):
    """Per-series linear interpolation with edge extension.

    Strong on smooth/low-noise series, poor across long blocks where the
    signal turns within the gap.
    """

    name = "linear"

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        return interpolate_rows(X)

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        return interpolate_rows_block(X3, mask3)


@register_imputer
class KNNImputer(BaseImputer):
    """Cross-series k-nearest-neighbour imputation.

    For each faulty series, find the ``k`` most correlated other series on
    the commonly observed positions and average their (z-aligned) values
    inside the gap.  Exploits inter-series redundancy like the matrix
    methods but without factorization.

    Parameters
    ----------
    k:
        Number of neighbour series to average.
    """

    name = "knn"

    def __init__(self, k: int = 3):
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.k = int(k)

    def _impute(self, X: np.ndarray, mask: np.ndarray) -> np.ndarray:
        n_series = X.shape[0]
        if n_series < 2:
            return interpolate_rows(X)
        base = interpolate_rows(X)
        out = base.copy()
        for i in range(n_series):
            row_mask = mask[i]
            if not row_mask.any():
                continue
            target = base[i]
            sims = np.full(n_series, -np.inf)
            signs = np.ones(n_series)
            for j in range(n_series):
                if j == i:
                    continue
                common = ~(mask[i] | mask[j])
                if common.sum() < 3:
                    continue
                a = X[i, common]
                b = X[j, common]
                sa, sb = a.std(), b.std()
                if sa == 0 or sb == 0:
                    continue
                corr = float(np.corrcoef(a, b)[0, 1])
                # Anti-correlated donors are as informative as correlated
                # ones once flipped; rank by |corr| and remember the sign.
                sims[j] = abs(corr)
                signs[j] = 1.0 if corr >= 0 else -1.0
            order = np.argsort(sims)[::-1]
            neighbours = [j for j in order if np.isfinite(sims[j])][: self.k]
            if not neighbours:
                continue
            # Align each neighbour to the target scale on observed positions,
            # then average their values in the gap.
            estimates = []
            obs = ~row_mask
            for j in neighbours:
                donor = base[j]
                d_std = donor[obs].std()
                if d_std == 0:
                    continue
                scale = signs[j] * (
                    target[obs].std() / d_std if target[obs].std() > 0 else 1.0
                )
                shift = target[obs].mean() - scale * donor[obs].mean()
                estimates.append(scale * donor[row_mask] + shift)
            if estimates:
                out[i, row_mask] = np.mean(estimates, axis=0)
        return out

    def _impute_block(self, X3: np.ndarray, mask3: np.ndarray) -> np.ndarray:
        # Single-series problems degenerate to interpolation (the scalar
        # n_series < 2 branch) and vectorize across the whole stack; the
        # multi-series case keeps the scalar neighbour search, whose
        # |corr| ranking is too order-sensitive to re-derive blockwise
        # without risking different neighbour picks.
        if X3.shape[1] < 2:
            return interpolate_rows_block(X3, mask3)
        return super()._impute_block(X3, mask3)
