"""Imputation algorithm suite (ImputeBench-style, reimplemented on numpy).

Every algorithm implements :class:`~repro.imputation.base.BaseImputer` and is
registered by name in :data:`~repro.imputation.base.IMPUTER_REGISTRY` so the
labeling pipeline and the recommendation engine can enumerate them uniformly.
"""

from repro.imputation.base import (
    BaseImputer,
    IMPUTER_REGISTRY,
    available_imputers,
    get_imputer,
    register_imputer,
)
from repro.imputation.simple import MeanImputer, LinearImputer, KNNImputer
from repro.imputation.matrix.cdrec import CDRecImputer
from repro.imputation.matrix.svdimp import SVDImputer
from repro.imputation.matrix.softimpute import SoftImputer
from repro.imputation.matrix.svt import SVTImputer
from repro.imputation.matrix.rosl import ROSLImputer
from repro.imputation.matrix.grouse import GROUSEImputer
from repro.imputation.factorization.trmf import TRMFImputer
from repro.imputation.factorization.tenmf import TeNMFImputer
from repro.imputation.dynamical.dynammo import DynaMMoImputer
from repro.imputation.pattern.tkcm import TKCMImputer
from repro.imputation.pattern.stmvl import STMVLImputer
from repro.imputation.pattern.iim import IIMImputer
from repro.imputation.neural.mlp_imputer import MLPImputer
from repro.imputation.evaluation import (
    imputation_rmse,
    imputation_mae,
    evaluate_imputer,
    rank_imputers,
)

__all__ = [
    "BaseImputer",
    "IMPUTER_REGISTRY",
    "available_imputers",
    "get_imputer",
    "register_imputer",
    "MeanImputer",
    "LinearImputer",
    "KNNImputer",
    "CDRecImputer",
    "SVDImputer",
    "SoftImputer",
    "SVTImputer",
    "ROSLImputer",
    "GROUSEImputer",
    "TRMFImputer",
    "TeNMFImputer",
    "DynaMMoImputer",
    "TKCMImputer",
    "STMVLImputer",
    "IIMImputer",
    "MLPImputer",
    "imputation_rmse",
    "imputation_mae",
    "evaluate_imputer",
    "rank_imputers",
]
